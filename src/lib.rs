//! # adc — Adaptive Distributed Caching
//!
//! A complete reproduction of *"A Study of the Performance and Parameter
//! Sensitivity of Adaptive Distributed Caching"* (Kaiser, Tsui, Liu —
//! ICDCS 2003): the self-organizing ADC proxy algorithm, the CARP-style
//! hashing baseline, a deterministic discrete-event simulator, a
//! Polygraph-like workload generator, a tokio TCP runtime, and the
//! benchmark harness that regenerates every figure of the paper.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * `adc_core` (re-exported flat) — the ADC algorithm itself;
//! * [`baselines`] — CARP/HRW hash routing, consistent hashing, LRU;
//! * [`sim`] — the discrete-event simulator;
//! * [`workload`] — Zipf, Polygraph-like streams, traces;
//! * [`metrics`] — moving averages, series, summaries, CSV;
//! * [`net`] — the tokio TCP deployment.
//!
//! # Examples
//!
//! The headline experiment in six lines (a scaled-down Figure 11):
//!
//! ```
//! use adc::prelude::*;
//!
//! let experiment_scale = 0.002;
//! let workload = PolygraphConfig::scaled(experiment_scale);
//! let agents = adc::adc_cluster(5, AdcConfig::builder()
//!     .single_capacity(64).multiple_capacity(64).cache_capacity(32).build());
//! let report = Simulation::new(agents, SimConfig::fast()).run(workload.build());
//! assert_eq!(report.completed, workload.total_requests());
//! ```

#![warn(missing_docs)]

pub mod guide;

pub use adc_baselines as baselines;
pub use adc_core::*;
pub use adc_metrics as metrics;
pub use adc_net as net;
pub use adc_sim as sim;
pub use adc_workload as workload;

/// The most commonly used items from every crate, for glob import.
pub mod prelude {
    pub use adc_baselines::{
        BoundedLru, CarpProxy, ConsistentRing, HashingProxy, HierarchyProxy, Hrw, OwnerMap,
        SoapProxy,
    };
    pub use adc_core::{
        Action, AdcConfig, AdcProxy, AgingMode, CacheAgent, CachePolicy, ClientId, Location,
        Message, NodeId, ObjectId, ProxyId, ProxySnapshot, ProxyStats, Reply, Request, RequestId,
        ServedFrom, TableEntry, UnlimitedAdcProxy,
    };
    pub use adc_metrics::{Histogram, MovingAverage, Sampler, Series, Summary};
    pub use adc_net::Cluster;
    pub use adc_sim::{
        ChurnEvent, ClientAssignment, FaultPlan, InjectionMode, LatencyModel, SimConfig, SimReport,
        SimTime, Simulation,
    };
    pub use adc_workload::{
        FlashCrowd, Phase, PolygraphConfig, RequestRecord, ShiftingZipf, SizeModel, StationaryZipf,
        UniformWorkload, Zipf,
    };
}

use adc_baselines::CarpProxy;

/// Builds a dense cluster of `n` ADC proxies sharing one configuration.
///
/// # Panics
///
/// Panics if `n` is zero or the configuration is invalid.
///
/// # Examples
///
/// ```
/// use adc::prelude::*;
///
/// let agents = adc::adc_cluster(5, AdcConfig::default());
/// assert_eq!(agents.len(), 5);
/// ```
pub fn adc_cluster(n: u32, config: AdcConfig) -> Vec<AdcProxy> {
    assert!(n > 0, "need at least one proxy");
    (0..n)
        .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
        .collect()
}

/// Builds a dense cluster of `n` CARP hashing proxies with per-proxy LRU
/// caches of `cache_capacity` objects.
///
/// # Panics
///
/// Panics if `n` or `cache_capacity` is zero.
///
/// # Examples
///
/// ```
/// let agents = adc::carp_cluster(5, 10_000);
/// assert_eq!(agents.len(), 5);
/// ```
pub fn carp_cluster(n: u32, cache_capacity: usize) -> Vec<CarpProxy> {
    assert!(n > 0, "need at least one proxy");
    (0..n)
        .map(|i| CarpProxy::new(ProxyId::new(i), n, cache_capacity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn clusters_have_dense_ids() {
        let adc = crate::adc_cluster(3, AdcConfig::default());
        for (i, a) in adc.iter().enumerate() {
            assert_eq!(a.proxy_id(), ProxyId::new(i as u32));
        }
        let carp = crate::carp_cluster(3, 10);
        for (i, a) in carp.iter().enumerate() {
            assert_eq!(a.proxy_id(), ProxyId::new(i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "at least one proxy")]
    fn zero_proxies_rejected() {
        let _ = crate::adc_cluster(0, AdcConfig::default());
    }
}
