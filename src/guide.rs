//! # A guided tour of the ADC algorithm
//!
//! This module is documentation only — a walkthrough of the paper's
//! algorithm (§III–IV) as it exists in this codebase, for readers who
//! want to connect the published pseudocode to the Rust.
//!
//! ## The problem
//!
//! A farm of cooperating web proxies wants the union of its caches to
//! behave like one big cache: any proxy should be able to find an object
//! cached at any other proxy. Classic answers:
//!
//! * **Hash routing** (CARP, consistent hashing): a globally known
//!   function maps each URL to one owner proxy. Allocation is instant,
//!   but there is exactly one copy of everything — a hot object's owner
//!   becomes a bottleneck — and every proxy must agree on the function
//!   and the member list.
//! * **Hierarchies** (Harvest/Squid): misses climb a tree. Popular
//!   objects replicate along paths, but upper levels see every miss and
//!   every node stores everything that passes.
//!
//! ADC's bet: let each proxy *learn* the mapping instead. The learned
//! mapping can replicate hot objects (like a hierarchy) while keeping
//! cold objects unique (like hashing), and it needs neither a
//! coordinator nor a broadcast.
//!
//! ## The data structures
//!
//! Every proxy keeps three bounded tables of
//! [`TableEntry`](crate::TableEntry) rows `(OBJ-ID, PROXY, LAST, AVG,
//! HITS)`; see [`tables`](crate::tables):
//!
//! * the **single-table** ([`tables::SingleTable`](crate::tables::SingleTable))
//!   is an LRU list of objects seen exactly once — a probation area
//!   sized so that "requests with at least two hits can occur";
//! * the **multiple-table** ([`tables::OrderedTable`](crate::tables::OrderedTable))
//!   holds objects seen at least twice, ordered by their average
//!   inter-request time (best first);
//! * the **caching table** (same structure) lists the objects whose data
//!   is actually stored locally.
//!
//! The `AVG` column is the paper's whole popularity model: a two-point
//! moving average of the gap between consecutive requests,
//! [`TableEntry::calc_average`](crate::TableEntry::calc_average). Small
//! average = frequently requested = worth caching. Admission into a full
//! ordered table requires beating the *aged* average of the current
//! worst resident ([`TableEntry::aged_average`](crate::TableEntry::aged_average)):
//! `(avg + (now − last)) / 2`, so residents that stopped being requested
//! decay and become displaceable.
//!
//! ## The message flow
//!
//! [`AdcProxy::on_request`](crate::AdcProxy) (the paper's
//! `Receive_Request`):
//!
//! 1. bump the local clock (one tick per received request);
//! 2. if the object is in the local cache — serve it, refresh its entry
//!    with location `THIS`, send the reply back toward the requester;
//! 3. otherwise remember the previous hop (the *backwarding* stack),
//!    and forward: to the learned location if any table has an entry;
//!    to the origin server if the entry says `THIS` (we are responsible
//!    but do not hold it), if the request already visited us (a loop —
//!    detected by its globally unique ID), or if it exhausted the hop
//!    limit; to a uniformly random peer (including ourselves!) when we
//!    know nothing.
//!
//! [`AdcProxy::on_reply`](crate::AdcProxy) (`Receive_Reply`): the reply
//! retraces the forwarding path. Each proxy on the way pops its
//! backwarding hop, adopts the reply's resolver into its tables
//! (`Update_Entry`), optionally claims the caching role if it holds the
//! data and nobody upstream did, and passes the reply along. This
//! *multicast by backwarding* is the entire agreement protocol: every
//! proxy on the path ends up pointing at the same location for the
//! object, for free.
//!
//! ## Why it works (and when it doesn't)
//!
//! The tests in `tests/convergence.rs` verify the emergent claims: hot
//! objects end up cached at several proxies with all mapping entries
//! pointing at true holders; cold objects keep few copies; random
//! searching fades as learning progresses.
//!
//! The flip side, measured in `ablation_proxies`: random search scales
//! poorly with cluster size. At 5 proxies a blind walk finds a knowing
//! proxy quickly; at 10, loops terminate most searches early and the
//! hit rate sags while hash routing is size-independent. The paper ran
//! 5–8 proxies, where the trade is favourable.
//!
//! ## Reproducing the paper
//!
//! | Paper artifact | Here |
//! |---|---|
//! | `Receive_Request` (Fig. 5) | `AdcProxy::on_request` |
//! | `Forward_Addr` (Fig. 6) | `AdcProxy::forward_addr` (private; observable via stats) |
//! | `Receive_Reply` (Fig. 7) | `AdcProxy::on_reply` |
//! | `Update_Entry` (Fig. 8) | [`tables::MappingTables::update_entry`](crate::tables::MappingTables::update_entry) |
//! | `Calc_Average` (Fig. 9) | [`TableEntry::calc_average`](crate::TableEntry::calc_average) |
//! | aging (Fig. 4) | [`TableEntry::aged_average`](crate::TableEntry::aged_average) |
//! | CARP baseline (§V.1.1) | [`baselines::CarpProxy`](crate::baselines::CarpProxy) |
//! | Polygraph workload (§V.1.6) | [`workload::PolygraphConfig`](crate::workload::PolygraphConfig) |
//! | Figures 11–15 | `adc-bench` binaries `fig11_*` … `fig15_*` |
//!
//! Two places where the paper's prose under-determines the algorithm,
//! and the choices made here (both documented at the implementation
//! site):
//!
//! 1. **Looping backwarding.** A looped request visits a proxy twice, so
//!    the backwarding information is a *stack* of previous hops and the
//!    reply traverses the full loop back. The second pass happens at the
//!    same local-clock tick; counting it as a second "request" would
//!    give the object a zero inter-request gap (infinite popularity), so
//!    `Update_Entry` refreshes only the location on same-tick updates —
//!    "the average time between two requests" means two distinct
//!    requests.
//! 2. **Single→multiple promotion needs a real average.** The
//!    multiple-table "contains only objects that were requested more
//!    than once"; an entry with `HITS == 1` (average still 0) stays in
//!    the single-table no matter what, otherwise its zero average would
//!    rank it best-in-table forever.

// This module intentionally contains no items.
