/root/repo/target/release/deps/tokio-764867dd95395ece.d: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

/root/repo/target/release/deps/libtokio-764867dd95395ece.rlib: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

/root/repo/target/release/deps/libtokio-764867dd95395ece.rmeta: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

vendor/tokio/src/lib.rs:
vendor/tokio/src/io.rs:
vendor/tokio/src/net.rs:
vendor/tokio/src/runtime.rs:
vendor/tokio/src/sync.rs:
vendor/tokio/src/task.rs:
vendor/tokio/src/time.rs:
