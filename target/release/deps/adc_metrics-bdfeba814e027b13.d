/root/repo/target/release/deps/adc_metrics-bdfeba814e027b13.d: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

/root/repo/target/release/deps/libadc_metrics-bdfeba814e027b13.rlib: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

/root/repo/target/release/deps/libadc_metrics-bdfeba814e027b13.rmeta: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

crates/adc-metrics/src/lib.rs:
crates/adc-metrics/src/csv.rs:
crates/adc-metrics/src/histogram.rs:
crates/adc-metrics/src/moving.rs:
crates/adc-metrics/src/quantile.rs:
crates/adc-metrics/src/series.rs:
crates/adc-metrics/src/summary.rs:
