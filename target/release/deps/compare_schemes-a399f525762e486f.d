/root/repo/target/release/deps/compare_schemes-a399f525762e486f.d: crates/adc-bench/src/bin/compare_schemes.rs

/root/repo/target/release/deps/compare_schemes-a399f525762e486f: crates/adc-bench/src/bin/compare_schemes.rs

crates/adc-bench/src/bin/compare_schemes.rs:
