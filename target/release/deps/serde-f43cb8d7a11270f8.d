/root/repo/target/release/deps/serde-f43cb8d7a11270f8.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f43cb8d7a11270f8.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f43cb8d7a11270f8.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
