/root/repo/target/release/deps/adc_sim-2bc0f597c6ecc288.d: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

/root/repo/target/release/deps/libadc_sim-2bc0f597c6ecc288.rlib: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

/root/repo/target/release/deps/libadc_sim-2bc0f597c6ecc288.rmeta: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

crates/adc-sim/src/lib.rs:
crates/adc-sim/src/config.rs:
crates/adc-sim/src/cputime.rs:
crates/adc-sim/src/network.rs:
crates/adc-sim/src/report.rs:
crates/adc-sim/src/runner.rs:
crates/adc-sim/src/time.rs:
crates/adc-sim/src/tracelog.rs:
