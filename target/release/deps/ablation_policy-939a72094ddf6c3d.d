/root/repo/target/release/deps/ablation_policy-939a72094ddf6c3d.d: crates/adc-bench/src/bin/ablation_policy.rs

/root/repo/target/release/deps/ablation_policy-939a72094ddf6c3d: crates/adc-bench/src/bin/ablation_policy.rs

crates/adc-bench/src/bin/ablation_policy.rs:
