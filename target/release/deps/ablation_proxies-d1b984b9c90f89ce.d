/root/repo/target/release/deps/ablation_proxies-d1b984b9c90f89ce.d: crates/adc-bench/src/bin/ablation_proxies.rs

/root/repo/target/release/deps/ablation_proxies-d1b984b9c90f89ce: crates/adc-bench/src/bin/ablation_proxies.rs

crates/adc-bench/src/bin/ablation_proxies.rs:
