/root/repo/target/release/deps/adc_workload-e4c0fe919a30a271.d: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

/root/repo/target/release/deps/libadc_workload-e4c0fe919a30a271.rlib: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

/root/repo/target/release/deps/libadc_workload-e4c0fe919a30a271.rmeta: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

crates/adc-workload/src/lib.rs:
crates/adc-workload/src/analysis.rs:
crates/adc-workload/src/polygraph.rs:
crates/adc-workload/src/shared.rs:
crates/adc-workload/src/sizes.rs:
crates/adc-workload/src/synthetic.rs:
crates/adc-workload/src/trace.rs:
crates/adc-workload/src/zipf.rs:
