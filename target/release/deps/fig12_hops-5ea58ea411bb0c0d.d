/root/repo/target/release/deps/fig12_hops-5ea58ea411bb0c0d.d: crates/adc-bench/src/bin/fig12_hops.rs

/root/repo/target/release/deps/fig12_hops-5ea58ea411bb0c0d: crates/adc-bench/src/bin/fig12_hops.rs

crates/adc-bench/src/bin/fig12_hops.rs:
