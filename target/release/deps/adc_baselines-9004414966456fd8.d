/root/repo/target/release/deps/adc_baselines-9004414966456fd8.d: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

/root/repo/target/release/deps/libadc_baselines-9004414966456fd8.rlib: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

/root/repo/target/release/deps/libadc_baselines-9004414966456fd8.rmeta: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

crates/adc-baselines/src/lib.rs:
crates/adc-baselines/src/hashing_proxy.rs:
crates/adc-baselines/src/hierarchy.rs:
crates/adc-baselines/src/lru_cache.rs:
crates/adc-baselines/src/owner.rs:
crates/adc-baselines/src/soap.rs:
