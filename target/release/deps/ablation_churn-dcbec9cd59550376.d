/root/repo/target/release/deps/ablation_churn-dcbec9cd59550376.d: crates/adc-bench/src/bin/ablation_churn.rs

/root/repo/target/release/deps/ablation_churn-dcbec9cd59550376: crates/adc-bench/src/bin/ablation_churn.rs

crates/adc-bench/src/bin/ablation_churn.rs:
