/root/repo/target/release/deps/fig13_hits_by_size-8b26dd8dff53b818.d: crates/adc-bench/src/bin/fig13_hits_by_size.rs

/root/repo/target/release/deps/fig13_hits_by_size-8b26dd8dff53b818: crates/adc-bench/src/bin/fig13_hits_by_size.rs

crates/adc-bench/src/bin/fig13_hits_by_size.rs:
