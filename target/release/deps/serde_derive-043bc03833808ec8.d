/root/repo/target/release/deps/serde_derive-043bc03833808ec8.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-043bc03833808ec8.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
