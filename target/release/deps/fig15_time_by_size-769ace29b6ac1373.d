/root/repo/target/release/deps/fig15_time_by_size-769ace29b6ac1373.d: crates/adc-bench/src/bin/fig15_time_by_size.rs

/root/repo/target/release/deps/fig15_time_by_size-769ace29b6ac1373: crates/adc-bench/src/bin/fig15_time_by_size.rs

crates/adc-bench/src/bin/fig15_time_by_size.rs:
