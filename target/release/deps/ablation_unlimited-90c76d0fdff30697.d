/root/repo/target/release/deps/ablation_unlimited-90c76d0fdff30697.d: crates/adc-bench/src/bin/ablation_unlimited.rs

/root/repo/target/release/deps/ablation_unlimited-90c76d0fdff30697: crates/adc-bench/src/bin/ablation_unlimited.rs

crates/adc-bench/src/bin/ablation_unlimited.rs:
