/root/repo/target/release/deps/adc_net-227e103258fc46f8.d: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs

/root/repo/target/release/deps/libadc_net-227e103258fc46f8.rlib: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs

/root/repo/target/release/deps/libadc_net-227e103258fc46f8.rmeta: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs

crates/adc-net/src/lib.rs:
crates/adc-net/src/book.rs:
crates/adc-net/src/client.rs:
crates/adc-net/src/cluster.rs:
crates/adc-net/src/driver.rs:
crates/adc-net/src/node.rs:
crates/adc-net/src/protocol.rs:
crates/adc-net/src/transport.rs:
