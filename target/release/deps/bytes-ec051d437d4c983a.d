/root/repo/target/release/deps/bytes-ec051d437d4c983a.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ec051d437d4c983a.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ec051d437d4c983a.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
