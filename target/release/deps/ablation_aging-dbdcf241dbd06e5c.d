/root/repo/target/release/deps/ablation_aging-dbdcf241dbd06e5c.d: crates/adc-bench/src/bin/ablation_aging.rs

/root/repo/target/release/deps/ablation_aging-dbdcf241dbd06e5c: crates/adc-bench/src/bin/ablation_aging.rs

crates/adc-bench/src/bin/ablation_aging.rs:
