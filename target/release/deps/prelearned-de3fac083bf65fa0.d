/root/repo/target/release/deps/prelearned-de3fac083bf65fa0.d: crates/adc-bench/src/bin/prelearned.rs

/root/repo/target/release/deps/prelearned-de3fac083bf65fa0: crates/adc-bench/src/bin/prelearned.rs

crates/adc-bench/src/bin/prelearned.rs:
