/root/repo/target/release/deps/tokio_macros-ca5031f00caafd9f.d: vendor/tokio-macros/src/lib.rs

/root/repo/target/release/deps/libtokio_macros-ca5031f00caafd9f.so: vendor/tokio-macros/src/lib.rs

vendor/tokio-macros/src/lib.rs:
