/root/repo/target/release/deps/adc-6de6948e57fe9eb7.d: src/lib.rs src/guide.rs

/root/repo/target/release/deps/libadc-6de6948e57fe9eb7.rlib: src/lib.rs src/guide.rs

/root/repo/target/release/deps/libadc-6de6948e57fe9eb7.rmeta: src/lib.rs src/guide.rs

src/lib.rs:
src/guide.rs:
