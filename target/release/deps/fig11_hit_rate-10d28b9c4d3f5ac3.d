/root/repo/target/release/deps/fig11_hit_rate-10d28b9c4d3f5ac3.d: crates/adc-bench/src/bin/fig11_hit_rate.rs

/root/repo/target/release/deps/fig11_hit_rate-10d28b9c4d3f5ac3: crates/adc-bench/src/bin/fig11_hit_rate.rs

crates/adc-bench/src/bin/fig11_hit_rate.rs:
