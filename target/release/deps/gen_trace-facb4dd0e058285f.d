/root/repo/target/release/deps/gen_trace-facb4dd0e058285f.d: crates/adc-bench/src/bin/gen_trace.rs

/root/repo/target/release/deps/gen_trace-facb4dd0e058285f: crates/adc-bench/src/bin/gen_trace.rs

crates/adc-bench/src/bin/gen_trace.rs:
