/root/repo/target/release/deps/fig14_hops_by_size-42afad5cd43ec918.d: crates/adc-bench/src/bin/fig14_hops_by_size.rs

/root/repo/target/release/deps/fig14_hops_by_size-42afad5cd43ec918: crates/adc-bench/src/bin/fig14_hops_by_size.rs

crates/adc-bench/src/bin/fig14_hops_by_size.rs:
