/root/repo/target/release/deps/ablation_max_hops-0ae9ac8a9494d745.d: crates/adc-bench/src/bin/ablation_max_hops.rs

/root/repo/target/release/deps/ablation_max_hops-0ae9ac8a9494d745: crates/adc-bench/src/bin/ablation_max_hops.rs

crates/adc-bench/src/bin/ablation_max_hops.rs:
