/root/repo/target/release/deps/adc_bench-8af9fb7715ffdf9d.d: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

/root/repo/target/release/deps/libadc_bench-8af9fb7715ffdf9d.rlib: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

/root/repo/target/release/deps/libadc_bench-8af9fb7715ffdf9d.rmeta: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

crates/adc-bench/src/lib.rs:
crates/adc-bench/src/cli.rs:
crates/adc-bench/src/experiment.rs:
crates/adc-bench/src/output.rs:
crates/adc-bench/src/parallel.rs:
crates/adc-bench/src/scale.rs:
crates/adc-bench/src/sweep.rs:
