/root/repo/target/release/deps/parking_lot-1fb053addd0773eb.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1fb053addd0773eb.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1fb053addd0773eb.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
