/root/repo/target/debug/deps/cluster-b33201c0bac625e5.d: crates/adc-net/tests/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-b33201c0bac625e5.rmeta: crates/adc-net/tests/cluster.rs Cargo.toml

crates/adc-net/tests/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
