/root/repo/target/debug/deps/prop_metrics-a7a0af052799744b.d: crates/adc-metrics/tests/prop_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libprop_metrics-a7a0af052799744b.rmeta: crates/adc-metrics/tests/prop_metrics.rs Cargo.toml

crates/adc-metrics/tests/prop_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
