/root/repo/target/debug/deps/ablation_aging-fe29b34cf7393c3f.d: crates/adc-bench/src/bin/ablation_aging.rs Cargo.toml

/root/repo/target/debug/deps/libablation_aging-fe29b34cf7393c3f.rmeta: crates/adc-bench/src/bin/ablation_aging.rs Cargo.toml

crates/adc-bench/src/bin/ablation_aging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
