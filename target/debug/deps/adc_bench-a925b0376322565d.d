/root/repo/target/debug/deps/adc_bench-a925b0376322565d.d: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libadc_bench-a925b0376322565d.rmeta: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs Cargo.toml

crates/adc-bench/src/lib.rs:
crates/adc-bench/src/cli.rs:
crates/adc-bench/src/experiment.rs:
crates/adc-bench/src/output.rs:
crates/adc-bench/src/parallel.rs:
crates/adc-bench/src/scale.rs:
crates/adc-bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
