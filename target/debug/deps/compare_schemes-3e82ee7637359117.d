/root/repo/target/debug/deps/compare_schemes-3e82ee7637359117.d: crates/adc-bench/src/bin/compare_schemes.rs

/root/repo/target/debug/deps/compare_schemes-3e82ee7637359117: crates/adc-bench/src/bin/compare_schemes.rs

crates/adc-bench/src/bin/compare_schemes.rs:
