/root/repo/target/debug/deps/adc_sim-b1e65947a24d948e.d: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

/root/repo/target/debug/deps/libadc_sim-b1e65947a24d948e.rlib: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

/root/repo/target/debug/deps/libadc_sim-b1e65947a24d948e.rmeta: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

crates/adc-sim/src/lib.rs:
crates/adc-sim/src/config.rs:
crates/adc-sim/src/cputime.rs:
crates/adc-sim/src/network.rs:
crates/adc-sim/src/report.rs:
crates/adc-sim/src/runner.rs:
crates/adc-sim/src/time.rs:
crates/adc-sim/src/tracelog.rs:
