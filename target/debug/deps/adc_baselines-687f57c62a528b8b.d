/root/repo/target/debug/deps/adc_baselines-687f57c62a528b8b.d: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs Cargo.toml

/root/repo/target/debug/deps/libadc_baselines-687f57c62a528b8b.rmeta: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs Cargo.toml

crates/adc-baselines/src/lib.rs:
crates/adc-baselines/src/hashing_proxy.rs:
crates/adc-baselines/src/hierarchy.rs:
crates/adc-baselines/src/lru_cache.rs:
crates/adc-baselines/src/owner.rs:
crates/adc-baselines/src/soap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
