/root/repo/target/debug/deps/ablation_aging-731c8b70e6979e5f.d: crates/adc-bench/src/bin/ablation_aging.rs Cargo.toml

/root/repo/target/debug/deps/libablation_aging-731c8b70e6979e5f.rmeta: crates/adc-bench/src/bin/ablation_aging.rs Cargo.toml

crates/adc-bench/src/bin/ablation_aging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
