/root/repo/target/debug/deps/ablation_max_hops-e6d9bcf102a70c74.d: crates/adc-bench/src/bin/ablation_max_hops.rs

/root/repo/target/debug/deps/ablation_max_hops-e6d9bcf102a70c74: crates/adc-bench/src/bin/ablation_max_hops.rs

crates/adc-bench/src/bin/ablation_max_hops.rs:
