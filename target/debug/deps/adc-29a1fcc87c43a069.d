/root/repo/target/debug/deps/adc-29a1fcc87c43a069.d: src/lib.rs src/guide.rs

/root/repo/target/debug/deps/adc-29a1fcc87c43a069: src/lib.rs src/guide.rs

src/lib.rs:
src/guide.rs:
