/root/repo/target/debug/deps/adc_workload-7496cfb736744cc4.d: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libadc_workload-7496cfb736744cc4.rmeta: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs Cargo.toml

crates/adc-workload/src/lib.rs:
crates/adc-workload/src/analysis.rs:
crates/adc-workload/src/polygraph.rs:
crates/adc-workload/src/shared.rs:
crates/adc-workload/src/sizes.rs:
crates/adc-workload/src/synthetic.rs:
crates/adc-workload/src/trace.rs:
crates/adc-workload/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
