/root/repo/target/debug/deps/tokio_macros-4daf88bb948ffc2d.d: vendor/tokio-macros/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtokio_macros-4daf88bb948ffc2d.rmeta: vendor/tokio-macros/src/lib.rs Cargo.toml

vendor/tokio-macros/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
