/root/repo/target/debug/deps/determinism-a514738d7f9579ec.d: crates/adc-bench/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-a514738d7f9579ec.rmeta: crates/adc-bench/tests/determinism.rs Cargo.toml

crates/adc-bench/tests/determinism.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/adc-bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
