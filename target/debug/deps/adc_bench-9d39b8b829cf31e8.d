/root/repo/target/debug/deps/adc_bench-9d39b8b829cf31e8.d: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

/root/repo/target/debug/deps/libadc_bench-9d39b8b829cf31e8.rlib: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

/root/repo/target/debug/deps/libadc_bench-9d39b8b829cf31e8.rmeta: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

crates/adc-bench/src/lib.rs:
crates/adc-bench/src/cli.rs:
crates/adc-bench/src/experiment.rs:
crates/adc-bench/src/output.rs:
crates/adc-bench/src/parallel.rs:
crates/adc-bench/src/scale.rs:
crates/adc-bench/src/sweep.rs:
