/root/repo/target/debug/deps/prop_agents-628f288383189add.d: crates/adc-core/tests/prop_agents.rs Cargo.toml

/root/repo/target/debug/deps/libprop_agents-628f288383189add.rmeta: crates/adc-core/tests/prop_agents.rs Cargo.toml

crates/adc-core/tests/prop_agents.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
