/root/repo/target/debug/deps/fig13_hits_by_size-38f3ff57dd843f74.d: crates/adc-bench/src/bin/fig13_hits_by_size.rs

/root/repo/target/debug/deps/fig13_hits_by_size-38f3ff57dd843f74: crates/adc-bench/src/bin/fig13_hits_by_size.rs

crates/adc-bench/src/bin/fig13_hits_by_size.rs:
