/root/repo/target/debug/deps/adc_metrics-30a756dd49791726.d: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

/root/repo/target/debug/deps/adc_metrics-30a756dd49791726: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

crates/adc-metrics/src/lib.rs:
crates/adc-metrics/src/csv.rs:
crates/adc-metrics/src/histogram.rs:
crates/adc-metrics/src/moving.rs:
crates/adc-metrics/src/quantile.rs:
crates/adc-metrics/src/series.rs:
crates/adc-metrics/src/summary.rs:
