/root/repo/target/debug/deps/ablation_unlimited-6e099ad03e558151.d: crates/adc-bench/src/bin/ablation_unlimited.rs Cargo.toml

/root/repo/target/debug/deps/libablation_unlimited-6e099ad03e558151.rmeta: crates/adc-bench/src/bin/ablation_unlimited.rs Cargo.toml

crates/adc-bench/src/bin/ablation_unlimited.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
