/root/repo/target/debug/deps/fig15_time_by_size-082bf3afd2b13d14.d: crates/adc-bench/src/bin/fig15_time_by_size.rs

/root/repo/target/debug/deps/fig15_time_by_size-082bf3afd2b13d14: crates/adc-bench/src/bin/fig15_time_by_size.rs

crates/adc-bench/src/bin/fig15_time_by_size.rs:
