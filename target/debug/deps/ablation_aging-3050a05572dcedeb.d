/root/repo/target/debug/deps/ablation_aging-3050a05572dcedeb.d: crates/adc-bench/src/bin/ablation_aging.rs

/root/repo/target/debug/deps/ablation_aging-3050a05572dcedeb: crates/adc-bench/src/bin/ablation_aging.rs

crates/adc-bench/src/bin/ablation_aging.rs:
