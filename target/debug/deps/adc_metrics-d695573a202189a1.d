/root/repo/target/debug/deps/adc_metrics-d695573a202189a1.d: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libadc_metrics-d695573a202189a1.rmeta: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs Cargo.toml

crates/adc-metrics/src/lib.rs:
crates/adc-metrics/src/csv.rs:
crates/adc-metrics/src/histogram.rs:
crates/adc-metrics/src/moving.rs:
crates/adc-metrics/src/quantile.rs:
crates/adc-metrics/src/series.rs:
crates/adc-metrics/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
