/root/repo/target/debug/deps/ablation_churn-6070017380dce89d.d: crates/adc-bench/src/bin/ablation_churn.rs Cargo.toml

/root/repo/target/debug/deps/libablation_churn-6070017380dce89d.rmeta: crates/adc-bench/src/bin/ablation_churn.rs Cargo.toml

crates/adc-bench/src/bin/ablation_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
