/root/repo/target/debug/deps/properties-6f2e77478e4c5ca2.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6f2e77478e4c5ca2.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
