/root/repo/target/debug/deps/gen_trace-47186c2c46d212cb.d: crates/adc-bench/src/bin/gen_trace.rs

/root/repo/target/debug/deps/gen_trace-47186c2c46d212cb: crates/adc-bench/src/bin/gen_trace.rs

crates/adc-bench/src/bin/gen_trace.rs:
