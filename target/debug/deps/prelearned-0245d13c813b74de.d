/root/repo/target/debug/deps/prelearned-0245d13c813b74de.d: crates/adc-bench/src/bin/prelearned.rs

/root/repo/target/debug/deps/prelearned-0245d13c813b74de: crates/adc-bench/src/bin/prelearned.rs

crates/adc-bench/src/bin/prelearned.rs:
