/root/repo/target/debug/deps/convergence-e3e308bed29af20c.d: tests/convergence.rs

/root/repo/target/debug/deps/convergence-e3e308bed29af20c: tests/convergence.rs

tests/convergence.rs:
