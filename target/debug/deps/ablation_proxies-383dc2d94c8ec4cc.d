/root/repo/target/debug/deps/ablation_proxies-383dc2d94c8ec4cc.d: crates/adc-bench/src/bin/ablation_proxies.rs

/root/repo/target/debug/deps/ablation_proxies-383dc2d94c8ec4cc: crates/adc-bench/src/bin/ablation_proxies.rs

crates/adc-bench/src/bin/ablation_proxies.rs:
