/root/repo/target/debug/deps/ablation_churn-f191773ede543a00.d: crates/adc-bench/src/bin/ablation_churn.rs Cargo.toml

/root/repo/target/debug/deps/libablation_churn-f191773ede543a00.rmeta: crates/adc-bench/src/bin/ablation_churn.rs Cargo.toml

crates/adc-bench/src/bin/ablation_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
