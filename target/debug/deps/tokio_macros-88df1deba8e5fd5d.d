/root/repo/target/debug/deps/tokio_macros-88df1deba8e5fd5d.d: vendor/tokio-macros/src/lib.rs

/root/repo/target/debug/deps/libtokio_macros-88df1deba8e5fd5d.so: vendor/tokio-macros/src/lib.rs

vendor/tokio-macros/src/lib.rs:
