/root/repo/target/debug/deps/ablation_max_hops-83d0c22910877c3f.d: crates/adc-bench/src/bin/ablation_max_hops.rs Cargo.toml

/root/repo/target/debug/deps/libablation_max_hops-83d0c22910877c3f.rmeta: crates/adc-bench/src/bin/ablation_max_hops.rs Cargo.toml

crates/adc-bench/src/bin/ablation_max_hops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
