/root/repo/target/debug/deps/properties-a725669196747449.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a725669196747449: tests/properties.rs

tests/properties.rs:
