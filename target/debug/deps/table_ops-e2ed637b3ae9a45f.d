/root/repo/target/debug/deps/table_ops-e2ed637b3ae9a45f.d: crates/adc-bench/benches/table_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtable_ops-e2ed637b3ae9a45f.rmeta: crates/adc-bench/benches/table_ops.rs Cargo.toml

crates/adc-bench/benches/table_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
