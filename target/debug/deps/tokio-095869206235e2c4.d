/root/repo/target/debug/deps/tokio-095869206235e2c4.d: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

/root/repo/target/debug/deps/libtokio-095869206235e2c4.rlib: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

/root/repo/target/debug/deps/libtokio-095869206235e2c4.rmeta: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

vendor/tokio/src/lib.rs:
vendor/tokio/src/io.rs:
vendor/tokio/src/net.rs:
vendor/tokio/src/runtime.rs:
vendor/tokio/src/sync.rs:
vendor/tokio/src/task.rs:
vendor/tokio/src/time.rs:
