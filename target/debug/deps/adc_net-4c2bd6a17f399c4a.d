/root/repo/target/debug/deps/adc_net-4c2bd6a17f399c4a.d: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libadc_net-4c2bd6a17f399c4a.rmeta: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs Cargo.toml

crates/adc-net/src/lib.rs:
crates/adc-net/src/book.rs:
crates/adc-net/src/client.rs:
crates/adc-net/src/cluster.rs:
crates/adc-net/src/driver.rs:
crates/adc-net/src/node.rs:
crates/adc-net/src/protocol.rs:
crates/adc-net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
