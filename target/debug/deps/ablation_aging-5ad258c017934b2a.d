/root/repo/target/debug/deps/ablation_aging-5ad258c017934b2a.d: crates/adc-bench/src/bin/ablation_aging.rs

/root/repo/target/debug/deps/ablation_aging-5ad258c017934b2a: crates/adc-bench/src/bin/ablation_aging.rs

crates/adc-bench/src/bin/ablation_aging.rs:
