/root/repo/target/debug/deps/ablation_max_hops-060a2737f21b0932.d: crates/adc-bench/src/bin/ablation_max_hops.rs Cargo.toml

/root/repo/target/debug/deps/libablation_max_hops-060a2737f21b0932.rmeta: crates/adc-bench/src/bin/ablation_max_hops.rs Cargo.toml

crates/adc-bench/src/bin/ablation_max_hops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
