/root/repo/target/debug/deps/ablation_proxies-d8e80ea47d9e6d7f.d: crates/adc-bench/src/bin/ablation_proxies.rs Cargo.toml

/root/repo/target/debug/deps/libablation_proxies-d8e80ea47d9e6d7f.rmeta: crates/adc-bench/src/bin/ablation_proxies.rs Cargo.toml

crates/adc-bench/src/bin/ablation_proxies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
