/root/repo/target/debug/deps/fig12_hops-fb4da7acb8ef2618.d: crates/adc-bench/src/bin/fig12_hops.rs

/root/repo/target/debug/deps/fig12_hops-fb4da7acb8ef2618: crates/adc-bench/src/bin/fig12_hops.rs

crates/adc-bench/src/bin/fig12_hops.rs:
