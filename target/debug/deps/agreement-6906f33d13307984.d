/root/repo/target/debug/deps/agreement-6906f33d13307984.d: crates/adc-core/tests/agreement.rs

/root/repo/target/debug/deps/agreement-6906f33d13307984: crates/adc-core/tests/agreement.rs

crates/adc-core/tests/agreement.rs:
