/root/repo/target/debug/deps/adc_vs_carp-4129ff0b5476e6d6.d: tests/adc_vs_carp.rs Cargo.toml

/root/repo/target/debug/deps/libadc_vs_carp-4129ff0b5476e6d6.rmeta: tests/adc_vs_carp.rs Cargo.toml

tests/adc_vs_carp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
