/root/repo/target/debug/deps/fig15_time_by_size-bacc9a79015baf6e.d: crates/adc-bench/src/bin/fig15_time_by_size.rs

/root/repo/target/debug/deps/fig15_time_by_size-bacc9a79015baf6e: crates/adc-bench/src/bin/fig15_time_by_size.rs

crates/adc-bench/src/bin/fig15_time_by_size.rs:
