/root/repo/target/debug/deps/adc_workload-7c1ca20bebd2e292.d: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

/root/repo/target/debug/deps/adc_workload-7c1ca20bebd2e292: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

crates/adc-workload/src/lib.rs:
crates/adc-workload/src/analysis.rs:
crates/adc-workload/src/polygraph.rs:
crates/adc-workload/src/shared.rs:
crates/adc-workload/src/sizes.rs:
crates/adc-workload/src/synthetic.rs:
crates/adc-workload/src/trace.rs:
crates/adc-workload/src/zipf.rs:
