/root/repo/target/debug/deps/workload_gen-5116d0b629159b65.d: crates/adc-bench/benches/workload_gen.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_gen-5116d0b629159b65.rmeta: crates/adc-bench/benches/workload_gen.rs Cargo.toml

crates/adc-bench/benches/workload_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
