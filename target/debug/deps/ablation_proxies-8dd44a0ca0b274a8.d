/root/repo/target/debug/deps/ablation_proxies-8dd44a0ca0b274a8.d: crates/adc-bench/src/bin/ablation_proxies.rs

/root/repo/target/debug/deps/ablation_proxies-8dd44a0ca0b274a8: crates/adc-bench/src/bin/ablation_proxies.rs

crates/adc-bench/src/bin/ablation_proxies.rs:
