/root/repo/target/debug/deps/end_to_end-bc556f051caf6575.d: crates/adc-bench/benches/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-bc556f051caf6575.rmeta: crates/adc-bench/benches/end_to_end.rs Cargo.toml

crates/adc-bench/benches/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
