/root/repo/target/debug/deps/adc_bench-d843230201fb6e74.d: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

/root/repo/target/debug/deps/adc_bench-d843230201fb6e74: crates/adc-bench/src/lib.rs crates/adc-bench/src/cli.rs crates/adc-bench/src/experiment.rs crates/adc-bench/src/output.rs crates/adc-bench/src/parallel.rs crates/adc-bench/src/scale.rs crates/adc-bench/src/sweep.rs

crates/adc-bench/src/lib.rs:
crates/adc-bench/src/cli.rs:
crates/adc-bench/src/experiment.rs:
crates/adc-bench/src/output.rs:
crates/adc-bench/src/parallel.rs:
crates/adc-bench/src/scale.rs:
crates/adc-bench/src/sweep.rs:
