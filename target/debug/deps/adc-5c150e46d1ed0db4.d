/root/repo/target/debug/deps/adc-5c150e46d1ed0db4.d: src/lib.rs src/guide.rs

/root/repo/target/debug/deps/libadc-5c150e46d1ed0db4.rlib: src/lib.rs src/guide.rs

/root/repo/target/debug/deps/libadc-5c150e46d1ed0db4.rmeta: src/lib.rs src/guide.rs

src/lib.rs:
src/guide.rs:
