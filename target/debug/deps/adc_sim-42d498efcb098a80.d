/root/repo/target/debug/deps/adc_sim-42d498efcb098a80.d: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

/root/repo/target/debug/deps/adc_sim-42d498efcb098a80: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs

crates/adc-sim/src/lib.rs:
crates/adc-sim/src/config.rs:
crates/adc-sim/src/cputime.rs:
crates/adc-sim/src/network.rs:
crates/adc-sim/src/report.rs:
crates/adc-sim/src/runner.rs:
crates/adc-sim/src/time.rs:
crates/adc-sim/src/tracelog.rs:
