/root/repo/target/debug/deps/ablation_policy-2e2b6cf0cf770b49.d: crates/adc-bench/src/bin/ablation_policy.rs

/root/repo/target/debug/deps/ablation_policy-2e2b6cf0cf770b49: crates/adc-bench/src/bin/ablation_policy.rs

crates/adc-bench/src/bin/ablation_policy.rs:
