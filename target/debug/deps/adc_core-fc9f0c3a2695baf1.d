/root/repo/target/debug/deps/adc_core-fc9f0c3a2695baf1.d: crates/adc-core/src/lib.rs crates/adc-core/src/agent.rs crates/adc-core/src/config.rs crates/adc-core/src/entry.rs crates/adc-core/src/error.rs crates/adc-core/src/ids.rs crates/adc-core/src/message.rs crates/adc-core/src/proxy.rs crates/adc-core/src/snapshot.rs crates/adc-core/src/stats.rs crates/adc-core/src/tables/mod.rs crates/adc-core/src/tables/lru.rs crates/adc-core/src/tables/mapping.rs crates/adc-core/src/tables/ordered.rs crates/adc-core/src/tables/single.rs crates/adc-core/src/unlimited.rs Cargo.toml

/root/repo/target/debug/deps/libadc_core-fc9f0c3a2695baf1.rmeta: crates/adc-core/src/lib.rs crates/adc-core/src/agent.rs crates/adc-core/src/config.rs crates/adc-core/src/entry.rs crates/adc-core/src/error.rs crates/adc-core/src/ids.rs crates/adc-core/src/message.rs crates/adc-core/src/proxy.rs crates/adc-core/src/snapshot.rs crates/adc-core/src/stats.rs crates/adc-core/src/tables/mod.rs crates/adc-core/src/tables/lru.rs crates/adc-core/src/tables/mapping.rs crates/adc-core/src/tables/ordered.rs crates/adc-core/src/tables/single.rs crates/adc-core/src/unlimited.rs Cargo.toml

crates/adc-core/src/lib.rs:
crates/adc-core/src/agent.rs:
crates/adc-core/src/config.rs:
crates/adc-core/src/entry.rs:
crates/adc-core/src/error.rs:
crates/adc-core/src/ids.rs:
crates/adc-core/src/message.rs:
crates/adc-core/src/proxy.rs:
crates/adc-core/src/snapshot.rs:
crates/adc-core/src/stats.rs:
crates/adc-core/src/tables/mod.rs:
crates/adc-core/src/tables/lru.rs:
crates/adc-core/src/tables/mapping.rs:
crates/adc-core/src/tables/ordered.rs:
crates/adc-core/src/tables/single.rs:
crates/adc-core/src/unlimited.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
