/root/repo/target/debug/deps/fig14_hops_by_size-211dd5ef12e3fa4a.d: crates/adc-bench/src/bin/fig14_hops_by_size.rs

/root/repo/target/debug/deps/fig14_hops_by_size-211dd5ef12e3fa4a: crates/adc-bench/src/bin/fig14_hops_by_size.rs

crates/adc-bench/src/bin/fig14_hops_by_size.rs:
