/root/repo/target/debug/deps/determinism-4e973ad08ae97885.d: crates/adc-bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-4e973ad08ae97885: crates/adc-bench/tests/determinism.rs

crates/adc-bench/tests/determinism.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/adc-bench
