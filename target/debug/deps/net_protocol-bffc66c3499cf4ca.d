/root/repo/target/debug/deps/net_protocol-bffc66c3499cf4ca.d: crates/adc-bench/benches/net_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libnet_protocol-bffc66c3499cf4ca.rmeta: crates/adc-bench/benches/net_protocol.rs Cargo.toml

crates/adc-bench/benches/net_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
