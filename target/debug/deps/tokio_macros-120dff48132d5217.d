/root/repo/target/debug/deps/tokio_macros-120dff48132d5217.d: vendor/tokio-macros/src/lib.rs

/root/repo/target/debug/deps/tokio_macros-120dff48132d5217: vendor/tokio-macros/src/lib.rs

vendor/tokio-macros/src/lib.rs:
