/root/repo/target/debug/deps/gen_trace-c7eddc8f01f27e18.d: crates/adc-bench/src/bin/gen_trace.rs

/root/repo/target/debug/deps/gen_trace-c7eddc8f01f27e18: crates/adc-bench/src/bin/gen_trace.rs

crates/adc-bench/src/bin/gen_trace.rs:
