/root/repo/target/debug/deps/fig15_time_by_size-2f5347522e76e577.d: crates/adc-bench/src/bin/fig15_time_by_size.rs

/root/repo/target/debug/deps/fig15_time_by_size-2f5347522e76e577: crates/adc-bench/src/bin/fig15_time_by_size.rs

crates/adc-bench/src/bin/fig15_time_by_size.rs:
