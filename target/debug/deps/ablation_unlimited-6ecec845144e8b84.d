/root/repo/target/debug/deps/ablation_unlimited-6ecec845144e8b84.d: crates/adc-bench/src/bin/ablation_unlimited.rs

/root/repo/target/debug/deps/ablation_unlimited-6ecec845144e8b84: crates/adc-bench/src/bin/ablation_unlimited.rs

crates/adc-bench/src/bin/ablation_unlimited.rs:
