/root/repo/target/debug/deps/fig11_hit_rate-21fcf8bedd033b5f.d: crates/adc-bench/src/bin/fig11_hit_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_hit_rate-21fcf8bedd033b5f.rmeta: crates/adc-bench/src/bin/fig11_hit_rate.rs Cargo.toml

crates/adc-bench/src/bin/fig11_hit_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
