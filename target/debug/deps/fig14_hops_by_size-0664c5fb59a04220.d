/root/repo/target/debug/deps/fig14_hops_by_size-0664c5fb59a04220.d: crates/adc-bench/src/bin/fig14_hops_by_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_hops_by_size-0664c5fb59a04220.rmeta: crates/adc-bench/src/bin/fig14_hops_by_size.rs Cargo.toml

crates/adc-bench/src/bin/fig14_hops_by_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
