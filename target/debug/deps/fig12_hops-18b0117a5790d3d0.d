/root/repo/target/debug/deps/fig12_hops-18b0117a5790d3d0.d: crates/adc-bench/src/bin/fig12_hops.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_hops-18b0117a5790d3d0.rmeta: crates/adc-bench/src/bin/fig12_hops.rs Cargo.toml

crates/adc-bench/src/bin/fig12_hops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
