/root/repo/target/debug/deps/compare_schemes-ab0fa04dda48dae9.d: crates/adc-bench/src/bin/compare_schemes.rs

/root/repo/target/debug/deps/compare_schemes-ab0fa04dda48dae9: crates/adc-bench/src/bin/compare_schemes.rs

crates/adc-bench/src/bin/compare_schemes.rs:
