/root/repo/target/debug/deps/determinism-c69d2be239a8653b.d: crates/adc-bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-c69d2be239a8653b: crates/adc-bench/tests/determinism.rs

crates/adc-bench/tests/determinism.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/adc-bench
