/root/repo/target/debug/deps/ablation_policy-a6feb6c48d5fbac9.d: crates/adc-bench/src/bin/ablation_policy.rs

/root/repo/target/debug/deps/ablation_policy-a6feb6c48d5fbac9: crates/adc-bench/src/bin/ablation_policy.rs

crates/adc-bench/src/bin/ablation_policy.rs:
