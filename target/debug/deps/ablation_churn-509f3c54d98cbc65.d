/root/repo/target/debug/deps/ablation_churn-509f3c54d98cbc65.d: crates/adc-bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/ablation_churn-509f3c54d98cbc65: crates/adc-bench/src/bin/ablation_churn.rs

crates/adc-bench/src/bin/ablation_churn.rs:
