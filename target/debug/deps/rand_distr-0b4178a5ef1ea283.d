/root/repo/target/debug/deps/rand_distr-0b4178a5ef1ea283.d: vendor/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_distr-0b4178a5ef1ea283.rmeta: vendor/rand_distr/src/lib.rs Cargo.toml

vendor/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
