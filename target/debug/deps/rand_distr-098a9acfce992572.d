/root/repo/target/debug/deps/rand_distr-098a9acfce992572.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/rand_distr-098a9acfce992572: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
