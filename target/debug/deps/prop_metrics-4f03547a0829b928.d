/root/repo/target/debug/deps/prop_metrics-4f03547a0829b928.d: crates/adc-metrics/tests/prop_metrics.rs

/root/repo/target/debug/deps/prop_metrics-4f03547a0829b928: crates/adc-metrics/tests/prop_metrics.rs

crates/adc-metrics/tests/prop_metrics.rs:
