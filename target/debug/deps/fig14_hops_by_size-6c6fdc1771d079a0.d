/root/repo/target/debug/deps/fig14_hops_by_size-6c6fdc1771d079a0.d: crates/adc-bench/src/bin/fig14_hops_by_size.rs

/root/repo/target/debug/deps/fig14_hops_by_size-6c6fdc1771d079a0: crates/adc-bench/src/bin/fig14_hops_by_size.rs

crates/adc-bench/src/bin/fig14_hops_by_size.rs:
