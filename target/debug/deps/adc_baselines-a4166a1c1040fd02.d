/root/repo/target/debug/deps/adc_baselines-a4166a1c1040fd02.d: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

/root/repo/target/debug/deps/libadc_baselines-a4166a1c1040fd02.rlib: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

/root/repo/target/debug/deps/libadc_baselines-a4166a1c1040fd02.rmeta: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

crates/adc-baselines/src/lib.rs:
crates/adc-baselines/src/hashing_proxy.rs:
crates/adc-baselines/src/hierarchy.rs:
crates/adc-baselines/src/lru_cache.rs:
crates/adc-baselines/src/owner.rs:
crates/adc-baselines/src/soap.rs:
