/root/repo/target/debug/deps/compare_schemes-9a51b7742d14b025.d: crates/adc-bench/src/bin/compare_schemes.rs Cargo.toml

/root/repo/target/debug/deps/libcompare_schemes-9a51b7742d14b025.rmeta: crates/adc-bench/src/bin/compare_schemes.rs Cargo.toml

crates/adc-bench/src/bin/compare_schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
