/root/repo/target/debug/deps/adc_baselines-98442d0d7b684a9a.d: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

/root/repo/target/debug/deps/adc_baselines-98442d0d7b684a9a: crates/adc-baselines/src/lib.rs crates/adc-baselines/src/hashing_proxy.rs crates/adc-baselines/src/hierarchy.rs crates/adc-baselines/src/lru_cache.rs crates/adc-baselines/src/owner.rs crates/adc-baselines/src/soap.rs

crates/adc-baselines/src/lib.rs:
crates/adc-baselines/src/hashing_proxy.rs:
crates/adc-baselines/src/hierarchy.rs:
crates/adc-baselines/src/lru_cache.rs:
crates/adc-baselines/src/owner.rs:
crates/adc-baselines/src/soap.rs:
