/root/repo/target/debug/deps/prop_tables-6c0dbfd5cb38f542.d: crates/adc-core/tests/prop_tables.rs

/root/repo/target/debug/deps/prop_tables-6c0dbfd5cb38f542: crates/adc-core/tests/prop_tables.rs

crates/adc-core/tests/prop_tables.rs:
