/root/repo/target/debug/deps/ablation_churn-d0730ad775d30536.d: crates/adc-bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/ablation_churn-d0730ad775d30536: crates/adc-bench/src/bin/ablation_churn.rs

crates/adc-bench/src/bin/ablation_churn.rs:
