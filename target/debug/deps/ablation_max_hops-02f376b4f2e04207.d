/root/repo/target/debug/deps/ablation_max_hops-02f376b4f2e04207.d: crates/adc-bench/src/bin/ablation_max_hops.rs

/root/repo/target/debug/deps/ablation_max_hops-02f376b4f2e04207: crates/adc-bench/src/bin/ablation_max_hops.rs

crates/adc-bench/src/bin/ablation_max_hops.rs:
