/root/repo/target/debug/deps/sim_vs_tcp-ec8f5ec2eea09bb0.d: tests/sim_vs_tcp.rs Cargo.toml

/root/repo/target/debug/deps/libsim_vs_tcp-ec8f5ec2eea09bb0.rmeta: tests/sim_vs_tcp.rs Cargo.toml

tests/sim_vs_tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
