/root/repo/target/debug/deps/ablation_unlimited-46def226a58a6fcf.d: crates/adc-bench/src/bin/ablation_unlimited.rs

/root/repo/target/debug/deps/ablation_unlimited-46def226a58a6fcf: crates/adc-bench/src/bin/ablation_unlimited.rs

crates/adc-bench/src/bin/ablation_unlimited.rs:
