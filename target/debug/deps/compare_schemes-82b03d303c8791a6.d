/root/repo/target/debug/deps/compare_schemes-82b03d303c8791a6.d: crates/adc-bench/src/bin/compare_schemes.rs

/root/repo/target/debug/deps/compare_schemes-82b03d303c8791a6: crates/adc-bench/src/bin/compare_schemes.rs

crates/adc-bench/src/bin/compare_schemes.rs:
