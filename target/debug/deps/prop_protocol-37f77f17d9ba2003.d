/root/repo/target/debug/deps/prop_protocol-37f77f17d9ba2003.d: crates/adc-net/tests/prop_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprop_protocol-37f77f17d9ba2003.rmeta: crates/adc-net/tests/prop_protocol.rs Cargo.toml

crates/adc-net/tests/prop_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
