/root/repo/target/debug/deps/adc_workload-3f00ecc6232c2fce.d: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

/root/repo/target/debug/deps/libadc_workload-3f00ecc6232c2fce.rlib: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

/root/repo/target/debug/deps/libadc_workload-3f00ecc6232c2fce.rmeta: crates/adc-workload/src/lib.rs crates/adc-workload/src/analysis.rs crates/adc-workload/src/polygraph.rs crates/adc-workload/src/shared.rs crates/adc-workload/src/sizes.rs crates/adc-workload/src/synthetic.rs crates/adc-workload/src/trace.rs crates/adc-workload/src/zipf.rs

crates/adc-workload/src/lib.rs:
crates/adc-workload/src/analysis.rs:
crates/adc-workload/src/polygraph.rs:
crates/adc-workload/src/shared.rs:
crates/adc-workload/src/sizes.rs:
crates/adc-workload/src/synthetic.rs:
crates/adc-workload/src/trace.rs:
crates/adc-workload/src/zipf.rs:
