/root/repo/target/debug/deps/tokio_macros-b7f8bd336c854a20.d: vendor/tokio-macros/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtokio_macros-b7f8bd336c854a20.so: vendor/tokio-macros/src/lib.rs Cargo.toml

vendor/tokio-macros/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
