/root/repo/target/debug/deps/fig15_time_by_size-c2fae37a88ba045f.d: crates/adc-bench/src/bin/fig15_time_by_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_time_by_size-c2fae37a88ba045f.rmeta: crates/adc-bench/src/bin/fig15_time_by_size.rs Cargo.toml

crates/adc-bench/src/bin/fig15_time_by_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
