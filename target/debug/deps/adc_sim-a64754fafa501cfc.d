/root/repo/target/debug/deps/adc_sim-a64754fafa501cfc.d: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs Cargo.toml

/root/repo/target/debug/deps/libadc_sim-a64754fafa501cfc.rmeta: crates/adc-sim/src/lib.rs crates/adc-sim/src/config.rs crates/adc-sim/src/cputime.rs crates/adc-sim/src/network.rs crates/adc-sim/src/report.rs crates/adc-sim/src/runner.rs crates/adc-sim/src/time.rs crates/adc-sim/src/tracelog.rs Cargo.toml

crates/adc-sim/src/lib.rs:
crates/adc-sim/src/config.rs:
crates/adc-sim/src/cputime.rs:
crates/adc-sim/src/network.rs:
crates/adc-sim/src/report.rs:
crates/adc-sim/src/runner.rs:
crates/adc-sim/src/time.rs:
crates/adc-sim/src/tracelog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
