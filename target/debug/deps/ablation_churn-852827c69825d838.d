/root/repo/target/debug/deps/ablation_churn-852827c69825d838.d: crates/adc-bench/src/bin/ablation_churn.rs

/root/repo/target/debug/deps/ablation_churn-852827c69825d838: crates/adc-bench/src/bin/ablation_churn.rs

crates/adc-bench/src/bin/ablation_churn.rs:
