/root/repo/target/debug/deps/serde-9a6974e40e96b16c.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-9a6974e40e96b16c: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
