/root/repo/target/debug/deps/cluster-4f24ada43a37d098.d: crates/adc-net/tests/cluster.rs

/root/repo/target/debug/deps/cluster-4f24ada43a37d098: crates/adc-net/tests/cluster.rs

crates/adc-net/tests/cluster.rs:
