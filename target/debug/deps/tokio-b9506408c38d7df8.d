/root/repo/target/debug/deps/tokio-b9506408c38d7df8.d: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libtokio-b9506408c38d7df8.rmeta: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs Cargo.toml

vendor/tokio/src/lib.rs:
vendor/tokio/src/io.rs:
vendor/tokio/src/net.rs:
vendor/tokio/src/runtime.rs:
vendor/tokio/src/sync.rs:
vendor/tokio/src/task.rs:
vendor/tokio/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
