/root/repo/target/debug/deps/schemes-5a5a106ba3e888e6.d: tests/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libschemes-5a5a106ba3e888e6.rmeta: tests/schemes.rs Cargo.toml

tests/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
