/root/repo/target/debug/deps/adc-ed1a36741c85b7e5.d: src/lib.rs src/guide.rs Cargo.toml

/root/repo/target/debug/deps/libadc-ed1a36741c85b7e5.rmeta: src/lib.rs src/guide.rs Cargo.toml

src/lib.rs:
src/guide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
