/root/repo/target/debug/deps/prop_tables-d93a1cf8f1bf9619.d: crates/adc-core/tests/prop_tables.rs Cargo.toml

/root/repo/target/debug/deps/libprop_tables-d93a1cf8f1bf9619.rmeta: crates/adc-core/tests/prop_tables.rs Cargo.toml

crates/adc-core/tests/prop_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
