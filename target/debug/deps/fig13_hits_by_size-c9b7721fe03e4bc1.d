/root/repo/target/debug/deps/fig13_hits_by_size-c9b7721fe03e4bc1.d: crates/adc-bench/src/bin/fig13_hits_by_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_hits_by_size-c9b7721fe03e4bc1.rmeta: crates/adc-bench/src/bin/fig13_hits_by_size.rs Cargo.toml

crates/adc-bench/src/bin/fig13_hits_by_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
