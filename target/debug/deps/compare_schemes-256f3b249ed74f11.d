/root/repo/target/debug/deps/compare_schemes-256f3b249ed74f11.d: crates/adc-bench/src/bin/compare_schemes.rs Cargo.toml

/root/repo/target/debug/deps/libcompare_schemes-256f3b249ed74f11.rmeta: crates/adc-bench/src/bin/compare_schemes.rs Cargo.toml

crates/adc-bench/src/bin/compare_schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
