/root/repo/target/debug/deps/prelearned-59d60585aa2e59ef.d: crates/adc-bench/src/bin/prelearned.rs Cargo.toml

/root/repo/target/debug/deps/libprelearned-59d60585aa2e59ef.rmeta: crates/adc-bench/src/bin/prelearned.rs Cargo.toml

crates/adc-bench/src/bin/prelearned.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
