/root/repo/target/debug/deps/prop_owner-8f14de0dca5d139c.d: crates/adc-baselines/tests/prop_owner.rs

/root/repo/target/debug/deps/prop_owner-8f14de0dca5d139c: crates/adc-baselines/tests/prop_owner.rs

crates/adc-baselines/tests/prop_owner.rs:
