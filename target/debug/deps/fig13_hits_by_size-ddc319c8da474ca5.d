/root/repo/target/debug/deps/fig13_hits_by_size-ddc319c8da474ca5.d: crates/adc-bench/src/bin/fig13_hits_by_size.rs

/root/repo/target/debug/deps/fig13_hits_by_size-ddc319c8da474ca5: crates/adc-bench/src/bin/fig13_hits_by_size.rs

crates/adc-bench/src/bin/fig13_hits_by_size.rs:
