/root/repo/target/debug/deps/fig11_hit_rate-48b9fe3079eb7b11.d: crates/adc-bench/src/bin/fig11_hit_rate.rs

/root/repo/target/debug/deps/fig11_hit_rate-48b9fe3079eb7b11: crates/adc-bench/src/bin/fig11_hit_rate.rs

crates/adc-bench/src/bin/fig11_hit_rate.rs:
