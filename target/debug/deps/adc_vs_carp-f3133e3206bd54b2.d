/root/repo/target/debug/deps/adc_vs_carp-f3133e3206bd54b2.d: tests/adc_vs_carp.rs

/root/repo/target/debug/deps/adc_vs_carp-f3133e3206bd54b2: tests/adc_vs_carp.rs

tests/adc_vs_carp.rs:
