/root/repo/target/debug/deps/agents-abc1aef09b75e32b.d: crates/adc-bench/benches/agents.rs Cargo.toml

/root/repo/target/debug/deps/libagents-abc1aef09b75e32b.rmeta: crates/adc-bench/benches/agents.rs Cargo.toml

crates/adc-bench/benches/agents.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
