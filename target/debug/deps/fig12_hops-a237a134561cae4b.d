/root/repo/target/debug/deps/fig12_hops-a237a134561cae4b.d: crates/adc-bench/src/bin/fig12_hops.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_hops-a237a134561cae4b.rmeta: crates/adc-bench/src/bin/fig12_hops.rs Cargo.toml

crates/adc-bench/src/bin/fig12_hops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
