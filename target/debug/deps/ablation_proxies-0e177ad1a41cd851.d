/root/repo/target/debug/deps/ablation_proxies-0e177ad1a41cd851.d: crates/adc-bench/src/bin/ablation_proxies.rs Cargo.toml

/root/repo/target/debug/deps/libablation_proxies-0e177ad1a41cd851.rmeta: crates/adc-bench/src/bin/ablation_proxies.rs Cargo.toml

crates/adc-bench/src/bin/ablation_proxies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
