/root/repo/target/debug/deps/fig11_hit_rate-98b80486615bf8c8.d: crates/adc-bench/src/bin/fig11_hit_rate.rs

/root/repo/target/debug/deps/fig11_hit_rate-98b80486615bf8c8: crates/adc-bench/src/bin/fig11_hit_rate.rs

crates/adc-bench/src/bin/fig11_hit_rate.rs:
