/root/repo/target/debug/deps/rand_distr-74e956cf5f971e3a.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-74e956cf5f971e3a.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-74e956cf5f971e3a.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
