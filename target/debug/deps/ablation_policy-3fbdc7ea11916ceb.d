/root/repo/target/debug/deps/ablation_policy-3fbdc7ea11916ceb.d: crates/adc-bench/src/bin/ablation_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_policy-3fbdc7ea11916ceb.rmeta: crates/adc-bench/src/bin/ablation_policy.rs Cargo.toml

crates/adc-bench/src/bin/ablation_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
