/root/repo/target/debug/deps/fig11_hit_rate-cfa4b2a6e470cdc3.d: crates/adc-bench/src/bin/fig11_hit_rate.rs

/root/repo/target/debug/deps/fig11_hit_rate-cfa4b2a6e470cdc3: crates/adc-bench/src/bin/fig11_hit_rate.rs

crates/adc-bench/src/bin/fig11_hit_rate.rs:
