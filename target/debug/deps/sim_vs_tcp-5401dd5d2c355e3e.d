/root/repo/target/debug/deps/sim_vs_tcp-5401dd5d2c355e3e.d: tests/sim_vs_tcp.rs

/root/repo/target/debug/deps/sim_vs_tcp-5401dd5d2c355e3e: tests/sim_vs_tcp.rs

tests/sim_vs_tcp.rs:
