/root/repo/target/debug/deps/convergence-ffe852171ebe58b9.d: tests/convergence.rs Cargo.toml

/root/repo/target/debug/deps/libconvergence-ffe852171ebe58b9.rmeta: tests/convergence.rs Cargo.toml

tests/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
