/root/repo/target/debug/deps/prop_workload-c5d7002d4ccdc5f3.d: crates/adc-workload/tests/prop_workload.rs Cargo.toml

/root/repo/target/debug/deps/libprop_workload-c5d7002d4ccdc5f3.rmeta: crates/adc-workload/tests/prop_workload.rs Cargo.toml

crates/adc-workload/tests/prop_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
