/root/repo/target/debug/deps/schemes-b5bc76b0f1c6709f.d: tests/schemes.rs

/root/repo/target/debug/deps/schemes-b5bc76b0f1c6709f: tests/schemes.rs

tests/schemes.rs:
