/root/repo/target/debug/deps/fig12_hops-936603fed3900485.d: crates/adc-bench/src/bin/fig12_hops.rs

/root/repo/target/debug/deps/fig12_hops-936603fed3900485: crates/adc-bench/src/bin/fig12_hops.rs

crates/adc-bench/src/bin/fig12_hops.rs:
