/root/repo/target/debug/deps/ablation_unlimited-61c26d46bde77de8.d: crates/adc-bench/src/bin/ablation_unlimited.rs

/root/repo/target/debug/deps/ablation_unlimited-61c26d46bde77de8: crates/adc-bench/src/bin/ablation_unlimited.rs

crates/adc-bench/src/bin/ablation_unlimited.rs:
