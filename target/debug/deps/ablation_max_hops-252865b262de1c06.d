/root/repo/target/debug/deps/ablation_max_hops-252865b262de1c06.d: crates/adc-bench/src/bin/ablation_max_hops.rs

/root/repo/target/debug/deps/ablation_max_hops-252865b262de1c06: crates/adc-bench/src/bin/ablation_max_hops.rs

crates/adc-bench/src/bin/ablation_max_hops.rs:
