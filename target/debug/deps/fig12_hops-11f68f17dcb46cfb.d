/root/repo/target/debug/deps/fig12_hops-11f68f17dcb46cfb.d: crates/adc-bench/src/bin/fig12_hops.rs

/root/repo/target/debug/deps/fig12_hops-11f68f17dcb46cfb: crates/adc-bench/src/bin/fig12_hops.rs

crates/adc-bench/src/bin/fig12_hops.rs:
