/root/repo/target/debug/deps/prop_agents-186726d6de82c0d3.d: crates/adc-core/tests/prop_agents.rs

/root/repo/target/debug/deps/prop_agents-186726d6de82c0d3: crates/adc-core/tests/prop_agents.rs

crates/adc-core/tests/prop_agents.rs:
