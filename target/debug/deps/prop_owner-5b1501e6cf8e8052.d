/root/repo/target/debug/deps/prop_owner-5b1501e6cf8e8052.d: crates/adc-baselines/tests/prop_owner.rs Cargo.toml

/root/repo/target/debug/deps/libprop_owner-5b1501e6cf8e8052.rmeta: crates/adc-baselines/tests/prop_owner.rs Cargo.toml

crates/adc-baselines/tests/prop_owner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
