/root/repo/target/debug/deps/fig14_hops_by_size-de7ee30ab64fbd28.d: crates/adc-bench/src/bin/fig14_hops_by_size.rs

/root/repo/target/debug/deps/fig14_hops_by_size-de7ee30ab64fbd28: crates/adc-bench/src/bin/fig14_hops_by_size.rs

crates/adc-bench/src/bin/fig14_hops_by_size.rs:
