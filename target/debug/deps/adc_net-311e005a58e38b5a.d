/root/repo/target/debug/deps/adc_net-311e005a58e38b5a.d: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs

/root/repo/target/debug/deps/libadc_net-311e005a58e38b5a.rlib: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs

/root/repo/target/debug/deps/libadc_net-311e005a58e38b5a.rmeta: crates/adc-net/src/lib.rs crates/adc-net/src/book.rs crates/adc-net/src/client.rs crates/adc-net/src/cluster.rs crates/adc-net/src/driver.rs crates/adc-net/src/node.rs crates/adc-net/src/protocol.rs crates/adc-net/src/transport.rs

crates/adc-net/src/lib.rs:
crates/adc-net/src/book.rs:
crates/adc-net/src/client.rs:
crates/adc-net/src/cluster.rs:
crates/adc-net/src/driver.rs:
crates/adc-net/src/node.rs:
crates/adc-net/src/protocol.rs:
crates/adc-net/src/transport.rs:
