/root/repo/target/debug/deps/prelearned-5d791dbbfa1b8eea.d: crates/adc-bench/src/bin/prelearned.rs

/root/repo/target/debug/deps/prelearned-5d791dbbfa1b8eea: crates/adc-bench/src/bin/prelearned.rs

crates/adc-bench/src/bin/prelearned.rs:
