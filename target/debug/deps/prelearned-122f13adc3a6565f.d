/root/repo/target/debug/deps/prelearned-122f13adc3a6565f.d: crates/adc-bench/src/bin/prelearned.rs Cargo.toml

/root/repo/target/debug/deps/libprelearned-122f13adc3a6565f.rmeta: crates/adc-bench/src/bin/prelearned.rs Cargo.toml

crates/adc-bench/src/bin/prelearned.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
