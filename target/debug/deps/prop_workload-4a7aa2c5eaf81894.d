/root/repo/target/debug/deps/prop_workload-4a7aa2c5eaf81894.d: crates/adc-workload/tests/prop_workload.rs

/root/repo/target/debug/deps/prop_workload-4a7aa2c5eaf81894: crates/adc-workload/tests/prop_workload.rs

crates/adc-workload/tests/prop_workload.rs:
