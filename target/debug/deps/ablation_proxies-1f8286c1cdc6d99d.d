/root/repo/target/debug/deps/ablation_proxies-1f8286c1cdc6d99d.d: crates/adc-bench/src/bin/ablation_proxies.rs

/root/repo/target/debug/deps/ablation_proxies-1f8286c1cdc6d99d: crates/adc-bench/src/bin/ablation_proxies.rs

crates/adc-bench/src/bin/ablation_proxies.rs:
