/root/repo/target/debug/deps/fig13_hits_by_size-6867b0f1617ce8c3.d: crates/adc-bench/src/bin/fig13_hits_by_size.rs

/root/repo/target/debug/deps/fig13_hits_by_size-6867b0f1617ce8c3: crates/adc-bench/src/bin/fig13_hits_by_size.rs

crates/adc-bench/src/bin/fig13_hits_by_size.rs:
