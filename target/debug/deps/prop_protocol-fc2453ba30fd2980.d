/root/repo/target/debug/deps/prop_protocol-fc2453ba30fd2980.d: crates/adc-net/tests/prop_protocol.rs

/root/repo/target/debug/deps/prop_protocol-fc2453ba30fd2980: crates/adc-net/tests/prop_protocol.rs

crates/adc-net/tests/prop_protocol.rs:
