/root/repo/target/debug/deps/ablation_aging-4c449d74466af90b.d: crates/adc-bench/src/bin/ablation_aging.rs

/root/repo/target/debug/deps/ablation_aging-4c449d74466af90b: crates/adc-bench/src/bin/ablation_aging.rs

crates/adc-bench/src/bin/ablation_aging.rs:
