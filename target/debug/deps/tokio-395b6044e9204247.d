/root/repo/target/debug/deps/tokio-395b6044e9204247.d: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

/root/repo/target/debug/deps/tokio-395b6044e9204247: vendor/tokio/src/lib.rs vendor/tokio/src/io.rs vendor/tokio/src/net.rs vendor/tokio/src/runtime.rs vendor/tokio/src/sync.rs vendor/tokio/src/task.rs vendor/tokio/src/time.rs

vendor/tokio/src/lib.rs:
vendor/tokio/src/io.rs:
vendor/tokio/src/net.rs:
vendor/tokio/src/runtime.rs:
vendor/tokio/src/sync.rs:
vendor/tokio/src/task.rs:
vendor/tokio/src/time.rs:
