/root/repo/target/debug/deps/ablation_policy-54f2c3804d696f8d.d: crates/adc-bench/src/bin/ablation_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_policy-54f2c3804d696f8d.rmeta: crates/adc-bench/src/bin/ablation_policy.rs Cargo.toml

crates/adc-bench/src/bin/ablation_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
