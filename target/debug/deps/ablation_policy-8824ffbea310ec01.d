/root/repo/target/debug/deps/ablation_policy-8824ffbea310ec01.d: crates/adc-bench/src/bin/ablation_policy.rs

/root/repo/target/debug/deps/ablation_policy-8824ffbea310ec01: crates/adc-bench/src/bin/ablation_policy.rs

crates/adc-bench/src/bin/ablation_policy.rs:
