/root/repo/target/debug/deps/prelearned-612c493d8451b6ad.d: crates/adc-bench/src/bin/prelearned.rs

/root/repo/target/debug/deps/prelearned-612c493d8451b6ad: crates/adc-bench/src/bin/prelearned.rs

crates/adc-bench/src/bin/prelearned.rs:
