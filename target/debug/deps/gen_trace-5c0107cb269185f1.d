/root/repo/target/debug/deps/gen_trace-5c0107cb269185f1.d: crates/adc-bench/src/bin/gen_trace.rs Cargo.toml

/root/repo/target/debug/deps/libgen_trace-5c0107cb269185f1.rmeta: crates/adc-bench/src/bin/gen_trace.rs Cargo.toml

crates/adc-bench/src/bin/gen_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
