/root/repo/target/debug/deps/gen_trace-6bf098ae089d589f.d: crates/adc-bench/src/bin/gen_trace.rs

/root/repo/target/debug/deps/gen_trace-6bf098ae089d589f: crates/adc-bench/src/bin/gen_trace.rs

crates/adc-bench/src/bin/gen_trace.rs:
