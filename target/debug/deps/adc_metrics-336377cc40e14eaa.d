/root/repo/target/debug/deps/adc_metrics-336377cc40e14eaa.d: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

/root/repo/target/debug/deps/libadc_metrics-336377cc40e14eaa.rlib: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

/root/repo/target/debug/deps/libadc_metrics-336377cc40e14eaa.rmeta: crates/adc-metrics/src/lib.rs crates/adc-metrics/src/csv.rs crates/adc-metrics/src/histogram.rs crates/adc-metrics/src/moving.rs crates/adc-metrics/src/quantile.rs crates/adc-metrics/src/series.rs crates/adc-metrics/src/summary.rs

crates/adc-metrics/src/lib.rs:
crates/adc-metrics/src/csv.rs:
crates/adc-metrics/src/histogram.rs:
crates/adc-metrics/src/moving.rs:
crates/adc-metrics/src/quantile.rs:
crates/adc-metrics/src/series.rs:
crates/adc-metrics/src/summary.rs:
