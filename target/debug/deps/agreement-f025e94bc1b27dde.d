/root/repo/target/debug/deps/agreement-f025e94bc1b27dde.d: crates/adc-core/tests/agreement.rs Cargo.toml

/root/repo/target/debug/deps/libagreement-f025e94bc1b27dde.rmeta: crates/adc-core/tests/agreement.rs Cargo.toml

crates/adc-core/tests/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
