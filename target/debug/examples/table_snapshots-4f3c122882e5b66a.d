/root/repo/target/debug/examples/table_snapshots-4f3c122882e5b66a.d: examples/table_snapshots.rs Cargo.toml

/root/repo/target/debug/examples/libtable_snapshots-4f3c122882e5b66a.rmeta: examples/table_snapshots.rs Cargo.toml

examples/table_snapshots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
