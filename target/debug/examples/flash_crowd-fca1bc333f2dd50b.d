/root/repo/target/debug/examples/flash_crowd-fca1bc333f2dd50b.d: examples/flash_crowd.rs Cargo.toml

/root/repo/target/debug/examples/libflash_crowd-fca1bc333f2dd50b.rmeta: examples/flash_crowd.rs Cargo.toml

examples/flash_crowd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
