/root/repo/target/debug/examples/tcp_cluster-dae105a677b89d4a.d: examples/tcp_cluster.rs

/root/repo/target/debug/examples/tcp_cluster-dae105a677b89d4a: examples/tcp_cluster.rs

examples/tcp_cluster.rs:
