/root/repo/target/debug/examples/parameter_sweep-cc8615f31b3f048e.d: examples/parameter_sweep.rs

/root/repo/target/debug/examples/parameter_sweep-cc8615f31b3f048e: examples/parameter_sweep.rs

examples/parameter_sweep.rs:
