/root/repo/target/debug/examples/churn_recovery-bb81ab7c786a18ed.d: examples/churn_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libchurn_recovery-bb81ab7c786a18ed.rmeta: examples/churn_recovery.rs Cargo.toml

examples/churn_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
