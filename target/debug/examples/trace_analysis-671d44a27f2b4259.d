/root/repo/target/debug/examples/trace_analysis-671d44a27f2b4259.d: examples/trace_analysis.rs

/root/repo/target/debug/examples/trace_analysis-671d44a27f2b4259: examples/trace_analysis.rs

examples/trace_analysis.rs:
