/root/repo/target/debug/examples/quickstart-e239e210adc81460.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e239e210adc81460: examples/quickstart.rs

examples/quickstart.rs:
