/root/repo/target/debug/examples/trace_analysis-3093dc64b6908e25.d: examples/trace_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_analysis-3093dc64b6908e25.rmeta: examples/trace_analysis.rs Cargo.toml

examples/trace_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
