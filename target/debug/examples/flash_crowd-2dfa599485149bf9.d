/root/repo/target/debug/examples/flash_crowd-2dfa599485149bf9.d: examples/flash_crowd.rs

/root/repo/target/debug/examples/flash_crowd-2dfa599485149bf9: examples/flash_crowd.rs

examples/flash_crowd.rs:
