/root/repo/target/debug/examples/table_snapshots-e2b4511c4b8dbe1a.d: examples/table_snapshots.rs

/root/repo/target/debug/examples/table_snapshots-e2b4511c4b8dbe1a: examples/table_snapshots.rs

examples/table_snapshots.rs:
