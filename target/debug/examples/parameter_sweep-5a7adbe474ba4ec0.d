/root/repo/target/debug/examples/parameter_sweep-5a7adbe474ba4ec0.d: examples/parameter_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libparameter_sweep-5a7adbe474ba4ec0.rmeta: examples/parameter_sweep.rs Cargo.toml

examples/parameter_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
