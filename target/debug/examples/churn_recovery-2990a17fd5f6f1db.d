/root/repo/target/debug/examples/churn_recovery-2990a17fd5f6f1db.d: examples/churn_recovery.rs

/root/repo/target/debug/examples/churn_recovery-2990a17fd5f6f1db: examples/churn_recovery.rs

examples/churn_recovery.rs:
