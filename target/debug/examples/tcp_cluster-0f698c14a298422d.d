/root/repo/target/debug/examples/tcp_cluster-0f698c14a298422d.d: examples/tcp_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libtcp_cluster-0f698c14a298422d.rmeta: examples/tcp_cluster.rs Cargo.toml

examples/tcp_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
