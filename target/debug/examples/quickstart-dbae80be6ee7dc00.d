/root/repo/target/debug/examples/quickstart-dbae80be6ee7dc00.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-dbae80be6ee7dc00.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
