//! Reduced-scale shape checks of the paper's headline comparison
//! (Figures 11 and 12): the qualitative claims must hold at 1/100 scale.

use adc::prelude::*;
use adc::sim::Simulation;

const SCALE: f64 = 0.01;

fn workload() -> PolygraphConfig {
    PolygraphConfig::scaled(SCALE)
}

fn adc_config() -> AdcConfig {
    AdcConfig::builder()
        .single_capacity(200)
        .multiple_capacity(200)
        .cache_capacity(100)
        .max_hops(16)
        .build()
}

fn run_adc() -> SimReport {
    let sim = Simulation::new(adc::adc_cluster(5, adc_config()), SimConfig::fast());
    sim.run(workload().build())
}

fn run_carp() -> SimReport {
    let sim = Simulation::new(adc::carp_cluster(5, 100), SimConfig::fast());
    sim.run(workload().build())
}

#[test]
fn fill_phase_has_almost_no_hits() {
    let adc = run_adc();
    assert!(
        adc.phase(Phase::Fill).hit_rate() < 0.05,
        "fill phase hit rate {:.4}",
        adc.phase(Phase::Fill).hit_rate()
    );
}

#[test]
fn adc_learns_phase_two_beats_phase_one() {
    let adc = run_adc();
    assert!(
        adc.phase(Phase::RequestII).hit_rate() > adc.phase(Phase::RequestI).hit_rate(),
        "no learning visible: I={:.4} II={:.4}",
        adc.phase(Phase::RequestI).hit_rate(),
        adc.phase(Phase::RequestII).hit_rate()
    );
}

#[test]
fn steady_state_hit_rates_land_in_the_paper_regime() {
    // The paper's curves settle around 0.7 for both systems.
    let adc = run_adc();
    let carp = run_carp();
    let adc_p2 = adc.phase(Phase::RequestII).hit_rate();
    let carp_p2 = carp.phase(Phase::RequestII).hit_rate();
    assert!(
        (0.6..=0.8).contains(&adc_p2),
        "ADC phase II hit rate {adc_p2:.4} outside the paper's regime"
    );
    assert!(
        (0.6..=0.8).contains(&carp_p2),
        "CARP phase II hit rate {carp_p2:.4} outside the paper's regime"
    );
}

#[test]
fn adc_matches_or_beats_hashing_after_learning() {
    // "the ADC algorithm drags after the Hashing algorithm ... but is
    // then after the learning phase is finished quite able to outperform
    // the hashing algorithm by a minimal margin."
    let adc = run_adc();
    let carp = run_carp();
    let adc_p2 = adc.phase(Phase::RequestII).hit_rate();
    let carp_p2 = carp.phase(Phase::RequestII).hit_rate();
    assert!(
        adc_p2 >= carp_p2 - 0.01,
        "ADC should be competitive in steady state: adc={adc_p2:.4} carp={carp_p2:.4}"
    );
}

#[test]
fn adc_lags_during_learning() {
    let adc = run_adc();
    let carp = run_carp();
    // During request phase I (learning), hashing leads.
    assert!(
        adc.phase(Phase::RequestI).hit_rate() <= carp.phase(Phase::RequestI).hit_rate(),
        "ADC should lag while learning: adc={:.4} carp={:.4}",
        adc.phase(Phase::RequestI).hit_rate(),
        carp.phase(Phase::RequestI).hit_rate()
    );
}

#[test]
fn adc_needs_more_hops_than_hashing() {
    // Figure 12: "on average, the ADC algorithm needs two more hops than
    // the hashing algorithm". Direction and rough magnitude must hold.
    let adc = run_adc();
    let carp = run_carp();
    let gap = adc.mean_hops() - carp.mean_hops();
    assert!(
        (0.5..=3.0).contains(&gap),
        "hop gap {gap:.2} (adc {:.2}, carp {:.2})",
        adc.mean_hops(),
        carp.mean_hops()
    );
}

#[test]
fn both_systems_complete_every_request() {
    let total = workload().total_requests();
    assert_eq!(run_adc().completed, total);
    assert_eq!(run_carp().completed, total);
}

#[test]
fn selective_caching_beats_lru_caching_in_adc() {
    // §III.4: "our algorithm works better with the approach of selective
    // caching and an ordered table than a table based on a typical LRU
    // algorithm." (Ablation A1 at test scale.)
    let selective = run_adc();
    let mut lru_config = adc_config();
    lru_config.policy = CachePolicy::LruAll;
    let lru = {
        let agents: Vec<AdcProxy> = (0..5)
            .map(|i| AdcProxy::new(ProxyId::new(i), 5, lru_config.clone()))
            .collect();
        Simulation::new(agents, SimConfig::fast()).run(workload().build())
    };
    assert!(
        selective.phase(Phase::RequestII).hit_rate()
            >= lru.phase(Phase::RequestII).hit_rate() - 0.02,
        "selective {:.4} should not trail LRU {:.4}",
        selective.phase(Phase::RequestII).hit_rate(),
        lru.phase(Phase::RequestII).hit_rate()
    );
}
