//! Cross-crate property-based tests: whatever the workload, the system's
//! conservation laws and structural invariants must hold.

use adc::prelude::*;
use adc::sim::Simulation;
use adc::workload::RequestRecord;
use proptest::prelude::*;

fn arb_records(
    max_len: usize,
    universe: u64,
    clients: u32,
) -> impl Strategy<Value = Vec<RequestRecord>> {
    prop::collection::vec((0..universe, 0..clients), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (object, client))| RequestRecord {
                seq: i as u64,
                client: ClientId::new(client),
                object: ObjectId::new(object),
                size: 64,
                phase: Phase::RequestI,
            })
            .collect()
    })
}

fn tiny_adc(n: u32, max_hops: u32) -> Vec<AdcProxy> {
    let config = AdcConfig::builder()
        .single_capacity(32)
        .multiple_capacity(16)
        .cache_capacity(8)
        .max_hops(max_hops)
        .build();
    adc::adc_cluster(n, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected request completes exactly once, whatever the mix.
    #[test]
    fn adc_conserves_requests(records in arb_records(300, 40, 6), proxies in 1u32..6) {
        let total = records.len() as u64;
        let sim = Simulation::new(tiny_adc(proxies, 8), SimConfig::fast());
        let report = sim.run(records);
        prop_assert_eq!(report.completed, total);
        prop_assert!(report.hits <= total);
    }

    /// Hop counts are bounded: at least 2 (client→proxy→client), at most
    /// 2 * (max_hops + 3) for the longest loop-terminated search.
    #[test]
    fn adc_hop_bounds(records in arb_records(200, 30, 4), max_hops in 1u32..10) {
        let sim = Simulation::new(tiny_adc(3, max_hops), SimConfig::fast());
        let report = sim.run(records);
        if let (Some(min), Some(max)) = (report.hops.min(), report.hops.max()) {
            prop_assert!(min >= 2.0, "min hops {min}");
            let bound = 2.0 * (max_hops as f64 + 3.0);
            prop_assert!(max <= bound, "max hops {max} > bound {bound}");
        }
    }

    /// The first request for any object can never be a hit, and hits only
    /// happen for objects requested before.
    #[test]
    fn first_sighting_never_hits(records in arb_records(200, 60, 4)) {
        let first_is_unique = records.iter().map(|r| r.object).collect::<Vec<_>>();
        let sim = Simulation::new(tiny_adc(3, 8), SimConfig::fast());
        let report = sim.run(records);
        // Hits <= number of repeat requests.
        let mut seen = std::collections::HashSet::new();
        let repeats = first_is_unique.iter().filter(|o| !seen.insert(**o)).count() as u64;
        prop_assert!(report.hits <= repeats, "hits {} > repeats {repeats}", report.hits);
    }

    /// Table invariants survive arbitrary workloads, and no pending
    /// request leaks after a sequential run.
    #[test]
    fn invariants_after_arbitrary_runs(records in arb_records(300, 50, 5), proxies in 1u32..5) {
        let sim = Simulation::new(tiny_adc(proxies, 6), SimConfig::fast());
        let (_, agents) = sim.run_with_agents(records);
        for agent in &agents {
            agent.tables().assert_invariants();
            prop_assert_eq!(agent.pending_requests(), 0);
            prop_assert!(agent.cached_objects() <= 8);
        }
    }

    /// CARP conserves requests and respects its tighter hop bound
    /// (client→p1→owner→origin→owner→client = 5).
    #[test]
    fn carp_conserves_and_bounds(records in arb_records(300, 40, 6), proxies in 1u32..6) {
        let total = records.len() as u64;
        let sim = Simulation::new(adc::carp_cluster(proxies, 8), SimConfig::fast());
        let report = sim.run(records);
        prop_assert_eq!(report.completed, total);
        if let Some(max) = report.hops.max() {
            prop_assert!(max <= 5.0, "CARP max hops {max}");
        }
    }

    /// Deterministic: the same records give byte-identical series.
    #[test]
    fn runs_are_reproducible(records in arb_records(150, 30, 4)) {
        let run = |records: Vec<RequestRecord>| {
            let sim = Simulation::new(tiny_adc(3, 8), SimConfig::fast());
            sim.run(records)
        };
        let a = run(records.clone());
        let b = run(records);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.hits, b.hits);
        prop_assert_eq!(a.messages_delivered, b.messages_delivered);
        prop_assert_eq!(a.hit_series, b.hit_series);
    }

    /// Message conservation: hops counted per flow sum to the number of
    /// distinct-node deliveries.
    #[test]
    fn hops_sum_matches_deliveries(records in arb_records(200, 30, 4)) {
        let sim = Simulation::new(tiny_adc(3, 8), SimConfig::fast());
        let report = sim.run(records);
        // Every delivery between distinct nodes is attributed to a flow;
        // self-deliveries are free. So sum(hops) <= messages_delivered.
        let hop_sum = report.hops.sum();
        prop_assert!(hop_sum <= report.messages_delivered as f64);
        // And the total message count cannot be less than 4x completed
        // misses (per-request round trips) or 2x hits.
        prop_assert!(report.messages_delivered as f64 >= 2.0 * report.completed as f64);
    }
}
