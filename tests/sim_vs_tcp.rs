//! Cross-runtime validation: the same ADC agents driven by the
//! deterministic simulator and by the real TCP runtime must produce
//! equivalent caching behaviour on the same workload.
//!
//! This is the reproduction of the paper's own sanity check: "a
//! simulation running on a powerful one Gigabyte memory machine returns
//! the same results as a run spread over a distributed set of machines".
//! Exact equality is not expected (the two runtimes draw different
//! random peers), but hit rates must agree closely.

use adc::net::drive_workload;
use adc::prelude::*;
use adc::sim::Simulation;
use adc::workload::RequestRecord;
use std::time::Duration;

fn config() -> AdcConfig {
    AdcConfig::builder()
        .single_capacity(256)
        .multiple_capacity(256)
        .cache_capacity(128)
        .max_hops(8)
        .build()
}

fn workload() -> Vec<RequestRecord> {
    StationaryZipf::new(80, 0.9, 6, 42).take(1_200).collect()
}

#[tokio::test(flavor = "multi_thread")]
async fn simulator_and_tcp_runtime_agree_on_hit_rates() {
    // Simulator run.
    let agents = adc::adc_cluster(3, config());
    let sim_report = Simulation::new(agents, SimConfig::fast()).run(workload());
    let sim_hit = sim_report.hit_rate();

    // Real TCP run over localhost with the same agent code.
    let cluster = Cluster::spawn_adc(3, config())
        .await
        .expect("spawn cluster");
    let tcp_report = drive_workload(&cluster, workload(), Duration::from_secs(10))
        .await
        .expect("drive workload");
    assert_eq!(tcp_report.completed, 1_200);
    assert_eq!(tcp_report.timeouts, 0);
    let tcp_hit = tcp_report.hit_rate();

    assert!(
        (sim_hit - tcp_hit).abs() < 0.08,
        "runtimes disagree: sim {sim_hit:.4} vs tcp {tcp_hit:.4}"
    );
    // Both runtimes learn: a Zipf(0.9) stream over 80 objects with 384
    // aggregate cache slots must hit a lot.
    assert!(sim_hit > 0.5, "sim hit rate {sim_hit:.4}");
    assert!(tcp_hit > 0.5, "tcp hit rate {tcp_hit:.4}");

    // The cluster's internal counters line up with the driver's view.
    let stats = cluster.cluster_stats();
    assert!(stats.requests_received >= 1_200);
    assert!(stats.local_hits as f64 >= tcp_report.hits as f64 * 0.9);
}
