//! Integration tests of ADC's self-organization claims: proxies converge
//! on agreed object locations without a coordinator or broadcasts.

use adc::prelude::*;
use adc::sim::Simulation;

fn small_config() -> AdcConfig {
    AdcConfig::builder()
        .single_capacity(512)
        .multiple_capacity(512)
        .cache_capacity(256)
        .max_hops(16)
        .build()
}

/// Runs a stationary Zipf workload and returns report + agents.
fn run_zipf(proxies: u32, universe: usize, requests: usize) -> (SimReport, Vec<AdcProxy>) {
    let agents = adc::adc_cluster(proxies, small_config());
    let sim = Simulation::new(agents, SimConfig::fast());
    sim.run_with_agents(StationaryZipf::new(universe, 0.9, 16, 7).take(requests))
}

#[test]
fn hot_objects_get_agreed_locations() {
    let (_, agents) = run_zipf(5, 500, 30_000);
    // For each of the hottest objects, every proxy that has a mapping
    // must point at a proxy that actually caches the object.
    let mut dangling = 0;
    let mut checked = 0;
    for hot_rank in 0..20u64 {
        let object = ObjectId::new(hot_rank);
        for agent in &agents {
            if let Some(entry) = agent.tables().lookup(object) {
                checked += 1;
                let target = entry.location.resolve(agent.proxy_id());
                if !agents[target.raw() as usize].is_cached(object) {
                    dangling += 1;
                }
            }
        }
    }
    assert!(checked >= 50, "hot objects should be widely mapped");
    // A small transient fraction of stale pointers is expected (entries
    // updated before the latest displacement), but agreement must
    // dominate.
    assert!(
        (dangling as f64) < 0.1 * checked as f64,
        "{dangling}/{checked} mappings dangle"
    );
}

#[test]
fn hottest_objects_replicate_to_many_proxies() {
    let (_, agents) = run_zipf(5, 500, 30_000);
    // "our proxy objects maintain multiple copies of the frequently
    // requested documents" — the top objects should be cached at more
    // than one proxy.
    let copies: Vec<usize> = (0..5u64)
        .map(|rank| {
            agents
                .iter()
                .filter(|a| a.is_cached(ObjectId::new(rank)))
                .count()
        })
        .collect();
    assert!(
        copies.iter().any(|&c| c >= 2),
        "hottest objects should be replicated: {copies:?}"
    );
}

#[test]
fn tail_objects_keep_few_copies() {
    let (_, agents) = run_zipf(5, 500, 30_000);
    // "...and reduce the number of copies in situations where only few
    // requests for a particular object are experienced."
    let tail_copies: usize = (400..500u64)
        .map(|rank| {
            agents
                .iter()
                .filter(|a| a.is_cached(ObjectId::new(rank)))
                .count()
        })
        .sum();
    let head_copies: usize = (0..100u64)
        .map(|rank| {
            agents
                .iter()
                .filter(|a| a.is_cached(ObjectId::new(rank)))
                .count()
        })
        .sum();
    assert!(
        head_copies > 2 * tail_copies,
        "head {head_copies} vs tail {tail_copies}"
    );
}

#[test]
fn mapping_table_invariants_hold_after_long_runs() {
    let (_, agents) = run_zipf(4, 1_000, 20_000);
    for agent in &agents {
        agent.tables().assert_invariants();
        // The cached table and the agent's notion of cached agree.
        for entry in agent.tables().cached().iter() {
            assert!(agent.is_cached(entry.object));
        }
        assert_eq!(agent.cached_objects(), agent.tables().cached().len());
        // No pending requests leak in a completed sequential run.
        assert_eq!(agent.pending_requests(), 0);
    }
}

#[test]
fn learning_reduces_random_search_over_time() {
    let agents = adc::adc_cluster(5, small_config());
    let sim = Simulation::new(agents, SimConfig::fast());
    let (_, agents) = sim.run_with_agents(StationaryZipf::new(300, 0.9, 16, 3).take(20_000));
    let stats: ProxyStats = agents.iter().fold(ProxyStats::default(), |mut acc, a| {
        acc.merge(a.stats());
        acc
    });
    // After warm-up the dominant mode must be either a local hit or a
    // learned forward, not random search.
    let informed = stats.local_hits + stats.forwards_learned + stats.origin_this_miss;
    assert!(
        informed > stats.forwards_random,
        "system failed to learn: informed={informed} random={}",
        stats.forwards_random
    );
}

#[test]
fn single_proxy_behaves_like_a_plain_selective_cache() {
    let agents = adc::adc_cluster(1, small_config());
    let sim = Simulation::new(agents, SimConfig::fast());
    let report = sim.run(StationaryZipf::new(100, 1.0, 4, 9).take(5_000));
    // Universe 100 fits in the 256-slot cache: near-perfect hits after
    // warm-up.
    assert!(
        report.hit_rate() > 0.9,
        "single proxy hit rate {:.3}",
        report.hit_rate()
    );
}
