//! Cross-scheme integration tests: every caching design in the
//! repository must satisfy the same conservation laws under the same
//! simulator, and their qualitative ordering must be stable.

use adc::prelude::*;
use adc::sim::Simulation;
use adc::workload::RequestRecord;

fn workload(n: usize) -> Vec<RequestRecord> {
    StationaryZipf::new(120, 0.9, 8, 17).take(n).collect()
}

fn polygraph() -> PolygraphConfig {
    PolygraphConfig::scaled(0.005)
}

#[test]
fn hierarchy_conserves_requests_and_hits() {
    let tree = HierarchyProxy::binary_tree(7, 64);
    let report = Simulation::new(tree, SimConfig::fast()).run(workload(4_000));
    assert_eq!(report.completed, 4_000);
    assert!(report.hits > 0);
    // Hierarchy hop bound: up the tree (≤ depth), origin, and back.
    // Depth of 7-node binary tree = 3 levels → max 2*(3+1) = 8.
    assert!(report.hops.max().unwrap() <= 8.0);
    // No pending leaks.
    for p in &report.per_proxy {
        assert_eq!(p.replies_orphaned, 0);
    }
}

#[test]
fn soap_conserves_requests() {
    let agents: Vec<SoapProxy> = (0..4)
        .map(|i| SoapProxy::new(ProxyId::new(i), 4, 64, 64, 8))
        .collect();
    let report = Simulation::new(agents, SimConfig::fast()).run(workload(4_000));
    assert_eq!(report.completed, 4_000);
    assert!(report.hits > 0);
}

#[test]
fn unlimited_adc_conserves_requests() {
    let agents: Vec<UnlimitedAdcProxy> = (0..4)
        .map(|i| UnlimitedAdcProxy::new(ProxyId::new(i), 4, 64, 8))
        .collect();
    let (report, agents) =
        Simulation::new(agents, SimConfig::fast()).run_with_agents(workload(4_000));
    assert_eq!(report.completed, 4_000);
    // The unbounded map remembers every distinct object.
    for a in &agents {
        assert!(a.mapping_entries() >= 64);
        assert_eq!(a.pending_requests(), 0);
    }
}

#[test]
fn consistent_hashing_behaves_like_carp() {
    let run = |use_ring: bool| {
        let sim_config = SimConfig::fast();
        if use_ring {
            let agents: Vec<HashingProxy<ConsistentRing>> = (0..5)
                .map(|i| {
                    HashingProxy::with_owner_map(
                        ProxyId::new(i),
                        ConsistentRing::new((0..5).map(ProxyId::new), 512),
                        64,
                    )
                })
                .collect();
            Simulation::new(agents, sim_config).run(workload(6_000))
        } else {
            Simulation::new(adc::carp_cluster(5, 64), sim_config).run(workload(6_000))
        }
    };
    let ring = run(true);
    let carp = run(false);
    assert_eq!(ring.completed, carp.completed);
    // Same family of algorithms; the ring's residual vnode imbalance can
    // concentrate more objects than one cache holds, so allow a modest
    // gap.
    assert!(
        (ring.hit_rate() - carp.hit_rate()).abs() < 0.15,
        "ring {:.4} vs carp {:.4}",
        ring.hit_rate(),
        carp.hit_rate()
    );
    assert!(ring.hit_rate() > 0.5);
}

#[test]
fn selective_adc_beats_the_predecessors_on_polygraph() {
    // The lineage claim across the authors' own designs: the final
    // bounded selective ADC should at least match SOAP (category-level
    // mapping, LRU caching) on the paper's workload shape.
    let workload = polygraph();
    let adc_config = AdcConfig::builder()
        .single_capacity(400)
        .multiple_capacity(400)
        .cache_capacity(200)
        .max_hops(16)
        .build();
    let adc =
        Simulation::new(adc::adc_cluster(5, adc_config), SimConfig::fast()).run(workload.build());
    let soap_agents: Vec<SoapProxy> = (0..5)
        .map(|i| SoapProxy::new(ProxyId::new(i), 5, 512, 200, 16))
        .collect();
    let soap = Simulation::new(soap_agents, SimConfig::fast()).run(workload.build());
    assert!(
        adc.phase(Phase::RequestII).hit_rate() >= soap.phase(Phase::RequestII).hit_rate(),
        "adc {:.4} should not trail soap {:.4}",
        adc.phase(Phase::RequestII).hit_rate(),
        soap.phase(Phase::RequestII).hit_rate()
    );
}

#[test]
fn every_scheme_is_deterministic() {
    let once = |seed: u64| {
        let mut cfg = SimConfig::fast();
        cfg.seed = seed;
        let tree = HierarchyProxy::binary_tree(3, 32);
        Simulation::new(tree, cfg).run(workload(1_000))
    };
    let a = once(1);
    let b = once(1);
    assert_eq!(a.hits, b.hits);
    assert_eq!(a.messages_delivered, b.messages_delivered);
}
