//! A real ADC deployment: five proxies, an origin server and a client
//! talking over TCP on localhost — the paper's future-work item of "the
//! creation of a real proxy system", using the very same agent code the
//! simulator runs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tcp_cluster
//! ```

use adc::prelude::*;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let config = AdcConfig::builder()
        .single_capacity(1_000)
        .multiple_capacity(1_000)
        .cache_capacity(500)
        .max_hops(16)
        .build();
    let cluster = Cluster::spawn_adc(5, config).await?;
    println!("spawned 5 ADC proxies + origin on localhost");
    println!("origin at {}", cluster.book.origin_addr());

    let client = cluster.client(ClientId::new(0)).await?;
    let urls = [
        "http://news.example.com/front-page",
        "http://img.example.com/logo.png",
        "http://api.example.com/v1/weather",
    ];

    // Round 1: cold caches — everything comes from the origin.
    println!("\nround 1 (cold):");
    for url in &urls {
        let object = ObjectId::from_url(url);
        let (reply, body) = client.request(object, ProxyId::new(0)).await?;
        println!(
            "  {url}: {} bytes, served by {}",
            body.len(),
            match reply.served_from {
                ServedFrom::Origin => "origin".to_string(),
                ServedFrom::Cache(p) => format!("{p} cache"),
            }
        );
    }

    // Rounds 2-6: the system learns locations and starts caching; later
    // rounds are served by proxy caches.
    for round in 2..=6 {
        println!("\nround {round}:");
        for url in &urls {
            let object = ObjectId::from_url(url);
            // Enter through a different proxy each round: agreement means
            // any entry point finds the cached copy.
            let via = ProxyId::new((round as u32) % 5);
            let (reply, body) = client.request(object, via).await?;
            println!(
                "  {url} via {via}: {} bytes, served by {}",
                body.len(),
                match reply.served_from {
                    ServedFrom::Origin => "origin".to_string(),
                    ServedFrom::Cache(p) => format!("{p} cache"),
                }
            );
        }
    }

    let stats = cluster.cluster_stats();
    println!("\ncluster totals:");
    println!("  requests received : {}", stats.requests_received);
    println!("  local cache hits  : {}", stats.local_hits);
    println!("  origin fetches    : {}", stats.origin_forwards());
    println!(
        "  objects stored    : {:?}",
        cluster
            .proxies
            .iter()
            .map(|p| p.stored_objects())
            .collect::<Vec<_>>()
    );
    Ok(())
}
