//! Flash crowd: a suddenly popular object (breaking news) hits the proxy
//! farm. This is exactly the bottleneck scenario that motivated ADC's
//! selective caching (§II.2 of the paper: the earlier SOAP design "was
//! not able to deal ideally with bottleneck situations").
//!
//! ADC replicates the hot object at *every* proxy — each proxy's own
//! measurements admit it to the local cache — while hash routing pins it
//! to a single owner that becomes the bottleneck.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use adc::prelude::*;

fn flash_workload() -> FlashCrowd {
    // 60k background Zipf requests over 5k objects; between request 20k
    // and 40k, 70% of traffic piles onto one object.
    FlashCrowd::new(5_000, 0.8, 50, 42, 20_000, 40_000, 0.7)
}

fn main() {
    let proxies = 5;
    let total = 60_000usize;

    // --- ADC ---
    let config = AdcConfig::builder()
        .single_capacity(2_000)
        .multiple_capacity(2_000)
        .cache_capacity(1_000)
        .max_hops(16)
        .build();
    let workload = flash_workload();
    let hot = workload.hot_object;
    let agents = adc::adc_cluster(proxies, config);
    let sim = Simulation::new(agents, SimConfig::fast());
    let (adc_report, adc_agents) = sim.run_with_agents(workload.take(total));

    // --- CARP ---
    let workload = flash_workload();
    let carp_agents = adc::carp_cluster(proxies, 1_000);
    let sim = Simulation::new(carp_agents, SimConfig::fast());
    let (carp_report, carp_agents) = sim.run_with_agents(workload.take(total));

    println!("flash crowd: one object takes 70% of traffic for 20k requests\n");

    let adc_copies = adc_agents.iter().filter(|a| a.is_cached(hot)).count();
    let carp_copies = carp_agents.iter().filter(|a| a.is_cached(hot)).count();
    println!("copies of the hot object after the run:");
    println!("  ADC  : {adc_copies} of {proxies} proxies hold it");
    println!("  CARP : {carp_copies} of {proxies} proxies hold it (the hash owner)");

    // Load concentration: how unevenly were requests spread during the
    // run? (CARP funnels every hot request to one owner.)
    let spread = |per_proxy: &[ProxyStats]| {
        let max = per_proxy
            .iter()
            .map(|p| p.requests_received)
            .max()
            .unwrap_or(0);
        let min = per_proxy
            .iter()
            .map(|p| p.requests_received)
            .min()
            .unwrap_or(0);
        (max, min)
    };
    let (adc_max, adc_min) = spread(&adc_report.per_proxy);
    let (carp_max, carp_min) = spread(&carp_report.per_proxy);
    println!("\nper-proxy request load (max / min):");
    println!(
        "  ADC  : {adc_max} / {adc_min} (imbalance {:.2}x)",
        adc_max as f64 / adc_min.max(1) as f64
    );
    println!(
        "  CARP : {carp_max} / {carp_min} (imbalance {:.2}x)",
        carp_max as f64 / carp_min.max(1) as f64
    );

    println!("\nhit rates over the whole run:");
    println!("  ADC  : {:.4}", adc_report.hit_rate());
    println!("  CARP : {:.4}", carp_report.hit_rate());
    println!("\nmean hops (ADC replicas answer at the first proxy, 2 hops):");
    println!("  ADC  : {:.2}", adc_report.mean_hops());
    println!("  CARP : {:.2}", carp_report.mean_hops());
}
