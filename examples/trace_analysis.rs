//! Workload tooling: generate a Polygraph-like trace, write it to disk,
//! read it back, and characterize it with the analysis module — the
//! checks you would run before trusting a request stream for a caching
//! experiment.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use adc::prelude::*;
use adc::workload::analysis::{popularity_histogram, trace_stats};
use adc::workload::trace::{read_trace, write_trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PolygraphConfig::scaled(0.005); // ~20k requests
    let path = std::env::temp_dir().join("adc_polygraph_trace.csv");

    println!(
        "generating {} requests and writing {}...",
        config.total_requests(),
        path.display()
    );
    let file = std::fs::File::create(&path)?;
    write_trace(file, config.build())?;

    println!("reading the trace back...");
    let records = read_trace(std::fs::File::open(&path)?)?;
    assert_eq!(records.len() as u64, config.total_requests());

    let stats = trace_stats(records.iter().copied());
    println!("\n=== whole trace ===");
    println!("requests            : {}", stats.requests);
    println!("distinct objects    : {}", stats.distinct_objects);
    println!(
        "recurrence ratio    : {:.4} (upper bound on any hit rate)",
        stats.recurrence_ratio
    );
    println!("hottest object count: {}", stats.top_object_requests);
    println!(
        "estimated Zipf alpha: {} (generator used {})",
        stats
            .zipf_alpha
            .map(|a| format!("{a:.3}"))
            .unwrap_or_else(|| "n/a".into()),
        config.zipf_alpha
    );
    println!(
        "total volume        : {:.1} MiB",
        stats.total_bytes as f64 / (1024.0 * 1024.0)
    );

    // Per-phase character: the fill phase must be nearly recurrence-free,
    // the request phases must not be.
    for phase in [Phase::Fill, Phase::RequestI, Phase::RequestII] {
        let phase_stats = trace_stats(records.iter().copied().filter(|r| r.phase == phase));
        println!("\n=== {phase:?}: {} requests ===", phase_stats.requests);
        println!("  distinct objects : {}", phase_stats.distinct_objects);
        println!("  recurrence ratio : {:.4}", phase_stats.recurrence_ratio);
    }

    let hist = popularity_histogram(records.iter().copied());
    let one_timers = hist
        .first()
        .filter(|(k, _)| *k == 1)
        .map(|&(_, n)| n)
        .unwrap_or(0);
    println!("\npopularity histogram (how many objects were requested k times):");
    for &(k, n) in hist.iter().take(8) {
        println!("  k={k:<4} objects={n}");
    }
    if hist.len() > 8 {
        let max = hist.last().unwrap();
        println!("  ...    up to k={} ({} object[s])", max.0, max.1);
    }
    println!(
        "\n{one_timers} one-timer objects — the cache pollution selective caching filters out."
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
