//! Quickstart: simulate 5 cooperating ADC proxies against a scaled-down
//! version of the paper's three-phase workload and print what happened.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adc::prelude::*;

fn main() {
    // 1/100 of the paper's experiment: ~40k requests, tables 200/200/100.
    let scale = 0.01;
    let workload = PolygraphConfig::scaled(scale);
    let config = AdcConfig::builder()
        .single_capacity(200)
        .multiple_capacity(200)
        .cache_capacity(100)
        .max_hops(16)
        .build();

    println!(
        "simulating {} requests over 5 ADC proxies (tables {}/{}/{})...",
        workload.total_requests(),
        config.single_capacity,
        config.multiple_capacity,
        config.cache_capacity
    );

    let agents = adc::adc_cluster(5, config);
    let sim = Simulation::new(agents, SimConfig::default());
    let report = sim.run(workload.build());

    println!("\n=== results ===");
    println!("completed requests : {}", report.completed);
    println!("overall hit rate   : {:.4}", report.hit_rate());
    println!(
        "fill phase         : {:.4} (cold caches, compulsory misses)",
        report.phase(Phase::Fill).hit_rate()
    );
    println!(
        "request phase I    : {:.4} (the system is learning)",
        report.phase(Phase::RequestI).hit_rate()
    );
    println!(
        "request phase II   : {:.4} (locations agreed, caches warm)",
        report.phase(Phase::RequestII).hit_rate()
    );
    println!("mean hops          : {:.2}", report.mean_hops());
    println!(
        "mean latency       : {:.1} ms",
        report.latency_us.mean().unwrap_or(0.0) / 1000.0
    );

    let stats = report.cluster_stats();
    println!("\n=== self-organization at work ===");
    println!(
        "requests forwarded via learned locations : {}",
        stats.forwards_learned
    );
    println!(
        "requests forwarded via random search     : {}",
        stats.forwards_random
    );
    println!(
        "searches ended by loop detection         : {}",
        stats.origin_loops
    );
    println!(
        "cache insertions / evictions             : {} / {}",
        stats.cache_insertions, stats.cache_evictions
    );
    println!(
        "final cache occupancy per proxy          : {:?}",
        report.final_cache_sizes
    );
}
