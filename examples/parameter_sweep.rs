//! A miniature version of the paper's parameter study (Figures 13–15):
//! sweep each table size, print hit rate, hops and wall time.
//!
//! The full reproduction lives in `adc-bench` (`fig13_hits_by_size` and
//! friends); this example shows how to run such a sweep against the
//! public API directly.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use adc::prelude::*;
use std::time::Instant;

fn run(
    single: usize,
    multiple: usize,
    cache: usize,
    workload: &PolygraphConfig,
) -> (f64, f64, f64) {
    let config = AdcConfig::builder()
        .single_capacity(single)
        .multiple_capacity(multiple)
        .cache_capacity(cache)
        .max_hops(16)
        .build();
    let agents = adc::adc_cluster(5, config);
    let sim = Simulation::new(agents, SimConfig::fast());
    let start = Instant::now();
    let report = sim.run(workload.build());
    let wall = start.elapsed().as_secs_f64();
    (report.hit_rate(), report.mean_hops(), wall)
}

fn main() {
    // 1/100 scale: defaults are 200/200/100, sweep axis 50..300.
    let workload = PolygraphConfig::scaled(0.01);
    let sizes = [50usize, 100, 150, 200, 250, 300];
    let (def_single, def_multiple, def_cache) = (200, 200, 100);

    println!(
        "mini parameter sweep: {} requests, 5 proxies, defaults {}/{}/{}\n",
        workload.total_requests(),
        def_single,
        def_multiple,
        def_cache
    );
    println!(
        "{:>8} | {:>8} {:>6} {:>7} | {:>8} {:>6} {:>7} | {:>8} {:>6} {:>7}",
        "size", "cach.hit", "hops", "secs", "mult.hit", "hops", "secs", "sing.hit", "hops", "secs"
    );
    for &size in &sizes {
        let (ch, chop, ct) = run(def_single, def_multiple, size, &workload);
        let (mh, mhop, mt) = run(def_single, size, def_cache, &workload);
        let (sh, shop, st) = run(size, def_multiple, def_cache, &workload);
        println!(
            "{size:>8} | {ch:>8.4} {chop:>6.2} {ct:>7.3} | {mh:>8.4} {mhop:>6.2} {mt:>7.3} | {sh:>8.4} {shop:>6.2} {st:>7.3}"
        );
    }
    println!("\nreading the paper's claims off the table:");
    println!(" * caching column: hit rate climbs with cache size, then plateaus (Fig. 13)");
    println!(" * multiple/single columns: little effect on hits, mild effect on hops (Fig. 14)");
    println!(" * bigger single/multiple tables cost wall time; cache size does not (Fig. 15)");
}
