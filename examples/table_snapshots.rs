//! Reproduces the illustrative table snapshots of the paper's Figures
//! 1–3: feed one proxy a small scripted request mix, then print its
//! single-, multiple- and caching tables.
//!
//! Run with:
//!
//! ```text
//! cargo run --example table_snapshots
//! ```

use adc::prelude::*;
use adc::TableEntry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Resolves one request through a single-proxy system, acting as a tiny
/// message bus: self-forwards are re-delivered, origin-bound requests are
/// answered, and the reply unwinds the backwarding path until it reaches
/// the client.
fn resolve(proxy: &mut AdcProxy, rng: &mut StdRng, seq: u64, url: &str) {
    let client = ClientId::new(0);
    let request = Request::new(RequestId::new(client, seq), ObjectId::from_url(url), client);
    let mut inbox = vec![Message::Request(request)];
    while let Some(message) = inbox.pop() {
        let action = match message {
            Message::Request(req) => Some(proxy.request_action(req, rng)),
            Message::Reply(rep) => proxy.reply_action(rep),
        };
        if let Some(Action::Send { to, message }) = action {
            match to {
                NodeId::Proxy(_) => inbox.push(message),
                NodeId::Origin => {
                    if let Message::Request(forwarded) = message {
                        inbox.push(Message::Reply(Reply::from_origin(&forwarded, 1024)));
                    }
                }
                NodeId::Client(_) => {} // resolved; done
            }
        }
    }
}

fn print_table<'a>(title: &str, rows: impl Iterator<Item = &'a TableEntry>) {
    println!("\n{title}");
    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>5}",
        "OBJ-ID", "PROXY", "LAST", "AVG", "HITS"
    );
    for e in rows {
        println!(
            "{:<14} {:>9} {:>6} {:>6} {:>5}",
            format!("obj:{:x}", e.object.raw() & 0xffff_ffff),
            e.location.to_string(),
            e.last,
            e.average,
            e.hits
        );
    }
}

fn main() {
    let config = AdcConfig::builder()
        .single_capacity(10)
        .multiple_capacity(10)
        .cache_capacity(5)
        .max_hops(4)
        .build();
    let mut proxy = AdcProxy::new(ProxyId::new(0), 1, config);
    let mut rng = StdRng::seed_from_u64(7);

    // A scripted mix: a few very hot pages, some warm ones, a stream of
    // one-timers — the mix that produces the paper's three table shapes.
    let hot = ["www.xy6", "www.xy5", "www.xy44"];
    let warm = ["www.xy64", "www.xy55", "www.xy13", "www.xy52"];
    let mut seq = 0;
    for round in 0..40 {
        for url in hot {
            resolve(&mut proxy, &mut rng, seq, url);
            seq += 1;
        }
        if round % 3 == 0 {
            for url in warm {
                resolve(&mut proxy, &mut rng, seq, url);
                seq += 1;
            }
        }
        // One-timers flow through the single-table.
        resolve(&mut proxy, &mut rng, seq, &format!("www.once{round}"));
        seq += 1;
    }

    println!("after {seq} requests, proxy 0's mapping tables look like the");
    println!("paper's Figures 1-3 (local time = {}):", proxy.local_time());
    print_table(
        "Figure 1 style — single-table (LRU of first sightings, newest first)",
        proxy.tables().single().iter(),
    );
    print_table(
        "Figure 2 style — multiple-table (ordered by average request time)",
        proxy.tables().multiple().iter(),
    );
    print_table(
        "Figure 3 style — caching table (actually stored objects)",
        proxy.tables().cached().iter(),
    );
}
