//! Proxy churn: restart proxies mid-run and watch the self-organizing
//! system relearn its object locations — the paper's unexplored
//! "changes of the infrastructure" parameter.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use adc::prelude::*;

fn main() {
    let config = AdcConfig::builder()
        .single_capacity(1_000)
        .multiple_capacity(1_000)
        .cache_capacity(500)
        .max_hops(16)
        .build();

    // 60k Zipf requests over 2k objects; proxies 0 and 1 restart at 25k
    // and 30k completed requests.
    let mut sim_config = SimConfig::fast();
    sim_config.hit_window = 2_000;
    sim_config.sample_every = 2_000;
    sim_config.churn = vec![
        ChurnEvent {
            after_completed: 25_000,
            proxy: ProxyId::new(0),
        },
        ChurnEvent {
            after_completed: 30_000,
            proxy: ProxyId::new(1),
        },
    ];

    let agents = adc::adc_cluster(5, config);
    let sim = Simulation::new(agents, sim_config);
    let report = sim.run(StationaryZipf::new(2_000, 0.9, 50, 11).take(60_000));

    println!("hit-rate timeline (restarts of proxy 0 at 25k, proxy 1 at 30k):\n");
    println!("{:>10} {:>10}", "requests", "hit rate");
    for &(x, y) in &report.hit_series.points {
        let marker = if (24_000.0..=26_000.0).contains(&x) || (29_000.0..=31_000.0).contains(&x) {
            "  <- restart window"
        } else {
            ""
        };
        println!("{x:>10.0} {y:>10.4}{marker}");
    }
    println!("\nproxies reset        : {}", report.proxies_reset);
    println!("overall hit rate     : {:.4}", report.hit_rate());
    println!(
        "late steady state    : {:.4} (mean of last 20% of samples)",
        report.hit_series.tail_mean_y(0.2).unwrap_or(0.0)
    );
    println!(
        "bytes saved by caches: {:.1}% of served volume",
        report.byte_hit_rate() * 100.0
    );
    println!("\nthe dips around each restart recover without any coordination —");
    println!("the restarted proxy relearns locations from replies passing through it.");
}
