//! Offline vendored stand-in for the subset of `parking_lot` this workspace
//! uses: `Mutex` and `RwLock` with panic-free, non-poisoning guard accessors.
//! Backed by the std primitives; a poisoned lock is recovered transparently,
//! matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
