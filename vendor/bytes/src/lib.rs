//! Offline vendored stand-in for the subset of the `bytes` 1.x API this
//! workspace uses: cheaply cloneable immutable [`Bytes`], a growable
//! [`BytesMut`] builder, and the big-endian cursor traits [`Buf`]/[`BufMut`].
//!
//! `Bytes` shares one allocation across clones and sub-slices via `Arc`,
//! preserving the upstream cost model (`clone`/`slice`/`split_to` are O(1)).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer used to build frames before freezing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte buffer; integers are read big-endian,
/// matching upstream `bytes`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; integers are written big-endian, matching upstream `bytes`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_slice(b"hi");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64(), 42);
        assert_eq!(&frozen[..], b"hi");
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }
}
