//! Offline vendored stand-in for the subset of `serde` this workspace uses:
//! the `Serialize`/`Deserialize` derive macros (re-exported no-ops) and the
//! marker traits of the same names. No code in the workspace takes a
//! `T: Serialize` bound or drives a serializer, so marker traits suffice.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de> {}
