//! TCP types backed by blocking std sockets. Safe under the vendored
//! thread-per-task runtime: a blocked `accept`/`read` only parks its own
//! task thread.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};

use crate::io::{AsyncRead, AsyncWrite};

pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        Ok(TcpListener {
            inner: std::net::TcpListener::bind(addr)?,
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, addr) = self.inner.accept()?;
        stream.set_nodelay(true).ok();
        Ok((TcpStream { inner: stream }, addr))
    }
}

pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(TcpStream { inner: stream })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }
}

impl AsyncRead for TcpStream {
    fn blocking_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.inner, buf)
    }
}

impl AsyncWrite for TcpStream {
    fn blocking_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.inner, buf)
    }

    fn blocking_flush(&mut self) -> io::Result<()> {
        io::Write::flush(&mut self.inner)
    }
}
