//! Synchronization primitives: an async `Mutex` whose guard is `Send`
//! (so it can be held across `.await`), bounded `mpsc`, and `oneshot`.
//!
//! Waiting is implemented with condvars — correct under the thread-per-task
//! runtime, where every waiter owns its thread — while `oneshot::Receiver`
//! is a real waker-registering future so it also composes with
//! `time::timeout`.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::task::{Context, Poll, Waker};

/// Async mutex. Unlike `std::sync::MutexGuard`, the guard is `Send`, so it
/// may be held across await points inside spawned tasks.
pub struct Mutex<T: ?Sized> {
    locked: StdMutex<bool>,
    cv: Condvar,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send + ?Sized> Send for Mutex<T> {}
unsafe impl<T: Send + ?Sized> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            locked: StdMutex::new(false),
            cv: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub async fn lock(&self) -> MutexGuard<'_, T> {
        let mut locked = self.locked.lock().unwrap();
        while *locked {
            locked = self.cv.wait(locked).unwrap();
        }
        *locked = true;
        MutexGuard { mutex: self }
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mutex {{ .. }}")
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

unsafe impl<T: Send + ?Sized> Send for MutexGuard<'_, T> {}
unsafe impl<T: Send + Sync + ?Sized> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let mut locked = self.mutex.locked.lock().unwrap();
        *locked = false;
        self.mutex.cv.notify_one();
    }
}

pub mod mpsc {
    use super::*;

    struct Chan<T> {
        state: StdMutex<ChanState<T>>,
        recv_cv: Condvar,
        send_cv: Condvar,
        capacity: usize,
    }

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Creates a bounded channel.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc capacity must be positive");
        let chan = Arc::new(Chan {
            state: StdMutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            capacity,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "channel closed")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if !state.receiver_alive {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.chan.capacity {
                    state.queue.push_back(value);
                    self.chan.recv_cv.notify_one();
                    return Ok(());
                }
                state = self.chan.send_cv.wait(state).unwrap();
            }
        }

        pub fn is_closed(&self) -> bool {
            !self.chan.state.lock().unwrap().receiver_alive
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.chan.recv_cv.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        pub async fn recv(&mut self) -> Option<T> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.chan.send_cv.notify_one();
                    return Some(v);
                }
                if state.senders == 0 {
                    return None;
                }
                state = self.chan.recv_cv.wait(state).unwrap();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.receiver_alive = false;
            self.chan.send_cv.notify_all();
        }
    }
}

pub mod oneshot {
    use super::*;

    struct One<T> {
        state: StdMutex<OneState<T>>,
    }

    struct OneState<T> {
        value: Option<T>,
        sender_alive: bool,
        receiver_alive: bool,
        waker: Option<Waker>,
    }

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let one = Arc::new(One {
            state: StdMutex::new(OneState {
                value: None,
                sender_alive: true,
                receiver_alive: true,
                waker: None,
            }),
        });
        (
            Sender {
                one: Arc::clone(&one),
            },
            Receiver { one },
        )
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError(pub(super) ());

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "oneshot sender dropped without sending")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        one: Arc<One<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails with the value back if the receiver is gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut state = self.one.state.lock().unwrap();
            if !state.receiver_alive {
                return Err(value);
            }
            state.value = Some(value);
            if let Some(w) = state.waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.one.state.lock().unwrap();
            state.sender_alive = false;
            if let Some(w) = state.waker.take() {
                w.wake();
            }
        }
    }

    pub struct Receiver<T> {
        one: Arc<One<T>>,
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.one.state.lock().unwrap();
            if let Some(v) = state.value.take() {
                return Poll::Ready(Ok(v));
            }
            if !state.sender_alive {
                return Poll::Ready(Err(RecvError(())));
            }
            state.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.one.state.lock().unwrap().receiver_alive = false;
        }
    }
}
