//! Offline vendored stand-in for the subset of `tokio` this workspace uses.
//!
//! The build container cannot fetch crates, so this crate provides a minimal
//! thread-per-task async runtime with the same public surface the workspace
//! consumes: `spawn`/`JoinHandle`, blocking-backed `net::{TcpListener,
//! TcpStream}`, the `io` read/write extension traits, `sync::{Mutex, mpsc,
//! oneshot}`, `time::{timeout, sleep}`, and the `#[tokio::main]` /
//! `#[tokio::test]` attribute macros.
//!
//! Execution model: every spawned task gets its own OS thread and is driven
//! by a park/unpark `block_on` loop, so blocking std I/O inside `poll` is
//! safe and wakers are thread unparks. `JoinHandle::abort` is a no-op —
//! detached accept-loop threads simply die with the process, which is
//! acceptable for the test binaries and examples this backs.

// The workspace only consumes these traits through its own code, so the
// auto-trait caveat behind this lint does not apply.
#![allow(async_fn_in_trait)]

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
pub use tokio_macros::{main, test};
