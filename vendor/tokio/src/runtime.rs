//! Park/unpark futures executor: one thread drives one future.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::{self, Thread};

struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Returns a waker that unparks the current thread.
pub(crate) fn current_thread_waker() -> Waker {
    Waker::from(Arc::new(ThreadWaker(thread::current())))
}

/// Drives `fut` to completion on the calling thread, parking between polls.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = pin!(fut);
    let waker = current_thread_waker();
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => thread::park(),
        }
    }
}
