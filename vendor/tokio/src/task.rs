//! Thread-per-task spawning with an awaitable, abortable `JoinHandle`.

use std::fmt;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::thread;

/// Error returned when a task panicked (or, upstream, was cancelled).
pub struct JoinError {
    panicked: bool,
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.panicked {
            write!(f, "JoinError::Panic")
        } else {
            write!(f, "JoinError::Cancelled")
        }
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.panicked {
            write!(f, "task panicked")
        } else {
            write!(f, "task was cancelled")
        }
    }
}

impl std::error::Error for JoinError {}

struct Shared<T> {
    state: Mutex<HandleState<T>>,
}

struct HandleState<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

/// Handle to a spawned task. Awaiting it yields the task's output.
///
/// `abort` is a no-op: the vendored runtime cannot kill an OS thread, and
/// every call site in this workspace aborts only detached accept/forward
/// loops on drop, where leaking the thread until process exit is fine.
pub struct JoinHandle<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinHandle {{ .. }}")
    }
}

impl<T> JoinHandle<T> {
    pub fn abort(&self) {}

    pub fn is_finished(&self) -> bool {
        self.shared.state.lock().unwrap().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.state.lock().unwrap();
        match state.result.take() {
            Some(r) => Poll::Ready(r),
            None => {
                state.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Spawns `fut` on a dedicated OS thread and returns a handle to its output.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = Arc::new(Shared {
        state: Mutex::new(HandleState {
            result: None,
            waker: None,
        }),
    });
    let worker_shared = Arc::clone(&shared);
    thread::Builder::new()
        .name("tokio-task".into())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| crate::runtime::block_on(fut)))
                .map_err(|_| JoinError { panicked: true });
            let mut state = worker_shared.state.lock().unwrap();
            state.result = Some(result);
            if let Some(w) = state.waker.take() {
                w.wake();
            }
        })
        .expect("failed to spawn task thread");
    JoinHandle { shared }
}
