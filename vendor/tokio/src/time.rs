//! Time utilities: `timeout` and `sleep`.
//!
//! `Timeout::poll` drives the inner future with the caller's waker and parks
//! the current thread until either the inner future wakes it or the deadline
//! passes. This is sound under the thread-per-task runtime because the waker
//! handed to us *is* this thread's unpark handle, so a wake from another
//! task interrupts `park_timeout` and we re-poll.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::thread;
use std::time::{Duration, Instant};

/// Error returned when a timeout expires before the inner future resolves.
#[derive(Debug, PartialEq, Eq)]
pub struct Elapsed(());

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

pub struct Timeout<F> {
    future: F,
    deadline: Instant,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Structural projection: `future` is never moved out of `this`.
        let this = unsafe { self.get_unchecked_mut() };
        let mut inner = unsafe { Pin::new_unchecked(&mut this.future) };
        loop {
            if let Poll::Ready(v) = inner.as_mut().poll(cx) {
                return Poll::Ready(Ok(v));
            }
            let now = Instant::now();
            if now >= this.deadline {
                return Poll::Ready(Err(Elapsed(())));
            }
            thread::park_timeout(this.deadline - now);
        }
    }
}

/// Awaits `future` for at most `duration`.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        deadline: Instant::now() + duration,
    }
}

/// Suspends the current task for `duration` (blocks its thread).
pub async fn sleep(duration: Duration) {
    thread::sleep(duration);
}
