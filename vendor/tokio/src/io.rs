//! Async read/write traits with big-endian integer helpers.
//!
//! The base traits expose blocking primitives; the `*Ext` traits provide the
//! `async fn` surface (`read_u32`, `read_exact`, `write_all`, ...) the
//! workspace calls. Under the thread-per-task runtime these complete
//! synchronously inside a single poll.

use std::io;

pub trait AsyncRead {
    fn blocking_read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

pub trait AsyncWrite {
    fn blocking_write(&mut self, buf: &[u8]) -> io::Result<usize>;
    fn blocking_flush(&mut self) -> io::Result<()>;
}

impl<T: AsyncRead + ?Sized> AsyncRead for &mut T {
    fn blocking_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (**self).blocking_read(buf)
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWrite for &mut T {
    fn blocking_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (**self).blocking_write(buf)
    }

    fn blocking_flush(&mut self) -> io::Result<()> {
        (**self).blocking_flush()
    }
}

impl AsyncRead for &[u8] {
    fn blocking_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
}

impl AsyncWrite for Vec<u8> {
    fn blocking_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn blocking_flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<T: AsRef<[u8]>> AsyncRead for io::Cursor<T> {
    fn blocking_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
}

pub trait AsyncReadExt: AsyncRead {
    async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.blocking_read(&mut buf[filled..])? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "early eof while filling buffer",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    async fn read_u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b).await?;
        Ok(b[0])
    }

    async fn read_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b).await?;
        Ok(u32::from_be_bytes(b))
    }

    async fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b).await?;
        Ok(u64::from_be_bytes(b))
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

pub trait AsyncWriteExt: AsyncWrite {
    async fn write_all(&mut self, mut buf: &[u8]) -> io::Result<()> {
        while !buf.is_empty() {
            match self.blocking_write(buf)? {
                0 => return Err(io::Error::new(io::ErrorKind::WriteZero, "write zero")),
                n => buf = &buf[n..],
            }
        }
        Ok(())
    }

    async fn write_u8(&mut self, v: u8) -> io::Result<()> {
        self.write_all(&[v]).await
    }

    async fn write_u32(&mut self, v: u32) -> io::Result<()> {
        self.write_all(&v.to_be_bytes()).await
    }

    async fn write_u64(&mut self, v: u64) -> io::Result<()> {
        self.write_all(&v.to_be_bytes()).await
    }

    async fn flush(&mut self) -> io::Result<()> {
        self.blocking_flush()
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}
