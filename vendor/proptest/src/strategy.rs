//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// A recipe for generating values of `Self::Value`.
///
/// `generate` takes the concrete [`TestRng`] (not a generic RNG) so the
/// trait stays object-safe and strategies can be boxed for `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies, as built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.inner().gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.inner().gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty => $draw:ident),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner().$draw() as $t
            }
        }
    )*};
}

arb_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner().next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(-1e9..1e9)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.inner().gen_range(-1e9f32..1e9)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.inner().gen_range(0x20u32..0x7F)).unwrap()
    }
}

/// `any::<T>()` — the canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
    (A, B, C, D, E, F, G, H, I),
    (A, B, C, D, E, F, G, H, I, J),
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.inner().gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of(strategy)` — `None` roughly 1 time in 4.
pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
    OptionStrategy { strategy }
}

pub struct OptionStrategy<S> {
    strategy: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.inner().gen_bool(0.75) {
            Some(self.strategy.generate(rng))
        } else {
            None
        }
    }
}
