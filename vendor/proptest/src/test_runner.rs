//! Deterministic case RNG and the error type threaded out of
//! `prop_assert!`.

use std::fmt;

use rand::{RngCore, SeedableRng, StdRng};

/// RNG handed to strategies. Seeded from the test function's name so each
/// property explores a distinct but fully reproducible stream.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the test name, mixed into a fixed global seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash ^ 0x5EED_1234_ABCD_0000),
        }
    }

    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest)
    }
}

/// A failed property case, carrying the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
