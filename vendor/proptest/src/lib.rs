//! Offline vendored stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, `Strategy` with `prop_map`, `Just`, `any`, integer
//! and float range strategies, tuple strategies, `prop::collection::vec`,
//! and `prop::option::of`.
//!
//! Each generated case is drawn from a deterministic RNG seeded per test
//! function, so failures reproduce across runs. Unlike upstream there is no
//! shrinking: a failing case reports its inputs (via the panic message of
//! `prop_assert!`) without minimization.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod option {
    pub use crate::strategy::of;
}

/// Mirror of upstream's `proptest::prop` facade module.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }

    pub mod option {
        pub use crate::strategy::of;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, of, vec, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::prelude::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
