//! Offline vendored no-op replacements for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types but
//! never invokes a serde serializer (all persistence goes through hand-rolled
//! CSV/trace formats), so empty derive expansions are sufficient to build
//! offline. The `serde` attribute is still accepted for forward
//! compatibility.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
