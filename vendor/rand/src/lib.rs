//! Offline vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build container has no network access and no registry cache, so the
//! real `rand` crate cannot be fetched. This crate re-implements exactly the
//! surface the workspace consumes — `StdRng`, `SeedableRng::seed_from_u64`,
//! `RngCore`, and the `Rng` extension methods `gen_range`/`gen_bool` — with a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! Determinism matters more than matching upstream streams: every golden file
//! and regression test in the workspace is generated against *this* PRNG, so
//! its output must be stable across platforms and releases. Do not change the
//! generator without regenerating the golden files in `crates/adc-bench`.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: the object-safe subset of `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators. Only `from_seed` is required; `seed_from_u64`
/// expands a 64-bit seed with SplitMix64 exactly once per 8 seed bytes.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Extension methods; blanket-implemented so they work on `&mut dyn RngCore`
/// trait objects as well as concrete generators.
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a raw 64-bit draw onto `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * (unit_f64(rng.next_u64()) as f32)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must never start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub use rngs::StdRng;

pub mod prelude {
    pub use super::{rngs::StdRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-40i64..=40);
            assert!((-40..=40).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
