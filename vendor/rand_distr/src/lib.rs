//! Offline vendored stand-in for the subset of `rand_distr` 0.4 this
//! workspace uses: the [`Distribution`] trait and an exact inverse-CDF
//! [`Zipf`] sampler returning 1-based ranks as `f64`, matching the upstream
//! sampling contract (`Zipf::new(n, s)` samples ranks in `1..=n`).

use rand::Rng;

/// Types that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid Zipf parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` was zero.
    NTooSmall,
    /// The exponent was negative or non-finite.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "n must be at least 1"),
            ZipfError::STooSmall => write!(f, "s must be finite and non-negative"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(rank = k) ∝ 1 / k^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative distribution; `cdf[k]` = P(rank <= k + 1). Last entry is 1.
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Result<Zipf, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::STooSmall);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    /// Samples a rank in `1..=n`, returned as `f64` like upstream.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        (idx + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::NTooSmall);
        assert_eq!(Zipf::new(5, -0.5).unwrap_err(), ZipfError::STooSmall);
        assert_eq!(Zipf::new(5, f64::NAN).unwrap_err(), ZipfError::STooSmall);
    }

    #[test]
    fn ranks_in_range_and_monotone() {
        let z = Zipf::new(20, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 20];
        for _ in 0..200_000 {
            let r = z.sample(&mut rng);
            assert!((1.0..=20.0).contains(&r));
            counts[r as usize - 1] += 1;
        }
        // Rank 1 must dominate rank 20 by roughly 20^1.1.
        assert!(counts[0] > counts[19] * 10);
    }
}
