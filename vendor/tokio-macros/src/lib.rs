//! Offline vendored `#[tokio::main]` and `#[tokio::test]` attribute macros.
//!
//! Both rewrite `async fn f() { body }` into `fn f() {
//! ::tokio::runtime::block_on(async move { body }) }`. Attribute arguments
//! such as `flavor = "multi_thread"` are accepted and ignored — the vendored
//! runtime always executes one task per OS thread.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

fn rewrite(item: TokenStream, is_test: bool) -> TokenStream {
    let mut tokens: Vec<TokenTree> = item.into_iter().collect();

    let body = match tokens.pop() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected an async fn with a brace-delimited body, got {other:?}"),
    };

    let mut out = TokenStream::new();
    if is_test {
        out.extend("#[test]".parse::<TokenStream>().unwrap());
    }

    // Copy the signature, dropping the `async` keyword.
    let mut dropped_async = false;
    for t in tokens {
        if !dropped_async {
            if let TokenTree::Ident(ident) = &t {
                if ident.to_string() == "async" {
                    dropped_async = true;
                    continue;
                }
            }
        }
        out.extend(std::iter::once(t));
    }
    assert!(
        dropped_async,
        "#[tokio::main]/#[tokio::test] require an async fn"
    );

    let mut call_args = TokenStream::new();
    call_args.extend("async move".parse::<TokenStream>().unwrap());
    call_args.extend(std::iter::once(TokenTree::Group(body)));

    let mut new_body = "::tokio::runtime::block_on".parse::<TokenStream>().unwrap();
    new_body.extend(std::iter::once(TokenTree::Group(Group::new(
        Delimiter::Parenthesis,
        call_args,
    ))));

    out.extend(std::iter::once(TokenTree::Group(Group::new(
        Delimiter::Brace,
        new_body,
    ))));
    out
}

#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}
