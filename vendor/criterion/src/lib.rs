//! Offline vendored stand-in for the subset of `criterion` this workspace
//! uses. It runs each benchmark for a small, fixed number of timed
//! iterations and prints mean per-iteration time — enough to compare runs by
//! eye and to keep `cargo bench` working offline, without upstream's
//! statistical machinery.
//!
//! The `criterion_main!`-generated `main` only runs when invoked with
//! `--bench` (as `cargo bench` does), so accidentally executing a
//! `harness = false` bench binary in test mode is a fast no-op.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (upstream default is 100;
    /// the vendored harness keeps runs short).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, then `samples` timed iterations.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.total / bencher.iterations as u32;
        println!(
            "bench {id:<48} {mean:>12.2?}/iter ({} iters)",
            bencher.iterations
        );
    } else {
        println!("bench {id:<48} (no iterations)");
    }
}

/// Returns true when the binary was invoked by `cargo bench` (which passes
/// `--bench`); `cargo test` runs of harness=false targets skip the work.
pub fn invoked_as_benchmark() -> bool {
    std::env::args().any(|a| a == "--bench")
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::invoked_as_benchmark() {
                println!("(vendored criterion: pass --bench to run benchmarks)");
                return;
            }
            $($group();)+
        }
    };
}
