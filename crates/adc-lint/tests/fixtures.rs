//! Per-rule fixture tests: every rule has a negative fixture that must
//! trigger it and a positive fixture that must stay clean, plus
//! suppression-handling cases and an end-to-end workspace self-check
//! through the actual binary.

use adc_lint::scan::parse_source;
use adc_lint::{run_files, Report};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parses a fixture as if it lived at `rel` inside crate `krate` and
/// runs the full engine (rules + suppression resolution) over it.
fn lint_fixture(name: &str, krate: &str, rel: &str) -> Report {
    let text = fixture(name);
    run_files(&[parse_source(rel, krate, true, &text)])
}

fn rules_hit(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

/// (rule, negative fixture, positive fixture, crate, rel path). The rel
/// path matters for path-scoped rules (lossy-cast only fires on the
/// simulator hot-path files).
const CASES: &[(&str, &str, &str, &str, &str)] = &[
    (
        "determinism",
        "determinism_bad.rs",
        "determinism_ok.rs",
        "adc-sim",
        "crates/adc-sim/src/fixture.rs",
    ),
    (
        "default-hasher",
        "default_hasher_bad.rs",
        "default_hasher_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    (
        "panic",
        "panic_bad.rs",
        "panic_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    (
        "index-comment",
        "index_comment_bad.rs",
        "index_comment_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    (
        "float-eq",
        "float_eq_bad.rs",
        "float_eq_ok.rs",
        "adc-sim",
        "crates/adc-sim/src/fixture.rs",
    ),
    (
        "lossy-cast",
        "lossy_cast_bad.rs",
        "lossy_cast_ok.rs",
        "adc-sim",
        "crates/adc-sim/src/queue.rs",
    ),
    (
        "obs-coverage",
        "obs_coverage_bad.rs",
        "obs_coverage_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    // The same rule also guards the profiler/span counter surface in
    // adc-sim and adc-obs, with its own fixtures.
    (
        "obs-coverage",
        "obs_coverage_profile_bad.rs",
        "obs_coverage_profile_ok.rs",
        "adc-sim",
        "crates/adc-sim/src/fixture.rs",
    ),
    (
        "api-docs",
        "api_docs_bad.rs",
        "api_docs_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    (
        "shard-safety",
        "shard_safety_bad.rs",
        "shard_safety_ok.rs",
        "adc-sim",
        "crates/adc-sim/src/sharded.rs",
    ),
    (
        "no-println",
        "no_println_bad.rs",
        "no_println_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    (
        "determinism-purity",
        "determinism_purity_bad.rs",
        "determinism_purity_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    (
        "atomic-ordering",
        "atomic_ordering_bad.rs",
        "atomic_ordering_ok.rs",
        "adc-sim",
        "crates/adc-sim/src/pool.rs",
    ),
    (
        "probe-exhaustiveness",
        "probe_exhaustiveness_bad.rs",
        "probe_exhaustiveness_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
    (
        "metric-name-drift",
        "metric_drift_bad.rs",
        "metric_drift_ok.rs",
        "adc-obs",
        "crates/adc-obs/src/fixture.rs",
    ),
    // The same rule also guards the span segment-name vocabulary
    // (`SEG_*` consts), flagging near-miss literals.
    (
        "metric-name-drift",
        "seg_drift_bad.rs",
        "seg_drift_ok.rs",
        "adc-obs",
        "crates/adc-obs/src/fixture.rs",
    ),
    (
        "unused-allow",
        "unused_allow_bad.rs",
        "suppression_ok.rs",
        "adc-core",
        "crates/adc-core/src/fixture.rs",
    ),
];

#[test]
fn every_negative_fixture_triggers_its_rule() {
    for (rule, bad, _, krate, rel) in CASES {
        let report = lint_fixture(bad, krate, rel);
        assert!(
            rules_hit(&report).contains(rule),
            "{bad} should trigger `{rule}`, got {:?}",
            rules_hit(&report)
        );
        assert!(!report.is_clean(), "{bad} must fail --check");
    }
}

#[test]
fn every_positive_fixture_passes_its_rule() {
    for (rule, _, ok, krate, rel) in CASES {
        let report = lint_fixture(ok, krate, rel);
        assert!(
            !rules_hit(&report).contains(rule),
            "{ok} should not trigger `{rule}`, got findings {:?}",
            report.findings
        );
    }
}

#[test]
fn used_suppression_silences_and_counts() {
    let report = lint_fixture("suppression_ok.rs", "adc-core", "crates/adc-core/src/x.rs");
    assert!(report.is_clean(), "findings: {:?}", report.findings);
    assert_eq!(report.suppressions_line, 1);
    assert_eq!(report.suppressions_file, 0);
}

#[test]
fn unused_suppression_is_itself_a_finding() {
    let report = lint_fixture(
        "unused_allow_bad.rs",
        "adc-core",
        "crates/adc-core/src/x.rs",
    );
    assert_eq!(rules_hit(&report), vec!["unused-allow"]);
}

#[test]
fn file_level_allow_covers_whole_file() {
    let text = "// adc-lint: allow-file(panic)\n\
                pub fn a(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n\
                pub fn b(xs: &[u32]) -> u32 { *xs.last().unwrap() }\n";
    let report = run_files(&[parse_source(
        "crates/adc-core/src/x.rs",
        "adc-core",
        true,
        text,
    )]);
    let panics: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "panic")
        .collect();
    assert!(panics.is_empty(), "allow-file must cover both unwraps");
    assert_eq!(report.suppressions_file, 1);
}

#[test]
fn unknown_rule_in_allow_is_reported() {
    let text = "// adc-lint: allow(no-such-rule)\nfn f() {}\n";
    let report = run_files(&[parse_source(
        "crates/adc-core/src/x.rs",
        "adc-core",
        true,
        text,
    )]);
    assert_eq!(rules_hit(&report), vec!["unused-allow"]);
}

#[test]
fn test_code_is_exempt_from_line_rules() {
    let text = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v = vec![1]; let _ = v.first().unwrap(); }\n}\n";
    let report = run_files(&[parse_source(
        "crates/adc-core/src/x.rs",
        "adc-core",
        true,
        text,
    )]);
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// The CI gate: the binary itself, run over this workspace in `--check`
/// mode, must exit 0.
#[test]
fn workspace_self_check_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_adc-lint"))
        .args(["--check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run adc-lint");
    assert!(
        out.status.success(),
        "workspace lint failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A violating tree makes the binary exit non-zero in `--check` mode and
/// report the finding in `--json` output.
#[test]
fn check_mode_fails_on_violating_tree() {
    let dir = std::env::temp_dir().join(format!("adc-lint-fixture-{}", std::process::id()));
    let src = dir.join("crates/adc-core/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n",
    )
    .expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_adc-lint"))
        .args(["--check", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run adc-lint");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(1), "expected check failure");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\": \"panic\""), "json: {stdout}");
}

/// The atomic fixture exercises all three failure modes of the rule:
/// missing Ordering, unjustified Relaxed, unpaired Release.
#[test]
fn atomic_fixture_hits_all_three_failure_modes() {
    let report = lint_fixture(
        "atomic_ordering_bad.rs",
        "adc-sim",
        "crates/adc-sim/src/pool.rs",
    );
    let msgs: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "atomic-ordering")
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 3, "findings: {msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("without an explicit Ordering")));
    assert!(msgs.iter().any(|m| m.contains("Relaxed without")));
    assert!(msgs.iter().any(|m| m.contains("no Acquire-or-stronger")));
}

/// `--fix` removes stale allows, and a second run is the identity: the
/// doctored tree converges after one pass.
#[test]
fn fix_is_idempotent_on_a_doctored_tree() {
    let dir = std::env::temp_dir().join(format!("adc-lint-fix-{}", std::process::id()));
    let src = dir.join("crates/adc-core/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write");
    let lib = src.join("lib.rs");
    std::fs::write(
        &lib,
        "//! Doctored crate for the --fix test.\n\
         // adc-lint: allow-file(float-eq)\n\
         \n\
         /// Keeps its used allow, loses the stale one.\n\
         pub fn f(xs: &[u32]) -> u32 {\n\
         \x20   *xs.first().unwrap() // adc-lint: allow(panic, determinism)\n\
         }\n\
         \n\
         /// A comment-only stale directive above a clean line.\n\
         // adc-lint: allow(no-println)\n\
         pub fn g() -> u32 { 7 }\n",
    )
    .expect("write");
    let run_fix = || {
        Command::new(env!("CARGO_BIN_EXE_adc-lint"))
            .args(["--fix", "--root"])
            .arg(&dir)
            .output()
            .expect("run adc-lint --fix")
    };
    run_fix();
    let once = std::fs::read_to_string(&lib).expect("read after first fix");
    // Stale `determinism` is gone from the list, `panic` survives; the
    // stale file-scope and comment-only directives are gone entirely.
    assert!(once.contains("// adc-lint: allow(panic)"), "{once}");
    assert!(!once.contains("determinism"), "{once}");
    assert!(!once.contains("allow-file"), "{once}");
    assert!(!once.contains("no-println"), "{once}");
    let out = run_fix();
    let twice = std::fs::read_to_string(&lib).expect("read after second fix");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(once, twice, "--fix twice must equal --fix once");
    // The second run had nothing to remove.
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("removed"),
        "second --fix should be a no-op: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
