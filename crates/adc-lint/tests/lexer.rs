//! Differential and property tests for the token lexer.
//!
//! The v1 line scanner (`scan::parse_source`) and the v2 lexer
//! (`lex::lex`) classify the same byte stream independently — the
//! scanner into per-line code/comment views, the lexer into spanned
//! tokens. The differential test pins them to each other over every
//! rule fixture; the property test drives the lexer over generated
//! Rust-ish snippets with a deterministic PRNG (no proptest dependency)
//! and checks the structural invariants that every downstream pass
//! relies on.

use adc_lint::lex::{lex, Tok, TokKind};
use adc_lint::scan::parse_source;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Projection for comparing text across the two implementations:
/// whitespace never matters (block comments split across lines in the
/// scanner but not the lexer), and quote characters are classification
/// markers rather than content (the scanner keeps literal quotes in its
/// code view, the lexer folds them into the literal token).
fn scrub(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_whitespace() && *c != '"' && *c != '\'')
        .collect()
}

/// Comment text the lexer saw, from raw spans so markers are included.
fn lexer_comments(text: &str, toks: &[Tok]) -> String {
    toks.iter()
        .filter(|t| t.kind == TokKind::Comment)
        .map(|t| &text[t.start..t.end])
        .collect()
}

/// Code text the lexer saw: every non-comment, non-literal token.
fn lexer_code(text: &str, toks: &[Tok]) -> String {
    toks.iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::Str | TokKind::Char))
        .map(|t| &text[t.start..t.end])
        .collect()
}

fn assert_agreement(text: &str, label: &str) {
    let toks = lex(text);
    let file = parse_source("crates/x/src/lib.rs", "x", true, text);
    let scan_comments: String = file.lines.iter().map(|l| l.comment.as_str()).collect();
    let scan_code: String = file.lines.iter().map(|l| l.code.as_str()).collect();
    assert_eq!(
        scrub(&lexer_comments(text, &toks)),
        scrub(&scan_comments),
        "comment views disagree on {label}:\n{text}"
    );
    assert_eq!(
        scrub(&lexer_code(text, &toks)),
        scrub(&scan_code),
        "code views disagree on {label}:\n{text}"
    );
}

/// Every fixture — the corpus the line rules are pinned to — must
/// classify identically under both implementations.
#[test]
fn lexer_agrees_with_line_scanner_on_every_fixture() {
    let mut checked = 0;
    let mut entries: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let text = fs::read_to_string(&path).expect("read fixture");
        assert_agreement(&text, &path.display().to_string());
        checked += 1;
    }
    assert!(checked >= 30, "fixture corpus shrank to {checked} files");
}

/// Minimal multiplicative-congruential PRNG (Lehmer / MINSTD values),
/// deterministic across platforms so failures reproduce from the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<'a>(&mut self, xs: &[&'a str]) -> &'a str {
        xs[(self.next() as usize) % xs.len()]
    }
}

/// Well-formed fragments: every literal and comment is terminated, so
/// scanner and lexer must agree exactly.
const WELL_FORMED: &[&str] = &[
    "fn f() { g(); }",
    "let x = 1;",
    "let y = 1.5e3 + 0x_ff;",
    "let s = \"text with spaces\";",
    "let e = \"esc \\\" quote\";",
    "let r = r\"raw body\";",
    "let rh = r#\"raw \"q\" body\"#;",
    "let c = 'x';",
    "let nl = '\\n';",
    "fn g<'a>(v: &'a str) -> &'a str { v }",
    "// line comment with fn and \" quote\n",
    "/// doc comment\n",
    "/* block */",
    "/* multi\nline\nblock */",
    "/* nested /* inner */ outer */",
    "a.b.c(0..5);",
    "m::n::p(x => y);",
    "#[cfg(test)]\n",
    "\n",
    "    ",
    "let t = (1, [2, 3], {4});",
];

/// Hostile fragments for the no-panic half only: unterminated
/// constructs whose classification at EOF is allowed to differ.
const HOSTILE: &[&str] = &[
    "\"unterminated",
    "r#\"unterminated raw",
    "/* unterminated block",
    "'",
    "'\\",
    "r#",
    "b",
    "\\",
    "\u{1F980} unicode 🦀",
    "'lt",
];

/// Property: on generated well-formed snippets the two implementations
/// agree, and on any snippet (hostile tails included) the lexer does
/// not panic and returns tokens with sorted, in-bounds, non-overlapping
/// spans and non-decreasing line numbers.
#[test]
fn generated_snippets_hold_lexer_invariants() {
    for seed in 0..300u64 {
        let mut rng = Rng(seed.wrapping_mul(2654435761).wrapping_add(seed) | 1);
        let n = 1 + (rng.next() as usize) % 40;
        let mut text = String::new();
        for _ in 0..n {
            text.push_str(rng.pick(WELL_FORMED));
            text.push('\n');
        }
        // Well-formed body: full differential agreement.
        assert_agreement(&text, &format!("seed {seed}"));

        // Hostile tail: invariants only (EOF classification may differ).
        let mut hostile = text;
        hostile.push_str(rng.pick(HOSTILE));
        let toks = lex(&hostile);
        let mut prev_end = 0;
        let mut prev_line = 1;
        for t in &toks {
            assert!(t.start >= prev_end, "overlapping spans in seed {seed}");
            assert!(t.end >= t.start, "inverted span in seed {seed}");
            assert!(t.end <= hostile.len(), "span out of bounds in seed {seed}");
            assert!(
                hostile.is_char_boundary(t.start) && hostile.is_char_boundary(t.end),
                "span splits a char in seed {seed}"
            );
            assert!(t.line >= prev_line, "line went backwards in seed {seed}");
            prev_end = t.end;
            prev_line = t.line;
        }
        // Determinism: lexing is a pure function of the input.
        assert_eq!(toks.len(), lex(&hostile).len(), "non-deterministic lex");
    }
}
