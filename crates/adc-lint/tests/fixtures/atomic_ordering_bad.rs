//! Negative fixture for `atomic-ordering`: one op with no Ordering at
//! all, one unjustified Relaxed, and one Release publication nothing
//! ever observes with Acquire.

use std::sync::atomic::{AtomicU64, Ordering};

/// Barrier words for the fixture.
pub struct Ctl {
    flag: AtomicU64,
    seq: AtomicU64,
    hits: AtomicU64,
}

impl Ctl {
    /// No explicit Ordering argument on the counter bump.
    pub fn count(&self) {
        self.hits.fetch_add(1);
    }

    /// Relaxed with no justification comment anywhere near it.
    pub fn reset(&self) {
        self.flag.store(0, Ordering::Relaxed);
    }

    /// Release store on `seq`, but no Acquire-or-stronger load of
    /// `seq` exists anywhere in the audited files.
    pub fn publish(&self) {
        self.seq.store(1, Ordering::Release);
    }
}
