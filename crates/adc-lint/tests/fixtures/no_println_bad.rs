fn report(x: u32) {
    println!("x = {x}");
}
