//! Positive fixture: per-shard owned state and synchronized sharing are
//! both fine; identifiers merely containing the forbidden names (e.g.
//! `OnceCell`-style suffixes) must not trip the token matcher.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

pub struct Shard {
    events: u64,
    inbox: Vec<u64>,
}

pub struct SharedRng {
    inner: Arc<Mutex<u64>>,
}

pub static TOTAL: AtomicU64 = AtomicU64::new(0);

pub struct MyCellar {
    cellars: Vec<u64>,
}

fn cellmate(shard: &mut Shard) {
    shard.events += 1;
}
