//! Positive fixture: per-shard owned state and synchronized sharing are
//! both fine; identifiers merely containing the forbidden names (e.g.
//! `OnceCell`-style suffixes) must not trip the token matcher.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

pub struct Shard {
    events: u64,
    inbox: Vec<u64>,
}

pub struct SharedRng {
    inner: Arc<Mutex<u64>>,
}

pub static TOTAL: AtomicU64 = AtomicU64::new(0);

pub struct MyCellar {
    cellars: Vec<u64>,
}

fn cellmate(shard: &mut Shard) {
    shard.events += 1;
}

// Identifiers merely containing "spawn" (the pool telemetry counter)
// must not trip the per-window spawn token.
pub struct ExecStats {
    pub pool_spawns: u64,
    pub respawned_flows: u64,
}

pub fn note_spawnless_window(stats: &mut ExecStats) {
    stats.pool_spawns += 0;
}
