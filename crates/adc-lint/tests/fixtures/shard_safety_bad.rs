//! Negative fixture: every construct the shard-safety rule forbids in
//! code that sharded workers may run concurrently.

static mut GLOBAL_EVENTS: u64 = 0;

thread_local! {
    static SCRATCH: Vec<u64> = Vec::new();
}

pub struct Shard {
    // Unsynchronized interior mutability defeats &mut-per-shard
    // ownership even behind a shared reference.
    hits: std::cell::Cell<u64>,
    log: std::cell::RefCell<Vec<u64>>,
    raw: std::cell::UnsafeCell<u64>,
}

// Per-window thread creation: the spawn storm the persistent pool
// exists to remove.
pub fn drain_all(shards: &mut [Shard]) {
    std::thread::scope(|scope| {
        for shard in shards.iter_mut() {
            scope.spawn(move || drain(shard));
        }
    });
}

fn drain(_shard: &mut Shard) {}
