//! Negative fixture for `determinism-purity`: a `CacheAgent` hook
//! reaches a wall clock through a helper two calls deep, so the
//! reachability rule must flag the sink even though the hook itself
//! never names a clock.

use std::time::Instant;

/// Innermost helper holding the sink.
fn read_clock() -> Instant {
    Instant::now()
}

/// Middle hop: the hook never calls the sink directly.
fn record_latency() {
    let _ = read_clock();
}

/// The fixture agent.
pub struct FixtureAgent;

impl CacheAgent for FixtureAgent {
    fn on_request(&mut self) {
        record_latency();
    }
}
