use std::collections::BTreeMap;

pub struct Index {
    map: BTreeMap<u64, u32>,
}
