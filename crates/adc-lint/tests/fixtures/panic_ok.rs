pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
