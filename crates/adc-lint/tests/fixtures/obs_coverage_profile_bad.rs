impl Shard {
    fn drain_window(&mut self, dur_ns: u64, drained: u64) {
        self.prof.drain_ns += dur_ns;
        self.prof.events += drained;
    }
}

impl Recorder {
    fn close_delta(&mut self, delta: u64) {
        self.attributed_us += delta;
    }
}
