pub fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}
