// adc-lint: allow(panic)
fn nothing_panics_here() {}
