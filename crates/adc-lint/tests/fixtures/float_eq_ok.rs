pub fn is_zero(x: f64) -> bool {
    x.abs() < 1e-12
}
