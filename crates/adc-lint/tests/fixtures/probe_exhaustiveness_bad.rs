//! Negative fixture for `probe-exhaustiveness`: a match that dispatches
//! on the event enum but hides one variant behind `_`.

/// Fixture event taxonomy.
pub enum SimEvent {
    /// A local cache hit.
    LocalHit { object: u64 },
    /// An eviction.
    CacheEvict { object: u64 },
    /// A routing loop.
    LoopDetected { proxy: u32 },
}

/// Constructs every variant so the construction sub-check stays quiet
/// and the match coverage failure is the only finding.
pub fn emit(n: u64) -> Vec<SimEvent> {
    vec![
        SimEvent::LocalHit { object: n },
        SimEvent::CacheEvict { object: n },
        SimEvent::LoopDetected { proxy: 0 },
    ]
}

/// Dispatches on the enum but silently drops `LoopDetected`.
pub fn classify(e: &SimEvent) -> &'static str {
    match e {
        SimEvent::LocalHit { .. } => "hit",
        SimEvent::CacheEvict { .. } => "evict",
        _ => "other",
    }
}
