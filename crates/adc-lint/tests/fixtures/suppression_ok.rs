fn first(xs: &[u32]) -> u32 {
    // Invariant: callers pass non-empty slices. adc-lint: allow(panic)
    *xs.first().unwrap()
}
