//! Positive fixture for `metric-name-drift`'s segment-name half: exact
//! canonical spellings pass, as do snake_case literals that are nowhere
//! near the segment vocabulary.

/// Canonical segment vocabulary, as `adc-obs::segment_names` defines it.
pub mod segment_names {
    /// A proxy-to-proxy forwarding hop.
    pub const SEG_FORWARD_HOP: &str = "forward_hop";
    /// An origin fetch.
    pub const SEG_ORIGIN_FETCH: &str = "origin_fetch";
}

/// Renders with the exact canonical spelling, embedded in a format
/// string the way real tables are built.
pub fn render(v: u64) -> String {
    format!("forward_hop {v}\n")
}

/// Snake_case strings far from any segment name stay untouched — the
/// rule only fires on near-misses.
pub fn field_name() -> &'static str {
    "attributed_us"
}
