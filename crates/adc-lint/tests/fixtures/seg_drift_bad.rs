//! Negative fixture for `metric-name-drift`'s segment-name half: a
//! latency-table literal one edit away from a `SEG_*`-defined canonical
//! segment name.

/// Canonical segment vocabulary, as `adc-obs::segment_names` defines it.
pub mod segment_names {
    /// A proxy-to-proxy forwarding hop.
    pub const SEG_FORWARD_HOP: &str = "forward_hop";
    /// An origin fetch.
    pub const SEG_ORIGIN_FETCH: &str = "origin_fetch";
}

/// Renders a table row with a typo'd segment — `forward_hops` — which
/// must be flagged as a near-miss of the const above.
pub fn render(v: u64) -> String {
    format!("forward_hops {v}\n")
}

/// A second drift shape: a dropped letter (`orign_fetch`).
pub fn render_origin(v: u64) -> String {
    format!("orign_fetch {v}\n")
}
