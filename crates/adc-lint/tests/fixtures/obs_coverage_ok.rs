impl Proxy {
    fn on_hit(&mut self, probe: &mut impl Probe) {
        self.stats.hits += 1;
        probe.emit(SimEvent::LocalHit);
    }
}

impl Telemetry {
    fn on_forward(&mut self, probe: &mut impl Probe) {
        self.registry.counter_add("adc_forwards_total", self.id, 1);
        probe.emit(SimEvent::ForwardLearned);
    }
}
