impl Proxy {
    fn on_hit(&mut self, probe: &mut impl Probe) {
        self.stats.hits += 1;
        probe.emit(SimEvent::LocalHit);
    }
}
