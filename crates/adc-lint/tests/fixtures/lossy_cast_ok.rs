pub fn shrink(x: u64) -> u32 {
    // Bucket counts stay far below u32::MAX.
    x as u32
}
