pub fn stamp(sim_clock: u64) -> u64 {
    sim_clock + 1
}
