fn report(x: u32) -> String {
    format!("x = {x}")
}
