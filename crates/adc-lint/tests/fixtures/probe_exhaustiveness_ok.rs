//! Positive fixture for `probe-exhaustiveness`: the dispatch covers the
//! whole taxonomy, every variant is constructed, and a match that only
//! *constructs* events in its arm bodies is not mistaken for a dispatch.

/// Fixture event taxonomy.
pub enum SimEvent {
    /// A local cache hit.
    LocalHit { object: u64 },
    /// An eviction.
    CacheEvict { object: u64 },
    /// A routing loop.
    LoopDetected { proxy: u32 },
}

/// Constructs the remaining variant outside any match.
pub fn emit_loop(proxy: u32) -> SimEvent {
    SimEvent::LoopDetected { proxy }
}

/// A match over a *different* scrutinee whose arms construct events:
/// this is production, not dispatch, and must not be flagged.
pub fn from_flag(hit: bool, n: u64) -> SimEvent {
    match hit {
        true => SimEvent::LocalHit { object: n },
        false => SimEvent::CacheEvict { object: n },
    }
}

/// Full dispatch: every variant named, no wildcard.
pub fn classify(e: &SimEvent) -> &'static str {
    match e {
        SimEvent::LocalHit { .. } => "hit",
        SimEvent::CacheEvict { .. } => "evict",
        SimEvent::LoopDetected { .. } => "loop",
    }
}
