use std::collections::HashMap;

pub struct Index {
    map: HashMap<u64, u32>,
}
