impl Proxy {
    fn on_hit(&mut self) {
        self.stats.hits += 1;
    }
}

impl Telemetry {
    fn on_forward(&mut self) {
        self.registry.counter_add("adc_forwards_total", self.id, 1);
    }
}

impl Telemetry {
    fn on_resolved(&mut self, hops: u64) {
        self.registry.histogram_record("adc_hops", self.id, hops);
    }
}
