impl Proxy {
    fn on_hit(&mut self) {
        self.stats.hits += 1;
    }
}
