pub fn undocumented() {}
