impl Recorder {
    fn on_complete(&mut self, probe: &mut impl Probe, total: u64) {
        self.total_us += total;
        probe.emit(SimEvent::RequestCompleted);
    }
}

impl Shard {
    fn drain_window(&mut self, dur_ns: u64) {
        // Wall-clock accounting: reconciled by the occupancy-sum
        // identity test, not the SimEvent stream.
        // adc-lint: allow(obs-coverage)
        self.prof.drain_ns += dur_ns;
    }
}
