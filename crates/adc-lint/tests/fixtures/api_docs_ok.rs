/// Documented behind a rustfmt-wrapped derive list.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq,
)]
pub struct Documented;

/// Documented plainly.
pub fn documented() {}
