pub fn shrink(x: u64) -> u32 {
    x as u32
}
