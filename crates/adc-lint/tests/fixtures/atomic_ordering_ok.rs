//! Positive fixture for `atomic-ordering`: every op spells its
//! Ordering, Relaxed is justified, and the Release publication has a
//! matching Acquire observer on the same field.

use std::sync::atomic::{AtomicU64, Ordering};

/// Barrier words for the fixture.
pub struct Ctl {
    flag: AtomicU64,
    seq: AtomicU64,
}

impl Ctl {
    /// Justified Relaxed plus a Release/Acquire pair on `seq`.
    pub fn publish(&self) {
        // ordering: Relaxed — the Release store on `seq` below is the
        // publication point; readers acquire `seq` before reading `flag`.
        self.flag.store(1, Ordering::Relaxed);
        self.seq.store(1, Ordering::Release);
    }

    /// The matching observer side.
    pub fn observe(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}
