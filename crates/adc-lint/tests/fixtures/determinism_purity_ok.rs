//! Positive fixture for `determinism-purity`: the hook's call chain is
//! pure; a clock does exist in the file but only in a helper no hot-path
//! root can reach, so the reachability rule must stay quiet.

use std::time::Instant;

/// Pure helper on the hot path.
fn bump(counter: &mut u64) {
    *counter += 1;
}

/// Offline-report helper: never called from any hook or run loop, so the
/// clock is out of hot-path reach. adc-lint: allow(determinism)
pub fn wall_now_for_reports() -> Instant {
    Instant::now()
}

/// The fixture agent.
pub struct FixtureAgent {
    /// Requests seen.
    pub seen: u64,
}

impl CacheAgent for FixtureAgent {
    fn on_request(&mut self) {
        bump(&mut self.seen);
    }
}
