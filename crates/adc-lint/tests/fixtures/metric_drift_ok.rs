//! Positive fixture for `metric-name-drift`: every rendered literal
//! agrees with a const-defined family, including a histogram series
//! whose `_bucket` suffix must be stripped before matching.

/// Canonical counter family.
pub const LOCAL_HITS: &str = "adc_local_hits_total";
/// Canonical histogram family.
pub const HOPS: &str = "adc_hops";

/// Renders the counter with the exact canonical spelling.
pub fn render(v: u64) -> String {
    format!("adc_local_hits_total{{proxy=\"0\"}} {v}\n")
}

/// Renders a histogram bucket series: `adc_hops_bucket` normalizes to
/// the `adc_hops` family.
pub fn render_hist(c: u64) -> String {
    format!("adc_hops_bucket{{le=\"+Inf\"}} {c}\n")
}
