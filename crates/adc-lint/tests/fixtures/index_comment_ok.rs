pub fn pick(xs: &[u32], i: usize) -> u32 {
    // Caller guarantees i < xs.len().
    xs[i]
}
