//! Negative fixture for `metric-name-drift`: a renderer literal that
//! drifts (by one character) from the const-defined family name.

/// Canonical family name.
pub const LOCAL_HITS: &str = "adc_local_hits_total";

/// Renders with a typo'd family — `hit` instead of `hits` — which must
/// be flagged against the const above.
pub fn render(v: u64) -> String {
    format!("adc_local_hit_total{{proxy=\"0\"}} {v}\n")
}
