//! The rule set: each rule is a function over one scanned file that
//! pushes raw findings (suppression filtering happens in the engine).
//!
//! Scope philosophy (documented per-rule in `RULES`): the deterministic
//! simulation crates (`adc-core`, `adc-sim`, `adc-workload`,
//! `adc-baselines`) carry the strictest rules because golden-file
//! reproducibility depends on them. `adc-metrics` and `adc-obs` are
//! post-processing and get panic/float/println hygiene only. `adc-net`
//! is an experimental wall-clock TCP harness: it is exempt from the
//! panic and determinism rules by design (it talks to real sockets),
//! but still must not `println!` from library code. `adc-bench` and
//! binaries are CLI glue and are out of scope entirely.

use crate::callgraph::CallGraph;
use crate::index::WorkspaceIndex;
use crate::lex::{lex, Tok, TokKind};
use crate::scan::{SourceFile, SourceLine};
use crate::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Static metadata for one rule.
pub struct RuleInfo {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
    pub scope: &'static str,
}

/// The full rule catalog. `unused-allow` is engine-level (it fires on
/// suppressions, not source lines) but is listed here so `--list-rules`
/// and the JSON rule count describe the whole contract.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism",
        severity: Severity::Error,
        summary: "wall-clock, OS randomness, or environment reads in deterministic simulation code",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines (library, non-test)",
    },
    RuleInfo {
        id: "default-hasher",
        severity: Severity::Error,
        summary: "HashMap/HashSet with the default (randomized) hasher in deterministic simulation code",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines (library, non-test)",
    },
    RuleInfo {
        id: "panic",
        severity: Severity::Error,
        summary: "bare .unwrap()/.expect() in library code",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines, adc-metrics, adc-obs (library, non-test)",
    },
    RuleInfo {
        id: "index-comment",
        severity: Severity::Warning,
        summary: "slice/array indexing without a nearby justification comment",
        scope: "adc-core plus adc-sim hot path (queue.rs, flows.rs, runner.rs)",
    },
    RuleInfo {
        id: "float-eq",
        severity: Severity::Error,
        summary: "== or != against a floating-point literal",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines, adc-metrics, adc-obs (library, non-test)",
    },
    RuleInfo {
        id: "lossy-cast",
        severity: Severity::Warning,
        summary: "potentially lossy `as` cast without a nearby justification comment",
        scope: "adc-sim hot path only (queue.rs, flows.rs, runner.rs)",
    },
    RuleInfo {
        id: "obs-coverage",
        severity: Severity::Warning,
        summary: "ProxyStats, metrics-registry, or span/shard-profile counter mutation with no Probe emission nearby",
        scope: "adc-core, adc-baselines (stats/registry); adc-sim, adc-obs (profiler counters) — library, non-test",
    },
    RuleInfo {
        id: "api-docs",
        severity: Severity::Warning,
        summary: "public item without a doc comment",
        scope: "adc-core, adc-obs (library, non-test)",
    },
    RuleInfo {
        id: "shard-safety",
        severity: Severity::Error,
        summary: "static mut, thread locals, unsynchronized interior mutability, or (hot path only) per-window thread spawns in shard-parallel code",
        scope: "adc-core plus adc-sim hot path (code sharded workers may run concurrently)",
    },
    RuleInfo {
        id: "no-println",
        severity: Severity::Error,
        summary: "println!/print!/dbg! in library code (use probes or return values)",
        scope: "all adc library crates (library, non-test)",
    },
    RuleInfo {
        id: "determinism-purity",
        severity: Severity::Error,
        summary: "fn transitively reachable from the simulation hot path reads wall clocks, OS entropy, env, or builds default-hasher maps",
        scope: "call chains from CacheAgent::on_*, Simulation::run*, and sharded.rs drains, across the deterministic crates plus adc-obs/adc-metrics",
    },
    RuleInfo {
        id: "atomic-ordering",
        severity: Severity::Error,
        summary: "atomic op without an explicit Ordering, Relaxed without an `// ordering:` justification, or a Release publication with no matching Acquire load",
        scope: "adc-sim/src/pool.rs and adc-sim/src/sharded.rs (the barrier protocol)",
    },
    RuleInfo {
        id: "probe-exhaustiveness",
        severity: Severity::Error,
        summary: "SimEvent/EventKind match that hides variants behind a catch-all, or a SimEvent variant never constructed outside tests",
        scope: "library code in all scanned crates (matches); the event taxonomy declaration (constructions)",
    },
    RuleInfo {
        id: "metric-name-drift",
        severity: Severity::Error,
        summary: "adc_* metric family literal that matches no const-defined family name, or a near-miss of a SEG_*-defined span segment name",
        scope: "adc-obs, adc-net, adc-metrics — library, bin, and test code (tests must agree too)",
    },
    RuleInfo {
        id: "unused-allow",
        severity: Severity::Error,
        summary: "adc-lint suppression that matched no finding, or names an unknown rule",
        scope: "everywhere suppressions appear",
    },
];

/// Looks up a rule's metadata by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    rule_info(id).is_some()
}

const DETERMINISTIC_CRATES: &[&str] = &["adc-core", "adc-sim", "adc-workload", "adc-baselines"];
const PANIC_CRATES: &[&str] = &[
    "adc-core",
    "adc-sim",
    "adc-workload",
    "adc-baselines",
    "adc-metrics",
    "adc-obs",
];
const PRINTLN_CRATES: &[&str] = &[
    "adc-core",
    "adc-sim",
    "adc-workload",
    "adc-baselines",
    "adc-metrics",
    "adc-obs",
    "adc-net",
];
const DOC_CRATES: &[&str] = &["adc-core", "adc-obs"];
const OBS_CRATES: &[&str] = &["adc-core", "adc-baselines"];
// The span recorder (adc-obs) and the shard-execution profiler
// (adc-sim) keep latency-attribution and wall-clock accumulators that
// the golden files never see. A new counter on that surface must
// either sit next to the probe dispatch that drives it or carry an
// explicit allow naming the reconciliation (sum check, occupancy
// total, ...) that keeps it honest. Field names, not receiver names,
// identify the surface so refactors of the holder struct keep the
// rule attached.
const PROFILE_CRATES: &[&str] = &["adc-sim", "adc-obs"];
const PROFILE_COUNTER_TOKENS: &[&str] = &[
    "drain_ns",
    "busy_ns",
    "wait_ns",
    "slices_dropped",
    "seg_total_us",
    "attributed_us",
    "total_us",
    "sum_check_failures",
    "unmatched_completions",
];
// Per-window hot-path files for the shard-safety rule. pool.rs is
// deliberately absent: it is the one legitimate thread-creation site
// (its workers persist for the whole run), while code listed here runs
// once per barrier window and must never create OS threads.
const HOT_PATH_FILES: &[&str] = &[
    "crates/adc-sim/src/queue.rs",
    "crates/adc-sim/src/flows.rs",
    "crates/adc-sim/src/runner.rs",
    "crates/adc-sim/src/sharded.rs",
];

/// A line-oriented rule: a predicate over one file's line model.
pub type LineRule = fn(&SourceFile, &mut Vec<Finding>);

/// A token/symbol-level rule: runs once over the whole scanned set.
pub type SemanticRule = fn(&SemanticCtx, &mut Vec<Finding>);

/// The line-oriented rules, in catalog order, keyed by id so the
/// engine can time and count them individually.
pub const LINE_RULES: &[(&str, LineRule)] = &[
    ("determinism", determinism),
    ("default-hasher", default_hasher),
    ("panic", panic_hygiene),
    ("index-comment", index_comment),
    ("float-eq", float_eq),
    ("lossy-cast", lossy_cast),
    ("obs-coverage", obs_coverage),
    ("api-docs", api_docs),
    ("shard-safety", shard_safety),
    ("no-println", no_println),
];

/// The token/symbol-level rules: each runs once over the whole scanned
/// set (they need cross-file context — a call graph, an enum universe,
/// a canonical name set).
pub const SEMANTIC_RULES: &[(&str, SemanticRule)] = &[
    ("determinism-purity", determinism_purity),
    ("atomic-ordering", atomic_ordering),
    ("probe-exhaustiveness", probe_exhaustiveness),
    ("metric-name-drift", metric_name_drift),
];

/// Runs every line rule against one file (the semantic rules need a
/// [`SemanticCtx`] and run once per file *set*, not per file).
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    for (_, rule) in LINE_RULES {
        rule(file, out);
    }
}

/// Cross-file context the semantic rules share: the scanned files, the
/// token stream of each, and the symbol index over them.
pub struct SemanticCtx<'a> {
    pub files: &'a [SourceFile],
    pub lexed: &'a [Vec<Tok>],
    pub index: &'a WorkspaceIndex,
}

impl<'a> SemanticCtx<'a> {
    /// Lexes every scanned file (from the per-line raw text the scanner
    /// kept, so in-memory fixtures work identically to disk files).
    pub fn lex_files(files: &[SourceFile]) -> Vec<Vec<Tok>> {
        files
            .iter()
            .map(|f| {
                let text: Vec<&str> = f.lines.iter().map(|l| l.raw.as_str()).collect();
                lex(&text.join("\n"))
            })
            .collect()
    }

    /// Builds the symbol index for the lexed set.
    pub fn build_index(files: &[SourceFile], lexed: &[Vec<Tok>]) -> WorkspaceIndex {
        WorkspaceIndex::build(lexed, &|fi, line| is_test_line(&files[fi], line))
    }

    fn in_test(&self, fi: usize, line: usize) -> bool {
        is_test_line(&self.files[fi], line)
    }
}

/// Whether a 1-based line of `file` is test-only: inside a
/// `#[cfg(test)]` region, or anywhere in an integration-test file.
fn is_test_line(file: &SourceFile, line: usize) -> bool {
    file.rel.contains("/tests/")
        || file
            .lines
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.in_test)
}

/// Comment-stripped view of a token slice.
fn code_view(toks: &[Tok]) -> Vec<&Tok> {
    toks.iter().filter(|t| t.kind != TokKind::Comment).collect()
}

fn in_scope(file: &SourceFile, crates: &[&str]) -> bool {
    file.is_lib && crates.contains(&file.krate.as_str())
}

fn push(
    out: &mut Vec<Finding>,
    rule: &'static str,
    file: &SourceFile,
    idx: usize,
    message: String,
) {
    let info = rule_info(rule).unwrap_or(&RULES[0]);
    out.push(Finding {
        rule,
        severity: info.severity,
        file: file.rel.clone(),
        line: idx + 1,
        snippet: file.lines[idx].raw.trim().to_string(),
        message,
    });
}

/// Token search with identifier boundaries on both sides (`::` is not a
/// boundary on the left, so fully-qualified paths still match).
fn contains_token(code: &str, tok: &str) -> bool {
    let mut start = 0;
    while let Some(p) = code[start..].find(tok) {
        let at = start + p;
        let before_ok = code[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = code[at + tok.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + tok.len();
    }
    false
}

fn determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, DETERMINISTIC_CRATES) {
        return;
    }
    const TOKENS: &[(&str, &str)] = &[
        ("SystemTime", "wall-clock read"),
        ("time::Instant", "wall-clock type"),
        ("Instant::now", "wall-clock read"),
        ("clock_gettime", "OS clock read"),
        ("thread_rng", "OS-seeded RNG"),
        ("from_entropy", "OS-seeded RNG"),
        ("env::var", "environment read"),
        ("env::var_os", "environment read"),
        ("env::args", "environment read"),
        ("RandomState", "randomized hasher state"),
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, what) in TOKENS {
            if contains_token(&line.code, tok) {
                push(
                    out,
                    "determinism",
                    file,
                    i,
                    format!("{what} (`{tok}`) in deterministic simulation code"),
                );
                break;
            }
        }
    }
}

fn default_hasher(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, DETERMINISTIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in ["HashMap", "HashSet"] {
            if contains_token(&line.code, tok) {
                push(
                    out,
                    "default-hasher",
                    file,
                    i,
                    format!(
                        "`{tok}` uses a randomized default hasher; use BTreeMap/BTreeSet or \
                         justify keyed-only access with an allow"
                    ),
                );
                break;
            }
        }
    }
}

fn panic_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, PANIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        // `debug_assert!` lines may mention unwrap in messages; the code
        // view already strips strings, so matches here are real calls.
        if line.code.contains(".unwrap()") {
            push(
                out,
                "panic",
                file,
                i,
                "bare `.unwrap()` in library code; handle the error or document the \
                 invariant and allow"
                    .to_string(),
            );
        } else if line.code.contains(".expect(") {
            push(
                out,
                "panic",
                file,
                i,
                "`.expect()` in library code; handle the error or document the invariant \
                 and allow"
                    .to_string(),
            );
        }
    }
}

fn is_hot_path(file: &SourceFile) -> bool {
    HOT_PATH_FILES.contains(&file.rel.as_str())
}

/// A comment on the same line or within the two preceding lines counts
/// as justification for indexing.
fn has_nearby_comment(lines: &[SourceLine], i: usize) -> bool {
    let lo = i.saturating_sub(2);
    lines[lo..=i].iter().any(|l| !l.comment.is_empty())
}

fn index_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    let core_scope = file.is_lib && file.krate == "adc-core";
    if !(core_scope || is_hot_path(file)) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || !has_index_expr(&line.code) {
            continue;
        }
        if has_nearby_comment(&file.lines, i) {
            continue;
        }
        push(
            out,
            "index-comment",
            file,
            i,
            "indexing can panic; add a comment stating why the index is in bounds \
             (or use get())"
                .to_string(),
        );
    }
}

/// Detects `expr[` — an identifier, `)`, or `]` immediately followed by
/// `[`. Attribute syntax (`#[`) never matches because `#` is not an
/// index-able token tail.
fn has_index_expr(code: &str) -> bool {
    let mut prev = ' ';
    for c in code.chars() {
        if c == '[' && (prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            return true;
        }
        prev = c;
    }
    false
}

fn float_eq(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, PANIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if float_comparison(&line.code) {
            push(
                out,
                "float-eq",
                file,
                i,
                "exact float comparison; use an epsilon, integer representation, or \
                 document the sentinel and allow"
                    .to_string(),
            );
        }
    }
}

/// True when `==` or `!=` has a float literal (digits `.` digits) in its
/// immediate operand text on either side.
fn float_comparison(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let mut k = 0;
    while k + 1 < chars.len() {
        let two: String = chars[k..k + 2].iter().collect();
        if two == "==" || two == "!=" {
            // Skip <=, >=, +=, etc. (first char must be '=' or '!').
            let prev = if k > 0 { chars[k - 1] } else { ' ' };
            if two == "==" && (prev == '<' || prev == '>' || prev == '!' || prev == '=') {
                k += 2;
                continue;
            }
            let left: String = chars[..k]
                .iter()
                .rev()
                .take_while(|&&c| !matches!(c, '(' | ',' | ';' | '&' | '|' | '{'))
                .collect();
            let right: String = chars[k + 2..]
                .iter()
                .take_while(|&&c| !matches!(c, ')' | ',' | ';' | '&' | '|' | '{'))
                .collect();
            if has_float_literal(&left) || has_float_literal(&right) {
                return true;
            }
            k += 2;
        } else {
            k += 1;
        }
    }
    false
}

fn has_float_literal(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    for k in 0..chars.len() {
        if chars[k] == '.'
            && k > 0
            && chars[k - 1].is_ascii_digit()
            && chars.get(k + 1).is_some_and(|c| c.is_ascii_digit())
        {
            // Reject version-ish tokens glued to identifiers (v1.2).
            let mut j = k - 1;
            while j > 0 && chars[j - 1].is_ascii_digit() {
                j -= 1;
            }
            let lead = if j > 0 { chars[j - 1] } else { ' ' };
            if !lead.is_alphanumeric() && lead != '_' {
                return true;
            }
        }
    }
    false
}

const LOSSY_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "f32", "f64", "usize",
];

fn lossy_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    if !is_hot_path(file) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(target) = lossy_cast_target(&line.code) else {
            continue;
        };
        if has_nearby_comment(&file.lines, i) {
            continue;
        }
        push(
            out,
            "lossy-cast",
            file,
            i,
            format!(
                "`as {target}` can silently truncate or round; add a comment stating the \
                 value range (or use try_into/from)"
            ),
        );
    }
}

fn lossy_cast_target(code: &str) -> Option<&'static str> {
    let mut start = 0;
    while let Some(p) = code[start..].find(" as ") {
        let at = start + p + 4;
        let rest = &code[at..];
        for t in LOSSY_TARGETS {
            if rest.starts_with(t)
                && rest[t.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_')
            {
                return Some(t);
            }
        }
        start = at;
    }
    None
}

fn obs_coverage(file: &SourceFile, out: &mut Vec<Finding>) {
    let stats_scope = in_scope(file, OBS_CRATES);
    let profile_scope = in_scope(file, PROFILE_CRATES);
    if !stats_scope && !profile_scope {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let stats_mutation =
            stats_scope && line.code.contains("stats.") && line.code.contains("+=");
        // Registry mutations in the hot path are held to the same
        // standard: counters the simulator cannot reconcile against a
        // SimEvent stream drift silently.
        let registry_mutation = stats_scope
            && (line.code.contains(".counter_add(") || line.code.contains(".histogram_record("));
        // Span/shard-profile accumulators drift the same way, so their
        // mutations need the same witness (or an explicit allow stating
        // what reconciles them instead).
        let profile_mutation = profile_scope
            && line.code.contains("+=")
            && PROFILE_COUNTER_TOKENS
                .iter()
                .any(|t| contains_token(&line.code, t));
        if !(stats_mutation || registry_mutation || profile_mutation) {
            continue;
        }
        let lo = i.saturating_sub(10);
        let hi = (i + 10).min(file.lines.len() - 1);
        let covered = file.lines[lo..=hi]
            .iter()
            .any(|l| l.code.contains(".emit(") || l.code.contains("P::ENABLED"));
        if !covered {
            let (what, fix) = if stats_mutation {
                (
                    "ProxyStats counter",
                    "emit a SimEvent so adc-obs reconciliation stays honest",
                )
            } else if registry_mutation {
                (
                    "metrics registry family",
                    "emit a SimEvent so adc-obs reconciliation stays honest",
                )
            } else {
                (
                    "span/shard-profile counter",
                    "keep it next to the probe dispatch that drives it, or add an \
                     explicit allow naming the check that reconciles it",
                )
            };
            push(
                out,
                "obs-coverage",
                file,
                i,
                format!("{what} mutated with no Probe emission within 10 lines; {fix}"),
            );
        }
    }
}

const PUB_ITEM_PREFIXES: &[&str] = &[
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub unsafe fn ",
    "pub async fn ",
];

fn api_docs(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, DOC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        if !PUB_ITEM_PREFIXES.iter().any(|p| code.starts_with(p)) {
            continue;
        }
        let j = walk_attributes_up(file, i);
        let documented = j > 0 && file.lines[j - 1].is_doc_comment();
        if !documented {
            push(
                out,
                "api-docs",
                file,
                i,
                "public item has no doc comment".to_string(),
            );
        }
    }
}

/// Walks upward from line `i` over the attributes decorating an item
/// (single-line `#[...]` and multi-line `#[derive(...)]` blocks),
/// returning the line index where a doc comment would sit.
fn walk_attributes_up(file: &SourceFile, mut j: usize) -> usize {
    loop {
        if j == 0 {
            return j;
        }
        let above = file.lines[j - 1].code.trim();
        if above.starts_with("#[") || above.starts_with("#![") {
            j -= 1;
            continue;
        }
        if above.ends_with(']') && !above.contains(';') {
            // Possibly the tail of a multi-line attribute: look for its
            // opener within a few lines.
            let mut k = j - 1;
            let mut opener = None;
            while k > 0 && (j - k) < 16 {
                let t = file.lines[k - 1].code.trim();
                if t.starts_with("#[") || t.starts_with("#![") {
                    opener = Some(k - 1);
                    break;
                }
                if t.is_empty() || t.contains(';') || t.contains('}') {
                    break;
                }
                k -= 1;
            }
            if let Some(open) = opener {
                j = open;
                continue;
            }
        }
        return j;
    }
}

/// Shared-state constructs the sharded executor's `Send` contract cannot
/// see: `static mut` and thread locals are process-global state that
/// aliases across worker shards, and unsynchronized interior mutability
/// (`Cell`/`RefCell`/`UnsafeCell`) silently defeats the `&mut`-per-shard
/// ownership discipline the barrier protocol relies on. `Mutex`/atomics
/// are fine — they synchronize — so they are not listed.
///
/// Hot-path files additionally may not create OS threads: the code there
/// runs once per barrier window, so a `spawn`/`thread::scope` is a
/// per-window spawn storm — exactly the overhead the persistent worker
/// pool removed. `adc-sim/src/pool.rs` is deliberately *not* a hot-path
/// file: it is the one legitimate spawn site (threads live for the whole
/// run there, amortized across every window).
fn shard_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    let core_scope = file.is_lib && file.krate == "adc-core";
    if !(core_scope || is_hot_path(file)) {
        return;
    }
    const TOKENS: &[(&str, &str)] = &[
        ("static mut", "mutable process-global state"),
        (
            "thread_local!",
            "per-OS-thread state (shard-count dependent)",
        ),
        ("RefCell", "unsynchronized interior mutability"),
        ("Cell", "unsynchronized interior mutability"),
        ("UnsafeCell", "unsynchronized interior mutability"),
    ];
    const SPAWN_TOKENS: &[(&str, &str)] = &[
        ("spawn", "per-window OS-thread creation"),
        ("thread::scope", "per-window scoped-thread creation"),
    ];
    let spawn_tokens: &[(&str, &str)] = if is_hot_path(file) { SPAWN_TOKENS } else { &[] };
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, what) in TOKENS.iter().chain(spawn_tokens) {
            if contains_token(&line.code, tok) {
                let advice = if spawn_tokens.iter().any(|(t, _)| t == tok) {
                    "dispatch windows through the persistent worker pool \
                     (adc-sim's pool module) instead of creating threads per window"
                } else {
                    "keep state per-shard or synchronize it (Mutex/atomics)"
                };
                push(
                    out,
                    "shard-safety",
                    file,
                    i,
                    format!(
                        "{what} (`{tok}`) in code sharded workers may run concurrently; {advice}"
                    ),
                );
                break;
            }
        }
    }
}

fn no_println(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, PRINTLN_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in ["println!", "print!", "dbg!"] {
            if contains_token(&line.code, tok) {
                push(
                    out,
                    "no-println",
                    file,
                    i,
                    format!(
                        "`{tok}` in library code; route output through probes or return values"
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Semantic rules (token/symbol level, cross-file).
// ---------------------------------------------------------------------

/// Crates whose code the simulation hot path can actually reach (the
/// dependency direction makes adc-bench/adc-net/bins unreachable from
/// sim code, so resolving into them would only add false chains).
const PURITY_CRATES: &[&str] = &[
    "adc-core",
    "adc-sim",
    "adc-workload",
    "adc-baselines",
    "adc-obs",
    "adc-metrics",
];

/// A sink pattern: consecutive non-comment tokens, where `::` matches
/// the path separator and everything else an exact identifier.
const PURITY_SINKS: &[(&[&str], &str)] = &[
    (
        &["Instant", "::", "now"],
        "wall-clock read (`Instant::now`)",
    ),
    (&["SystemTime"], "wall-clock read (`SystemTime`)"),
    (&["clock_gettime"], "OS clock read (`clock_gettime`)"),
    (&["thread_rng"], "OS-seeded RNG (`thread_rng`)"),
    (&["from_entropy"], "OS-seeded RNG (`from_entropy`)"),
    (&["RandomState"], "randomized hasher state (`RandomState`)"),
    (&["env", "::", "var"], "environment read (`env::var`)"),
    (&["env", "::", "var_os"], "environment read (`env::var_os`)"),
    (&["env", "::", "args"], "environment read (`env::args`)"),
    (
        &["HashMap", "::", "new"],
        "default-hasher map (`HashMap::new`)",
    ),
    (
        &["HashMap", "::", "with_capacity"],
        "default-hasher map (`HashMap::with_capacity`)",
    ),
    (
        &["HashMap", "::", "default"],
        "default-hasher map (`HashMap::default`)",
    ),
    (
        &["HashSet", "::", "new"],
        "default-hasher set (`HashSet::new`)",
    ),
    (
        &["HashSet", "::", "with_capacity"],
        "default-hasher set (`HashSet::with_capacity`)",
    ),
    (
        &["HashSet", "::", "default"],
        "default-hasher set (`HashSet::default`)",
    ),
];

/// Matches one sink pattern at position `k` of a code view.
fn sink_at<'v>(view: &[&'v Tok], k: usize) -> Option<(&'v Tok, &'static str)> {
    'pattern: for (pat, what) in PURITY_SINKS {
        for (off, want) in pat.iter().enumerate() {
            let Some(t) = view.get(k + off) else {
                continue 'pattern;
            };
            let ok = if *want == "::" {
                t.kind == TokKind::Punct && t.text == "::"
            } else {
                t.kind == TokKind::Ident && t.text == *want
            };
            if !ok {
                continue 'pattern;
            }
        }
        return Some((view[k], what));
    }
    None
}

/// Display label for a fn: `Type::name` when it sits in an impl.
fn fn_label(f: &crate::index::FnItem) -> String {
    match &f.qual {
        Some(q) => format!("{q}::{}", f.name),
        None => f.name.clone(),
    }
}

/// determinism-purity: BFS over the call graph from the hot-path roots;
/// any reachable fn containing a purity sink is flagged at the sink
/// line, with one concrete call chain in the message.
fn determinism_purity(ctx: &SemanticCtx, out: &mut Vec<Finding>) {
    let files = ctx.files;
    let crate_of = |fi: usize| files[fi].krate.clone();
    let graph = CallGraph::build(ctx.index, ctx.lexed, &crate_of, PURITY_CRATES);

    let mut roots = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || !PURITY_CRATES.contains(&files[f.file].krate.as_str()) {
            continue;
        }
        let sharded_drain = files[f.file].rel == "crates/adc-sim/src/sharded.rs"
            && (f.name.starts_with("drain")
                || f.name == "run_window"
                || f.name.starts_with("run_sharded"));
        let agent_hook = f.trait_name.as_deref() == Some("CacheAgent") && f.name.starts_with("on_");
        let sim_run = f.qual.as_deref() == Some("Simulation") && f.name.starts_with("run");
        if sharded_drain || agent_hook || sim_run {
            roots.push(i);
        }
    }
    let reached = graph.reach(&roots);

    // One finding per sink line; the first discovered chain wins.
    let mut flagged: BTreeMap<(usize, usize), (String, &'static str)> = BTreeMap::new();
    for &i in reached.keys() {
        let f = graph.fns[i];
        if f.is_test {
            continue;
        }
        let Some((from, to)) = f.body else {
            continue;
        };
        let toks = &ctx.lexed[f.file];
        let view = code_view(&toks[from.min(toks.len())..to.min(toks.len())]);
        for k in 0..view.len() {
            let Some((tok, what)) = sink_at(&view, k) else {
                continue;
            };
            if ctx.in_test(f.file, tok.line) {
                continue;
            }
            flagged.entry((f.file, tok.line)).or_insert_with(|| {
                // Walk parent pointers back to a root.
                let mut chain = vec![fn_label(f)];
                let mut at = i;
                while let Some(Some((p, _))) = reached.get(&at) {
                    chain.push(fn_label(graph.fns[*p]));
                    at = *p;
                }
                chain.reverse();
                (chain.join(" -> "), what)
            });
        }
    }
    for ((fi, line), (chain, what)) in flagged {
        push(
            out,
            "determinism-purity",
            &files[fi],
            line - 1,
            format!(
                "{what} is reachable from the simulation hot path (chain: {chain}); \
                 keep the chain pure or justify with an allow"
            ),
        );
    }
}

const ATOMIC_FILES: &[&str] = &[
    "crates/adc-sim/src/pool.rs",
    "crates/adc-sim/src/sharded.rs",
];
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic operation site.
struct AtomicSite {
    file: usize,
    line: usize,
    field: Option<String>,
    method: String,
    orderings: Vec<String>,
}

/// atomic-ordering: every atomic op in the barrier-protocol files must
/// spell its Ordering; Relaxed needs an `// ordering:` justification
/// comment; every Release-or-stronger publication must have an
/// Acquire-or-stronger observer on the same field somewhere in the
/// audited files.
fn atomic_ordering(ctx: &SemanticCtx, out: &mut Vec<Finding>) {
    let mut sites: Vec<AtomicSite> = Vec::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        if !ATOMIC_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        let view = code_view(&ctx.lexed[fi]);
        for k in 0..view.len() {
            let t = view[k];
            if t.kind != TokKind::Ident || !ATOMIC_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            let dotted = k > 0 && view[k - 1].kind == TokKind::Punct && view[k - 1].text == ".";
            let called =
                matches!(view.get(k + 1), Some(n) if n.kind == TokKind::Punct && n.text == "(");
            if !dotted || !called || ctx.in_test(fi, t.line) {
                continue;
            }
            let field = k
                .checked_sub(2)
                .map(|p| view[p])
                .filter(|p| p.kind == TokKind::Ident)
                .map(|p| p.text.clone());
            // Collect Ordering idents inside the balanced argument list.
            let mut nest = 0i32;
            let mut orderings = Vec::new();
            let mut j = k + 1;
            while let Some(a) = view.get(j) {
                if a.kind == TokKind::Punct {
                    match a.text.as_str() {
                        "(" | "[" | "{" => nest += 1,
                        ")" | "]" | "}" => {
                            nest -= 1;
                            if nest == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                } else if a.kind == TokKind::Ident && ORDERINGS.contains(&a.text.as_str()) {
                    orderings.push(a.text.clone());
                }
                j += 1;
            }
            sites.push(AtomicSite {
                file: fi,
                line: t.line,
                field,
                method: t.text.clone(),
                orderings,
            });
        }
    }

    // Field-level pairing, across both audited files together.
    let release_like = |o: &str| o == "Release" || o == "AcqRel" || o == "SeqCst";
    let acquire_like = |o: &str| o == "Acquire" || o == "AcqRel" || o == "SeqCst";
    let mut acquire_fields: BTreeSet<&str> = BTreeSet::new();
    for s in &sites {
        let observes = s.method != "store";
        if observes && s.orderings.iter().any(|o| acquire_like(o)) {
            if let Some(f) = &s.field {
                acquire_fields.insert(f);
            }
        }
    }

    for s in &sites {
        let file = &ctx.files[s.file];
        let name = s
            .field
            .as_deref()
            .map(|f| format!("{f}.{}", s.method))
            .unwrap_or_else(|| format!("<expr>.{}", s.method));
        if s.orderings.is_empty() {
            push(
                out,
                "atomic-ordering",
                file,
                s.line - 1,
                format!("atomic `{name}` without an explicit Ordering argument"),
            );
            continue;
        }
        if s.orderings.iter().any(|o| o == "Relaxed") && !has_ordering_comment(file, s.line) {
            push(
                out,
                "atomic-ordering",
                file,
                s.line - 1,
                format!(
                    "`{name}` uses Relaxed without an `// ordering:` justification comment \
                     on the line or within two lines above"
                ),
            );
        }
        let publishes = s.method != "load";
        if publishes && s.orderings.iter().any(|o| release_like(o)) {
            if let Some(f) = &s.field {
                if !acquire_fields.contains(f.as_str()) {
                    push(
                        out,
                        "atomic-ordering",
                        file,
                        s.line - 1,
                        format!(
                            "Release publication on `{f}` has no Acquire-or-stronger load \
                             of the same field in the audited files"
                        ),
                    );
                }
            }
        }
    }
}

/// An `// ordering: ...` comment on the same line or within two lines
/// above justifies a Relaxed operation.
fn has_ordering_comment(file: &SourceFile, line: usize) -> bool {
    let i = line - 1;
    let lo = i.saturating_sub(2);
    file.lines[lo..=i.min(file.lines.len() - 1)]
        .iter()
        .any(|l| l.comment.contains("ordering:"))
}

/// probe-exhaustiveness: (a) a `match` that names two or more
/// `SimEvent::`/`EventKind::` variants is an event dispatch and must
/// cover the whole taxonomy — anything hidden behind `_` or a binding
/// arm is how new events get silently dropped; (b) every `SimEvent`
/// variant must be constructed at least once outside test code, so the
/// taxonomy can't drift ahead of the simulator that feeds it.
fn probe_exhaustiveness(ctx: &SemanticCtx, out: &mut Vec<Finding>) {
    for enum_name in ["SimEvent", "EventKind"] {
        let Some((decl_fi, decl)) = find_enum(ctx, enum_name) else {
            continue;
        };
        let universe: BTreeSet<&str> = decl.variants.iter().map(|(v, _)| v.as_str()).collect();
        if universe.len() < 2 {
            continue;
        }
        let mut constructed: BTreeSet<&str> = BTreeSet::new();
        for (fi, file) in ctx.files.iter().enumerate() {
            if !file.is_lib {
                continue;
            }
            let view = code_view(&ctx.lexed[fi]);
            check_event_matches(ctx, fi, &view, enum_name, &universe, out);
            if enum_name == "SimEvent" {
                collect_constructions(ctx, fi, &view, enum_name, &mut constructed);
            }
        }
        if enum_name == "SimEvent" {
            for (v, line) in &decl.variants {
                if !constructed.contains(v.as_str()) {
                    push(
                        out,
                        "probe-exhaustiveness",
                        &ctx.files[decl_fi],
                        line - 1,
                        format!(
                            "`{enum_name}::{v}` is never constructed outside #[cfg(test)]; \
                             emit it from the simulator or retire the variant"
                        ),
                    );
                }
            }
        }
    }
}

/// First `enum <name>` declared in library code.
fn find_enum<'a>(ctx: &'a SemanticCtx, name: &str) -> Option<(usize, &'a crate::index::EnumItem)> {
    for (fi, file) in ctx.index.files.iter().enumerate() {
        if !ctx.files[fi].is_lib {
            continue;
        }
        if let Some(e) = file.enums.iter().find(|e| e.name == name) {
            return Some((fi, e));
        }
    }
    None
}

/// Flags non-exhaustive `match`es over `enum_name` in one file.
fn check_event_matches(
    ctx: &SemanticCtx,
    fi: usize,
    view: &[&Tok],
    enum_name: &str,
    universe: &BTreeSet<&str>,
    out: &mut Vec<Finding>,
) {
    let mut k = 0;
    while k < view.len() {
        let t = view[k];
        if t.kind != TokKind::Ident || t.text != "match" || ctx.in_test(fi, t.line) {
            k += 1;
            continue;
        }
        // Find the match-body `{`: first brace outside any bracket nest
        // in the scrutinee.
        let mut nest = 0i32;
        let mut open = None;
        let mut j = k + 1;
        while let Some(a) = view.get(j) {
            if a.kind == TokKind::Punct {
                match a.text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "{" if nest == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if nest == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            k += 1;
            continue;
        };
        // Walk the balanced body, collecting variant mentions that sit
        // in *pattern position*: between an arm boundary and that arm's
        // `=>` at arm depth. Constructions inside arm bodies must not
        // count — a `match self.parent { .. }` whose arms *emit* events
        // is not a dispatch on the event enum.
        let mut depth = 1i32;
        let mut in_pattern = true;
        let mut mentioned: BTreeSet<String> = BTreeSet::new();
        let mut j = open + 1;
        while let Some(a) = view.get(j) {
            if a.kind == TokKind::Punct {
                match a.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        // A block-bodied arm just closed: back to patterns.
                        if depth == 1 && !in_pattern && a.text == "}" {
                            in_pattern = true;
                        }
                    }
                    "=>" if depth == 1 => in_pattern = false,
                    "," if depth == 1 && !in_pattern => in_pattern = true,
                    _ => {}
                }
            }
            if in_pattern
                && a.kind == TokKind::Ident
                && a.text == enum_name
                && matches!(view.get(j + 1), Some(p) if p.kind == TokKind::Punct && p.text == "::")
            {
                if let Some(v) = view.get(j + 2) {
                    if v.kind == TokKind::Ident && universe.contains(v.text.as_str()) {
                        mentioned.insert(v.text.clone());
                    }
                }
            }
            j += 1;
        }
        if mentioned.len() >= 2 && mentioned.len() < universe.len() {
            let missing: Vec<&str> = universe
                .iter()
                .copied()
                .filter(|v| !mentioned.contains(*v))
                .collect();
            push(
                out,
                "probe-exhaustiveness",
                &ctx.files[fi],
                t.line - 1,
                format!(
                    "match dispatches on {enum_name} but covers only {} of {} variants \
                     (missing: {}); handle every variant so new events cannot be \
                     silently dropped",
                    mentioned.len(),
                    universe.len(),
                    missing.join(", ")
                ),
            );
        }
        k = j + 1;
    }
}

/// Records which variants of `enum_name` are *constructed* (expression
/// position) in one file, outside test code. `Enum::V { ... }` followed
/// by `=>` or `=` is a pattern, and a brace group containing `..` is a
/// pattern; everything else counts as a construction.
fn collect_constructions<'a>(
    ctx: &SemanticCtx<'a>,
    fi: usize,
    view: &[&'a Tok],
    enum_name: &str,
    constructed: &mut BTreeSet<&'a str>,
) {
    for k in 0..view.len() {
        let t = view[k];
        if t.kind != TokKind::Ident || t.text != enum_name || ctx.in_test(fi, t.line) {
            continue;
        }
        if !matches!(view.get(k + 1), Some(p) if p.kind == TokKind::Punct && p.text == "::") {
            continue;
        }
        let Some(v) = view.get(k + 2) else { continue };
        if v.kind != TokKind::Ident {
            continue;
        }
        let Some(b) = view.get(k + 3) else { continue };
        if b.kind != TokKind::Punct || b.text != "{" {
            continue;
        }
        // Walk the brace group; `..` inside makes it a rest pattern.
        let mut nest = 0i32;
        let mut j = k + 3;
        let mut has_rest = false;
        while let Some(a) = view.get(j) {
            if a.kind == TokKind::Punct {
                match a.text.as_str() {
                    "{" | "(" | "[" => nest += 1,
                    "}" | ")" | "]" => {
                        nest -= 1;
                        if nest == 0 {
                            break;
                        }
                    }
                    "." if nest == 1
                        && matches!(view.get(j + 1), Some(n) if n.kind == TokKind::Punct && n.text == ".") =>
                    {
                        has_rest = true;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let after = view.get(j + 1);
        let is_pattern = has_rest
            || matches!(after, Some(a) if a.kind == TokKind::Punct && (a.text == "=>" || a.text == "=" || a.text == "|"));
        if !is_pattern {
            constructed.insert(v.text.as_str());
        }
    }
}

/// Crates whose metric family names must agree (the simulator-side
/// registry, the network node renderer, and the tests that pin both).
const METRIC_CRATES: &[&str] = &["adc-obs", "adc-net", "adc-metrics"];

/// metric-name-drift: every `adc_*` string literal in the metric crates
/// must (after stripping Prometheus histogram suffixes and label text)
/// match a family name defined in a `const`/`static` initializer.
/// Test code is deliberately *in* scope: the tests pinning rendered
/// output are exactly where drift hides.
fn metric_name_drift(ctx: &SemanticCtx, out: &mut Vec<Finding>) {
    let mut canonical: BTreeSet<String> = BTreeSet::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        if !METRIC_CRATES.contains(&file.krate.as_str()) {
            continue;
        }
        for c in &ctx.index.files[fi].consts {
            let (from, to) = c.value;
            for t in &ctx.lexed[fi][from.min(ctx.lexed[fi].len())..to.min(ctx.lexed[fi].len())] {
                if t.kind == TokKind::Str && t.text.starts_with("adc_") {
                    canonical.insert(t.text.clone());
                }
            }
        }
    }
    for (fi, file) in ctx.files.iter().enumerate() {
        if !METRIC_CRATES.contains(&file.krate.as_str()) {
            continue;
        }
        let const_ranges = &ctx.index.files[fi].consts;
        for (ti, t) in ctx.lexed[fi].iter().enumerate() {
            if t.kind != TokKind::Str || !t.text.starts_with("adc_") {
                continue;
            }
            if const_ranges
                .iter()
                .any(|c| ti >= c.value.0 && ti < c.value.1)
            {
                continue;
            }
            let family = normalize_family(&t.text);
            if family.len() < "adc_x".len() || canonical.contains(family) {
                continue;
            }
            push(
                out,
                "metric-name-drift",
                file,
                t.line - 1,
                format!(
                    "metric family `{family}` matches no const-defined family name; \
                     define it as a const next to the other families (or fix the typo)"
                ),
            );
        }
    }

    // Span segment names ride the same contract: the `SEG_*` consts
    // (adc-obs `segment_names`) are the canonical vocabulary shared by
    // the span recorder, the network tracer, and every test pinning a
    // latency table. Unlike metric families they carry no `adc_`
    // prefix, so exact-match scanning would drown in ordinary strings;
    // instead only *near-misses* are flagged — a snake_case literal
    // within edit distance 2 of a canonical segment name that isn't
    // one. That is precisely the typo shape ("forward_hops",
    // "orign_fetch") that silently empties a report column.
    let mut segments: BTreeSet<String> = BTreeSet::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        if !SEGMENT_CRATES.contains(&file.krate.as_str()) {
            continue;
        }
        for c in &ctx.index.files[fi].consts {
            if !c.name.starts_with("SEG_") {
                continue;
            }
            let (from, to) = c.value;
            for t in &ctx.lexed[fi][from.min(ctx.lexed[fi].len())..to.min(ctx.lexed[fi].len())] {
                if t.kind == TokKind::Str && !t.text.is_empty() {
                    segments.insert(t.text.clone());
                }
            }
        }
    }
    if segments.is_empty() {
        return;
    }
    for (fi, file) in ctx.files.iter().enumerate() {
        if !SEGMENT_CRATES.contains(&file.krate.as_str()) {
            continue;
        }
        let const_ranges = &ctx.index.files[fi].consts;
        for (ti, t) in ctx.lexed[fi].iter().enumerate() {
            if t.kind != TokKind::Str {
                continue;
            }
            if const_ranges
                .iter()
                .any(|c| ti >= c.value.0 && ti < c.value.1)
            {
                continue;
            }
            let head = snake_head(&t.text);
            if head.len() < 5 || segments.contains(head) {
                continue;
            }
            if let Some(canon) = segments.iter().find(|c| edit_distance_within(head, c, 2)) {
                push(
                    out,
                    "metric-name-drift",
                    file,
                    t.line - 1,
                    format!(
                        "segment name `{head}` is a near-miss of the canonical `{canon}`; \
                         use the `SEG_*` const (or fix the typo)"
                    ),
                );
            }
        }
    }
}

/// Crates that render or pin span segment names (the `SEG_*` consts
/// live in adc-obs; adc-net stamps them onto wire spans).
const SEGMENT_CRATES: &[&str] = &["adc-obs", "adc-net"];

/// The leading `[a-z_]` run of a literal: segment names embedded in
/// format strings ("forward_hop {v}") normalize to the bare name, and
/// literals that don't *start* snake_case (JSON fragments, label text)
/// normalize to something short enough to be skipped.
fn snake_head(lit: &str) -> &str {
    let cut = lit
        .find(|c: char| !(c.is_ascii_lowercase() || c == '_'))
        .unwrap_or(lit.len());
    &lit[..cut]
}

/// Whether the Levenshtein distance between `a` and `b` is at most
/// `max`. Plain DP — the inputs are segment-name sized.
fn edit_distance_within(a: &str, b: &str, max: usize) -> bool {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max {
        return false;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()] <= max
}

/// Truncates a literal to its family name: cut at the first label
/// brace, space, or escape, then strip Prometheus histogram suffixes.
fn normalize_family(lit: &str) -> &str {
    let cut = lit.find(['{', ' ', '\\', '\n', '"']).unwrap_or(lit.len());
    let head = &lit[..cut];
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = head.strip_suffix(suffix) {
            if stripped.starts_with("adc_") {
                return stripped;
            }
        }
    }
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn findings(krate: &str, rel: &str, text: &str) -> Vec<Finding> {
        let file = parse_source(rel, krate, true, text);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    fn lib(krate: &str, text: &str) -> Vec<Finding> {
        findings(krate, &format!("crates/{krate}/src/lib.rs"), text)
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn edit_distance_bound_is_exact() {
        assert!(edit_distance_within("forward_hops", "forward_hop", 2));
        assert!(edit_distance_within("orign_fetch", "origin_fetch", 2));
        assert!(edit_distance_within("same", "same", 0));
        assert!(!edit_distance_within("attributed_us", "origin_fetch", 2));
        assert!(!edit_distance_within("client_wait", "forward_hop", 2));
    }

    #[test]
    fn snake_head_strips_format_tails() {
        assert_eq!(snake_head("forward_hop {v}\n"), "forward_hop");
        assert_eq!(snake_head("client_wait"), "client_wait");
        assert_eq!(snake_head("{\"trace_id\":1}"), "");
        assert_eq!(snake_head("Total"), "");
    }

    #[test]
    fn determinism_catches_instant_now() {
        let f = lib("adc-sim", "fn t() { let s = Instant::now(); }");
        assert!(rules_of(&f).contains(&"determinism"));
    }

    #[test]
    fn determinism_ignores_out_of_scope_crates() {
        let f = lib("adc-metrics", "fn t() { let s = Instant::now(); }");
        assert!(!rules_of(&f).contains(&"determinism"));
    }

    #[test]
    fn determinism_ignores_tests() {
        let f = lib(
            "adc-sim",
            "#[cfg(test)]\nmod t {\n fn x() { Instant::now(); }\n}",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn default_hasher_catches_hashmap_not_identifier_suffix() {
        let f = lib("adc-core", "use std::collections::HashMap;");
        assert!(rules_of(&f).contains(&"default-hasher"));
        let ok = lib("adc-core", "struct MyHashMapLike;");
        assert!(!rules_of(&ok).contains(&"default-hasher"));
    }

    #[test]
    fn panic_catches_unwrap_and_expect_only() {
        let f = lib("adc-obs", "fn t() { x.unwrap(); y.expect(\"m\"); }");
        assert_eq!(
            rules_of(&f).iter().filter(|r| **r == "panic").count(),
            1,
            "one finding per line"
        );
        let ok = lib("adc-obs", "fn t() { x.unwrap_or(0); y.expect_err(); }");
        assert!(!rules_of(&ok).contains(&"panic"));
    }

    #[test]
    fn index_requires_comment_in_core() {
        let bad = lib("adc-core", "fn t(v: &[u32]) -> u32 { v[0] }");
        assert!(rules_of(&bad).contains(&"index-comment"));
        let ok = lib(
            "adc-core",
            "fn t(v: &[u32]) -> u32 {\n // v is non-empty: checked by caller\n v[0]\n}",
        );
        assert!(!rules_of(&ok).contains(&"index-comment"));
    }

    #[test]
    fn index_scope_is_core_plus_hot_path() {
        let hot = findings(
            "adc-sim",
            "crates/adc-sim/src/queue.rs",
            "fn t(v: &[u32]) -> u32 { v[0] }",
        );
        assert!(rules_of(&hot).contains(&"index-comment"));
        let cold = findings(
            "adc-sim",
            "crates/adc-sim/src/config.rs",
            "fn t(v: &[u32]) -> u32 { v[0] }",
        );
        assert!(!rules_of(&cold).contains(&"index-comment"));
    }

    #[test]
    fn float_eq_requires_float_literal() {
        let bad = lib("adc-sim", "fn t(x: f64) -> bool { x == 0.0 }");
        assert!(rules_of(&bad).contains(&"float-eq"));
        let int = lib("adc-sim", "fn t(x: u64) -> bool { x == 0 }");
        assert!(!rules_of(&int).contains(&"float-eq"));
        let le = lib("adc-sim", "fn t(x: f64) -> bool { x <= 1.5 }");
        assert!(!rules_of(&le).contains(&"float-eq"));
    }

    #[test]
    fn lossy_cast_hot_path_only_and_comment_exempts() {
        let bad = findings(
            "adc-sim",
            "crates/adc-sim/src/flows.rs",
            "fn t(x: u64) -> u32 { x as u32 }",
        );
        assert!(rules_of(&bad).contains(&"lossy-cast"));
        let ok = findings(
            "adc-sim",
            "crates/adc-sim/src/flows.rs",
            "// bounded by the window size\nfn t(x: u64) -> u32 { x as u32 }",
        );
        assert!(!rules_of(&ok).contains(&"lossy-cast"));
        let widen = findings(
            "adc-sim",
            "crates/adc-sim/src/flows.rs",
            "fn t(x: u32) -> u64 { x as u64 }",
        );
        assert!(!rules_of(&widen).contains(&"lossy-cast"));
    }

    #[test]
    fn obs_coverage_needs_probe_near_counter() {
        let bad = lib("adc-core", "fn t(&mut self) { self.stats.hits += 1; }");
        assert!(rules_of(&bad).contains(&"obs-coverage"));
        let ok = lib(
            "adc-core",
            "fn t(&mut self) {\n self.stats.hits += 1;\n if P::ENABLED {\n }\n}",
        );
        assert!(!rules_of(&ok).contains(&"obs-coverage"));
    }

    #[test]
    fn obs_coverage_extends_to_profiler_counters() {
        // Profiler-surface counters in adc-sim/adc-obs trigger the rule.
        let bad = lib("adc-sim", "fn t(&mut self) { self.prof.drain_ns += 1; }");
        assert!(rules_of(&bad).contains(&"obs-coverage"));
        let obs = lib("adc-obs", "fn t(&mut self) { self.attributed_us += 1; }");
        assert!(rules_of(&obs).contains(&"obs-coverage"));
        // An ordinary accumulator in the same crate is not the surface.
        let plain = lib("adc-sim", "fn t(&mut self) { self.windows += 1; }");
        assert!(!rules_of(&plain).contains(&"obs-coverage"));
        // Token boundaries: `live_total_us` is a different identifier.
        let other = lib("adc-sim", "fn t(&mut self) { self.live_total_us += 1; }");
        assert!(!rules_of(&other).contains(&"obs-coverage"));
        // A probe dispatch within the window covers the mutation.
        let ok = lib(
            "adc-sim",
            "fn t(&mut self, p: &mut P) {\n self.prof.drain_ns += 1;\n p.emit(ev);\n}",
        );
        assert!(!rules_of(&ok).contains(&"obs-coverage"));
        // Stats/registry triggers stay scoped to the agent crates.
        let sim_stats = lib("adc-sim", "fn t(&mut self) { self.stats.hits += 1; }");
        assert!(!rules_of(&sim_stats).contains(&"obs-coverage"));
    }

    #[test]
    fn api_docs_walks_over_attributes() {
        let bad = lib("adc-core", "pub fn undocumented() {}");
        assert!(rules_of(&bad).contains(&"api-docs"));
        let ok = lib(
            "adc-core",
            "/// Documented.\n#[derive(Debug, Clone)]\npub struct S;",
        );
        assert!(!rules_of(&ok).contains(&"api-docs"));
        let pub_use = lib("adc-core", "pub use crate::ids::ObjectId;");
        assert!(!rules_of(&pub_use).contains(&"api-docs"));
    }

    #[test]
    fn api_docs_walks_over_multiline_derives() {
        // rustfmt breaks long derive lists across lines; the walker must
        // traverse the whole attribute to find the doc comment above it.
        let ok = lib(
            "adc-core",
            "/// Documented.\n#[derive(\n    Debug, Clone, Copy, PartialEq, Eq,\n)]\npub struct S;",
        );
        assert!(!rules_of(&ok).contains(&"api-docs"));
        let bad = lib(
            "adc-core",
            "#[derive(\n    Debug, Clone,\n)]\npub struct S;",
        );
        assert!(rules_of(&bad).contains(&"api-docs"));
    }

    #[test]
    fn shard_safety_catches_unsynchronized_shared_state() {
        for bad in [
            "static mut COUNTER: u64 = 0;",
            "thread_local! { static S: u64 = 0; }",
            "struct S { c: std::cell::Cell<u64> }",
            "struct S { c: RefCell<Vec<u64>> }",
            "struct S { c: UnsafeCell<u64> }",
        ] {
            let f = lib("adc-core", bad);
            assert!(rules_of(&f).contains(&"shard-safety"), "should flag: {bad}");
        }
    }

    #[test]
    fn shard_safety_allows_synchronized_and_owned_state() {
        for ok in [
            "struct S { c: std::sync::Mutex<u64> }",
            "struct S { c: AtomicU64 }",
            "struct MyCellar { c: u64 }",
            "struct S { c: OnceCell<u64> }",
            "fn cellmate() {}",
        ] {
            let f = lib("adc-core", ok);
            assert!(
                !rules_of(&f).contains(&"shard-safety"),
                "should not flag: {ok}"
            );
        }
    }

    #[test]
    fn shard_safety_flags_per_window_spawns_on_the_hot_path_only() {
        for bad in [
            "fn run() { std::thread::spawn(|| work()); }",
            "fn run(s: &Scope) { s.spawn(|| work()); }",
            "fn run() { thread::scope(|s| drain(s)); }",
        ] {
            let f = findings("adc-sim", "crates/adc-sim/src/sharded.rs", bad);
            assert!(rules_of(&f).contains(&"shard-safety"), "should flag: {bad}");
        }
        // pool.rs is the one legitimate spawn site, and identifiers that
        // merely contain the token (the pool_spawns telemetry counter)
        // never match.
        let pool = findings(
            "adc-sim",
            "crates/adc-sim/src/pool.rs",
            "fn run(s: &Scope) { s.spawn(|| worker_loop()); }",
        );
        assert!(!rules_of(&pool).contains(&"shard-safety"));
        let counter = findings(
            "adc-sim",
            "crates/adc-sim/src/sharded.rs",
            "fn f(e: &mut Stats) { e.pool_spawns += 1; }",
        );
        assert!(!rules_of(&counter).contains(&"shard-safety"));
        // Spawn tokens are hot-path-only: adc-core has no executor and
        // may use threads however it likes (it doesn't).
        let core = lib("adc-core", "fn run() { std::thread::spawn(|| work()); }");
        assert!(!rules_of(&core).contains(&"shard-safety"));
    }

    #[test]
    fn shard_safety_scope_is_core_plus_hot_path() {
        let hot = findings(
            "adc-sim",
            "crates/adc-sim/src/sharded.rs",
            "static mut COUNTER: u64 = 0;",
        );
        assert!(rules_of(&hot).contains(&"shard-safety"));
        // Coordinator-only and post-processing code may use whatever the
        // borrow checker allows.
        let cold = findings(
            "adc-sim",
            "crates/adc-sim/src/config.rs",
            "struct S { c: RefCell<u64> }",
        );
        assert!(!rules_of(&cold).contains(&"shard-safety"));
        let obs = lib("adc-obs", "struct S { c: RefCell<u64> }");
        assert!(!rules_of(&obs).contains(&"shard-safety"));
    }

    #[test]
    fn no_println_catches_macros_but_not_eprintln() {
        let bad = lib("adc-net", "fn t() { println!(\"x\"); }");
        assert!(rules_of(&bad).contains(&"no-println"));
        let ok = lib("adc-net", "fn t() { eprintln!(\"x\"); }");
        assert!(!rules_of(&ok).contains(&"no-println"));
    }

    #[test]
    fn bin_files_are_out_of_scope() {
        let file = parse_source(
            "crates/adc-sim/src/bin/tool.rs",
            "adc-sim",
            false,
            "fn main() { x.unwrap(); println!(\"x\"); }",
        );
        let mut out = Vec::new();
        check_file(&file, &mut out);
        assert!(out.is_empty());
    }
}
