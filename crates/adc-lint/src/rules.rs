//! The rule set: each rule is a function over one scanned file that
//! pushes raw findings (suppression filtering happens in the engine).
//!
//! Scope philosophy (documented per-rule in `RULES`): the deterministic
//! simulation crates (`adc-core`, `adc-sim`, `adc-workload`,
//! `adc-baselines`) carry the strictest rules because golden-file
//! reproducibility depends on them. `adc-metrics` and `adc-obs` are
//! post-processing and get panic/float/println hygiene only. `adc-net`
//! is an experimental wall-clock TCP harness: it is exempt from the
//! panic and determinism rules by design (it talks to real sockets),
//! but still must not `println!` from library code. `adc-bench` and
//! binaries are CLI glue and are out of scope entirely.

use crate::scan::{SourceFile, SourceLine};
use crate::{Finding, Severity};

/// Static metadata for one rule.
pub struct RuleInfo {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
    pub scope: &'static str,
}

/// The full rule catalog. `unused-allow` is engine-level (it fires on
/// suppressions, not source lines) but is listed here so `--list-rules`
/// and the JSON rule count describe the whole contract.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism",
        severity: Severity::Error,
        summary: "wall-clock, OS randomness, or environment reads in deterministic simulation code",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines (library, non-test)",
    },
    RuleInfo {
        id: "default-hasher",
        severity: Severity::Error,
        summary: "HashMap/HashSet with the default (randomized) hasher in deterministic simulation code",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines (library, non-test)",
    },
    RuleInfo {
        id: "panic",
        severity: Severity::Error,
        summary: "bare .unwrap()/.expect() in library code",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines, adc-metrics, adc-obs (library, non-test)",
    },
    RuleInfo {
        id: "index-comment",
        severity: Severity::Warning,
        summary: "slice/array indexing without a nearby justification comment",
        scope: "adc-core plus adc-sim hot path (queue.rs, flows.rs, runner.rs)",
    },
    RuleInfo {
        id: "float-eq",
        severity: Severity::Error,
        summary: "== or != against a floating-point literal",
        scope: "adc-core, adc-sim, adc-workload, adc-baselines, adc-metrics, adc-obs (library, non-test)",
    },
    RuleInfo {
        id: "lossy-cast",
        severity: Severity::Warning,
        summary: "potentially lossy `as` cast without a nearby justification comment",
        scope: "adc-sim hot path only (queue.rs, flows.rs, runner.rs)",
    },
    RuleInfo {
        id: "obs-coverage",
        severity: Severity::Warning,
        summary: "ProxyStats, metrics-registry, or span/shard-profile counter mutation with no Probe emission nearby",
        scope: "adc-core, adc-baselines (stats/registry); adc-sim, adc-obs (profiler counters) — library, non-test",
    },
    RuleInfo {
        id: "api-docs",
        severity: Severity::Warning,
        summary: "public item without a doc comment",
        scope: "adc-core, adc-obs (library, non-test)",
    },
    RuleInfo {
        id: "shard-safety",
        severity: Severity::Error,
        summary: "static mut, thread locals, unsynchronized interior mutability, or (hot path only) per-window thread spawns in shard-parallel code",
        scope: "adc-core plus adc-sim hot path (code sharded workers may run concurrently)",
    },
    RuleInfo {
        id: "no-println",
        severity: Severity::Error,
        summary: "println!/print!/dbg! in library code (use probes or return values)",
        scope: "all adc library crates (library, non-test)",
    },
    RuleInfo {
        id: "unused-allow",
        severity: Severity::Error,
        summary: "adc-lint suppression that matched no finding, or names an unknown rule",
        scope: "everywhere suppressions appear",
    },
];

/// Looks up a rule's metadata by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    rule_info(id).is_some()
}

const DETERMINISTIC_CRATES: &[&str] = &["adc-core", "adc-sim", "adc-workload", "adc-baselines"];
const PANIC_CRATES: &[&str] = &[
    "adc-core",
    "adc-sim",
    "adc-workload",
    "adc-baselines",
    "adc-metrics",
    "adc-obs",
];
const PRINTLN_CRATES: &[&str] = &[
    "adc-core",
    "adc-sim",
    "adc-workload",
    "adc-baselines",
    "adc-metrics",
    "adc-obs",
    "adc-net",
];
const DOC_CRATES: &[&str] = &["adc-core", "adc-obs"];
const OBS_CRATES: &[&str] = &["adc-core", "adc-baselines"];
// The span recorder (adc-obs) and the shard-execution profiler
// (adc-sim) keep latency-attribution and wall-clock accumulators that
// the golden files never see. A new counter on that surface must
// either sit next to the probe dispatch that drives it or carry an
// explicit allow naming the reconciliation (sum check, occupancy
// total, ...) that keeps it honest. Field names, not receiver names,
// identify the surface so refactors of the holder struct keep the
// rule attached.
const PROFILE_CRATES: &[&str] = &["adc-sim", "adc-obs"];
const PROFILE_COUNTER_TOKENS: &[&str] = &[
    "drain_ns",
    "busy_ns",
    "wait_ns",
    "slices_dropped",
    "seg_total_us",
    "attributed_us",
    "total_us",
    "sum_check_failures",
    "unmatched_completions",
];
// Per-window hot-path files for the shard-safety rule. pool.rs is
// deliberately absent: it is the one legitimate thread-creation site
// (its workers persist for the whole run), while code listed here runs
// once per barrier window and must never create OS threads.
const HOT_PATH_FILES: &[&str] = &[
    "crates/adc-sim/src/queue.rs",
    "crates/adc-sim/src/flows.rs",
    "crates/adc-sim/src/runner.rs",
    "crates/adc-sim/src/sharded.rs",
];

/// Runs every rule against one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    determinism(file, out);
    default_hasher(file, out);
    panic_hygiene(file, out);
    index_comment(file, out);
    float_eq(file, out);
    lossy_cast(file, out);
    obs_coverage(file, out);
    api_docs(file, out);
    shard_safety(file, out);
    no_println(file, out);
}

fn in_scope(file: &SourceFile, crates: &[&str]) -> bool {
    file.is_lib && crates.contains(&file.krate.as_str())
}

fn push(
    out: &mut Vec<Finding>,
    rule: &'static str,
    file: &SourceFile,
    idx: usize,
    message: String,
) {
    let info = rule_info(rule).unwrap_or(&RULES[0]);
    out.push(Finding {
        rule,
        severity: info.severity,
        file: file.rel.clone(),
        line: idx + 1,
        snippet: file.lines[idx].raw.trim().to_string(),
        message,
    });
}

/// Token search with identifier boundaries on both sides (`::` is not a
/// boundary on the left, so fully-qualified paths still match).
fn contains_token(code: &str, tok: &str) -> bool {
    let mut start = 0;
    while let Some(p) = code[start..].find(tok) {
        let at = start + p;
        let before_ok = code[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = code[at + tok.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + tok.len();
    }
    false
}

fn determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, DETERMINISTIC_CRATES) {
        return;
    }
    const TOKENS: &[(&str, &str)] = &[
        ("SystemTime", "wall-clock read"),
        ("time::Instant", "wall-clock type"),
        ("Instant::now", "wall-clock read"),
        ("clock_gettime", "OS clock read"),
        ("thread_rng", "OS-seeded RNG"),
        ("from_entropy", "OS-seeded RNG"),
        ("env::var", "environment read"),
        ("env::var_os", "environment read"),
        ("env::args", "environment read"),
        ("RandomState", "randomized hasher state"),
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, what) in TOKENS {
            if contains_token(&line.code, tok) {
                push(
                    out,
                    "determinism",
                    file,
                    i,
                    format!("{what} (`{tok}`) in deterministic simulation code"),
                );
                break;
            }
        }
    }
}

fn default_hasher(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, DETERMINISTIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in ["HashMap", "HashSet"] {
            if contains_token(&line.code, tok) {
                push(
                    out,
                    "default-hasher",
                    file,
                    i,
                    format!(
                        "`{tok}` uses a randomized default hasher; use BTreeMap/BTreeSet or \
                         justify keyed-only access with an allow"
                    ),
                );
                break;
            }
        }
    }
}

fn panic_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, PANIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        // `debug_assert!` lines may mention unwrap in messages; the code
        // view already strips strings, so matches here are real calls.
        if line.code.contains(".unwrap()") {
            push(
                out,
                "panic",
                file,
                i,
                "bare `.unwrap()` in library code; handle the error or document the \
                 invariant and allow"
                    .to_string(),
            );
        } else if line.code.contains(".expect(") {
            push(
                out,
                "panic",
                file,
                i,
                "`.expect()` in library code; handle the error or document the invariant \
                 and allow"
                    .to_string(),
            );
        }
    }
}

fn is_hot_path(file: &SourceFile) -> bool {
    HOT_PATH_FILES.contains(&file.rel.as_str())
}

/// A comment on the same line or within the two preceding lines counts
/// as justification for indexing.
fn has_nearby_comment(lines: &[SourceLine], i: usize) -> bool {
    let lo = i.saturating_sub(2);
    lines[lo..=i].iter().any(|l| !l.comment.is_empty())
}

fn index_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    let core_scope = file.is_lib && file.krate == "adc-core";
    if !(core_scope || is_hot_path(file)) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || !has_index_expr(&line.code) {
            continue;
        }
        if has_nearby_comment(&file.lines, i) {
            continue;
        }
        push(
            out,
            "index-comment",
            file,
            i,
            "indexing can panic; add a comment stating why the index is in bounds \
             (or use get())"
                .to_string(),
        );
    }
}

/// Detects `expr[` — an identifier, `)`, or `]` immediately followed by
/// `[`. Attribute syntax (`#[`) never matches because `#` is not an
/// index-able token tail.
fn has_index_expr(code: &str) -> bool {
    let mut prev = ' ';
    for c in code.chars() {
        if c == '[' && (prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            return true;
        }
        prev = c;
    }
    false
}

fn float_eq(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, PANIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if float_comparison(&line.code) {
            push(
                out,
                "float-eq",
                file,
                i,
                "exact float comparison; use an epsilon, integer representation, or \
                 document the sentinel and allow"
                    .to_string(),
            );
        }
    }
}

/// True when `==` or `!=` has a float literal (digits `.` digits) in its
/// immediate operand text on either side.
fn float_comparison(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let mut k = 0;
    while k + 1 < chars.len() {
        let two: String = chars[k..k + 2].iter().collect();
        if two == "==" || two == "!=" {
            // Skip <=, >=, +=, etc. (first char must be '=' or '!').
            let prev = if k > 0 { chars[k - 1] } else { ' ' };
            if two == "==" && (prev == '<' || prev == '>' || prev == '!' || prev == '=') {
                k += 2;
                continue;
            }
            let left: String = chars[..k]
                .iter()
                .rev()
                .take_while(|&&c| !matches!(c, '(' | ',' | ';' | '&' | '|' | '{'))
                .collect();
            let right: String = chars[k + 2..]
                .iter()
                .take_while(|&&c| !matches!(c, ')' | ',' | ';' | '&' | '|' | '{'))
                .collect();
            if has_float_literal(&left) || has_float_literal(&right) {
                return true;
            }
            k += 2;
        } else {
            k += 1;
        }
    }
    false
}

fn has_float_literal(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    for k in 0..chars.len() {
        if chars[k] == '.'
            && k > 0
            && chars[k - 1].is_ascii_digit()
            && chars.get(k + 1).is_some_and(|c| c.is_ascii_digit())
        {
            // Reject version-ish tokens glued to identifiers (v1.2).
            let mut j = k - 1;
            while j > 0 && chars[j - 1].is_ascii_digit() {
                j -= 1;
            }
            let lead = if j > 0 { chars[j - 1] } else { ' ' };
            if !lead.is_alphanumeric() && lead != '_' {
                return true;
            }
        }
    }
    false
}

const LOSSY_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "f32", "f64", "usize",
];

fn lossy_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    if !is_hot_path(file) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(target) = lossy_cast_target(&line.code) else {
            continue;
        };
        if has_nearby_comment(&file.lines, i) {
            continue;
        }
        push(
            out,
            "lossy-cast",
            file,
            i,
            format!(
                "`as {target}` can silently truncate or round; add a comment stating the \
                 value range (or use try_into/from)"
            ),
        );
    }
}

fn lossy_cast_target(code: &str) -> Option<&'static str> {
    let mut start = 0;
    while let Some(p) = code[start..].find(" as ") {
        let at = start + p + 4;
        let rest = &code[at..];
        for t in LOSSY_TARGETS {
            if rest.starts_with(t)
                && rest[t.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_')
            {
                return Some(t);
            }
        }
        start = at;
    }
    None
}

fn obs_coverage(file: &SourceFile, out: &mut Vec<Finding>) {
    let stats_scope = in_scope(file, OBS_CRATES);
    let profile_scope = in_scope(file, PROFILE_CRATES);
    if !stats_scope && !profile_scope {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let stats_mutation =
            stats_scope && line.code.contains("stats.") && line.code.contains("+=");
        // Registry mutations in the hot path are held to the same
        // standard: counters the simulator cannot reconcile against a
        // SimEvent stream drift silently.
        let registry_mutation = stats_scope
            && (line.code.contains(".counter_add(") || line.code.contains(".histogram_record("));
        // Span/shard-profile accumulators drift the same way, so their
        // mutations need the same witness (or an explicit allow stating
        // what reconciles them instead).
        let profile_mutation = profile_scope
            && line.code.contains("+=")
            && PROFILE_COUNTER_TOKENS
                .iter()
                .any(|t| contains_token(&line.code, t));
        if !(stats_mutation || registry_mutation || profile_mutation) {
            continue;
        }
        let lo = i.saturating_sub(10);
        let hi = (i + 10).min(file.lines.len() - 1);
        let covered = file.lines[lo..=hi]
            .iter()
            .any(|l| l.code.contains(".emit(") || l.code.contains("P::ENABLED"));
        if !covered {
            let (what, fix) = if stats_mutation {
                (
                    "ProxyStats counter",
                    "emit a SimEvent so adc-obs reconciliation stays honest",
                )
            } else if registry_mutation {
                (
                    "metrics registry family",
                    "emit a SimEvent so adc-obs reconciliation stays honest",
                )
            } else {
                (
                    "span/shard-profile counter",
                    "keep it next to the probe dispatch that drives it, or add an \
                     explicit allow naming the check that reconciles it",
                )
            };
            push(
                out,
                "obs-coverage",
                file,
                i,
                format!("{what} mutated with no Probe emission within 10 lines; {fix}"),
            );
        }
    }
}

const PUB_ITEM_PREFIXES: &[&str] = &[
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub unsafe fn ",
    "pub async fn ",
];

fn api_docs(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, DOC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        if !PUB_ITEM_PREFIXES.iter().any(|p| code.starts_with(p)) {
            continue;
        }
        let j = walk_attributes_up(file, i);
        let documented = j > 0 && file.lines[j - 1].is_doc_comment();
        if !documented {
            push(
                out,
                "api-docs",
                file,
                i,
                "public item has no doc comment".to_string(),
            );
        }
    }
}

/// Walks upward from line `i` over the attributes decorating an item
/// (single-line `#[...]` and multi-line `#[derive(...)]` blocks),
/// returning the line index where a doc comment would sit.
fn walk_attributes_up(file: &SourceFile, mut j: usize) -> usize {
    loop {
        if j == 0 {
            return j;
        }
        let above = file.lines[j - 1].code.trim();
        if above.starts_with("#[") || above.starts_with("#![") {
            j -= 1;
            continue;
        }
        if above.ends_with(']') && !above.contains(';') {
            // Possibly the tail of a multi-line attribute: look for its
            // opener within a few lines.
            let mut k = j - 1;
            let mut opener = None;
            while k > 0 && (j - k) < 16 {
                let t = file.lines[k - 1].code.trim();
                if t.starts_with("#[") || t.starts_with("#![") {
                    opener = Some(k - 1);
                    break;
                }
                if t.is_empty() || t.contains(';') || t.contains('}') {
                    break;
                }
                k -= 1;
            }
            if let Some(open) = opener {
                j = open;
                continue;
            }
        }
        return j;
    }
}

/// Shared-state constructs the sharded executor's `Send` contract cannot
/// see: `static mut` and thread locals are process-global state that
/// aliases across worker shards, and unsynchronized interior mutability
/// (`Cell`/`RefCell`/`UnsafeCell`) silently defeats the `&mut`-per-shard
/// ownership discipline the barrier protocol relies on. `Mutex`/atomics
/// are fine — they synchronize — so they are not listed.
///
/// Hot-path files additionally may not create OS threads: the code there
/// runs once per barrier window, so a `spawn`/`thread::scope` is a
/// per-window spawn storm — exactly the overhead the persistent worker
/// pool removed. `adc-sim/src/pool.rs` is deliberately *not* a hot-path
/// file: it is the one legitimate spawn site (threads live for the whole
/// run there, amortized across every window).
fn shard_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    let core_scope = file.is_lib && file.krate == "adc-core";
    if !(core_scope || is_hot_path(file)) {
        return;
    }
    const TOKENS: &[(&str, &str)] = &[
        ("static mut", "mutable process-global state"),
        (
            "thread_local!",
            "per-OS-thread state (shard-count dependent)",
        ),
        ("RefCell", "unsynchronized interior mutability"),
        ("Cell", "unsynchronized interior mutability"),
        ("UnsafeCell", "unsynchronized interior mutability"),
    ];
    const SPAWN_TOKENS: &[(&str, &str)] = &[
        ("spawn", "per-window OS-thread creation"),
        ("thread::scope", "per-window scoped-thread creation"),
    ];
    let spawn_tokens: &[(&str, &str)] = if is_hot_path(file) { SPAWN_TOKENS } else { &[] };
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (tok, what) in TOKENS.iter().chain(spawn_tokens) {
            if contains_token(&line.code, tok) {
                let advice = if spawn_tokens.iter().any(|(t, _)| t == tok) {
                    "dispatch windows through the persistent worker pool \
                     (adc-sim's pool module) instead of creating threads per window"
                } else {
                    "keep state per-shard or synchronize it (Mutex/atomics)"
                };
                push(
                    out,
                    "shard-safety",
                    file,
                    i,
                    format!(
                        "{what} (`{tok}`) in code sharded workers may run concurrently; {advice}"
                    ),
                );
                break;
            }
        }
    }
}

fn no_println(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file, PRINTLN_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in ["println!", "print!", "dbg!"] {
            if contains_token(&line.code, tok) {
                push(
                    out,
                    "no-println",
                    file,
                    i,
                    format!(
                        "`{tok}` in library code; route output through probes or return values"
                    ),
                );
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn findings(krate: &str, rel: &str, text: &str) -> Vec<Finding> {
        let file = parse_source(rel, krate, true, text);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    fn lib(krate: &str, text: &str) -> Vec<Finding> {
        findings(krate, &format!("crates/{krate}/src/lib.rs"), text)
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn determinism_catches_instant_now() {
        let f = lib("adc-sim", "fn t() { let s = Instant::now(); }");
        assert!(rules_of(&f).contains(&"determinism"));
    }

    #[test]
    fn determinism_ignores_out_of_scope_crates() {
        let f = lib("adc-metrics", "fn t() { let s = Instant::now(); }");
        assert!(!rules_of(&f).contains(&"determinism"));
    }

    #[test]
    fn determinism_ignores_tests() {
        let f = lib(
            "adc-sim",
            "#[cfg(test)]\nmod t {\n fn x() { Instant::now(); }\n}",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn default_hasher_catches_hashmap_not_identifier_suffix() {
        let f = lib("adc-core", "use std::collections::HashMap;");
        assert!(rules_of(&f).contains(&"default-hasher"));
        let ok = lib("adc-core", "struct MyHashMapLike;");
        assert!(!rules_of(&ok).contains(&"default-hasher"));
    }

    #[test]
    fn panic_catches_unwrap_and_expect_only() {
        let f = lib("adc-obs", "fn t() { x.unwrap(); y.expect(\"m\"); }");
        assert_eq!(
            rules_of(&f).iter().filter(|r| **r == "panic").count(),
            1,
            "one finding per line"
        );
        let ok = lib("adc-obs", "fn t() { x.unwrap_or(0); y.expect_err(); }");
        assert!(!rules_of(&ok).contains(&"panic"));
    }

    #[test]
    fn index_requires_comment_in_core() {
        let bad = lib("adc-core", "fn t(v: &[u32]) -> u32 { v[0] }");
        assert!(rules_of(&bad).contains(&"index-comment"));
        let ok = lib(
            "adc-core",
            "fn t(v: &[u32]) -> u32 {\n // v is non-empty: checked by caller\n v[0]\n}",
        );
        assert!(!rules_of(&ok).contains(&"index-comment"));
    }

    #[test]
    fn index_scope_is_core_plus_hot_path() {
        let hot = findings(
            "adc-sim",
            "crates/adc-sim/src/queue.rs",
            "fn t(v: &[u32]) -> u32 { v[0] }",
        );
        assert!(rules_of(&hot).contains(&"index-comment"));
        let cold = findings(
            "adc-sim",
            "crates/adc-sim/src/config.rs",
            "fn t(v: &[u32]) -> u32 { v[0] }",
        );
        assert!(!rules_of(&cold).contains(&"index-comment"));
    }

    #[test]
    fn float_eq_requires_float_literal() {
        let bad = lib("adc-sim", "fn t(x: f64) -> bool { x == 0.0 }");
        assert!(rules_of(&bad).contains(&"float-eq"));
        let int = lib("adc-sim", "fn t(x: u64) -> bool { x == 0 }");
        assert!(!rules_of(&int).contains(&"float-eq"));
        let le = lib("adc-sim", "fn t(x: f64) -> bool { x <= 1.5 }");
        assert!(!rules_of(&le).contains(&"float-eq"));
    }

    #[test]
    fn lossy_cast_hot_path_only_and_comment_exempts() {
        let bad = findings(
            "adc-sim",
            "crates/adc-sim/src/flows.rs",
            "fn t(x: u64) -> u32 { x as u32 }",
        );
        assert!(rules_of(&bad).contains(&"lossy-cast"));
        let ok = findings(
            "adc-sim",
            "crates/adc-sim/src/flows.rs",
            "// bounded by the window size\nfn t(x: u64) -> u32 { x as u32 }",
        );
        assert!(!rules_of(&ok).contains(&"lossy-cast"));
        let widen = findings(
            "adc-sim",
            "crates/adc-sim/src/flows.rs",
            "fn t(x: u32) -> u64 { x as u64 }",
        );
        assert!(!rules_of(&widen).contains(&"lossy-cast"));
    }

    #[test]
    fn obs_coverage_needs_probe_near_counter() {
        let bad = lib("adc-core", "fn t(&mut self) { self.stats.hits += 1; }");
        assert!(rules_of(&bad).contains(&"obs-coverage"));
        let ok = lib(
            "adc-core",
            "fn t(&mut self) {\n self.stats.hits += 1;\n if P::ENABLED {\n }\n}",
        );
        assert!(!rules_of(&ok).contains(&"obs-coverage"));
    }

    #[test]
    fn obs_coverage_extends_to_profiler_counters() {
        // Profiler-surface counters in adc-sim/adc-obs trigger the rule.
        let bad = lib("adc-sim", "fn t(&mut self) { self.prof.drain_ns += 1; }");
        assert!(rules_of(&bad).contains(&"obs-coverage"));
        let obs = lib("adc-obs", "fn t(&mut self) { self.attributed_us += 1; }");
        assert!(rules_of(&obs).contains(&"obs-coverage"));
        // An ordinary accumulator in the same crate is not the surface.
        let plain = lib("adc-sim", "fn t(&mut self) { self.windows += 1; }");
        assert!(!rules_of(&plain).contains(&"obs-coverage"));
        // Token boundaries: `live_total_us` is a different identifier.
        let other = lib("adc-sim", "fn t(&mut self) { self.live_total_us += 1; }");
        assert!(!rules_of(&other).contains(&"obs-coverage"));
        // A probe dispatch within the window covers the mutation.
        let ok = lib(
            "adc-sim",
            "fn t(&mut self, p: &mut P) {\n self.prof.drain_ns += 1;\n p.emit(ev);\n}",
        );
        assert!(!rules_of(&ok).contains(&"obs-coverage"));
        // Stats/registry triggers stay scoped to the agent crates.
        let sim_stats = lib("adc-sim", "fn t(&mut self) { self.stats.hits += 1; }");
        assert!(!rules_of(&sim_stats).contains(&"obs-coverage"));
    }

    #[test]
    fn api_docs_walks_over_attributes() {
        let bad = lib("adc-core", "pub fn undocumented() {}");
        assert!(rules_of(&bad).contains(&"api-docs"));
        let ok = lib(
            "adc-core",
            "/// Documented.\n#[derive(Debug, Clone)]\npub struct S;",
        );
        assert!(!rules_of(&ok).contains(&"api-docs"));
        let pub_use = lib("adc-core", "pub use crate::ids::ObjectId;");
        assert!(!rules_of(&pub_use).contains(&"api-docs"));
    }

    #[test]
    fn api_docs_walks_over_multiline_derives() {
        // rustfmt breaks long derive lists across lines; the walker must
        // traverse the whole attribute to find the doc comment above it.
        let ok = lib(
            "adc-core",
            "/// Documented.\n#[derive(\n    Debug, Clone, Copy, PartialEq, Eq,\n)]\npub struct S;",
        );
        assert!(!rules_of(&ok).contains(&"api-docs"));
        let bad = lib(
            "adc-core",
            "#[derive(\n    Debug, Clone,\n)]\npub struct S;",
        );
        assert!(rules_of(&bad).contains(&"api-docs"));
    }

    #[test]
    fn shard_safety_catches_unsynchronized_shared_state() {
        for bad in [
            "static mut COUNTER: u64 = 0;",
            "thread_local! { static S: u64 = 0; }",
            "struct S { c: std::cell::Cell<u64> }",
            "struct S { c: RefCell<Vec<u64>> }",
            "struct S { c: UnsafeCell<u64> }",
        ] {
            let f = lib("adc-core", bad);
            assert!(rules_of(&f).contains(&"shard-safety"), "should flag: {bad}");
        }
    }

    #[test]
    fn shard_safety_allows_synchronized_and_owned_state() {
        for ok in [
            "struct S { c: std::sync::Mutex<u64> }",
            "struct S { c: AtomicU64 }",
            "struct MyCellar { c: u64 }",
            "struct S { c: OnceCell<u64> }",
            "fn cellmate() {}",
        ] {
            let f = lib("adc-core", ok);
            assert!(
                !rules_of(&f).contains(&"shard-safety"),
                "should not flag: {ok}"
            );
        }
    }

    #[test]
    fn shard_safety_flags_per_window_spawns_on_the_hot_path_only() {
        for bad in [
            "fn run() { std::thread::spawn(|| work()); }",
            "fn run(s: &Scope) { s.spawn(|| work()); }",
            "fn run() { thread::scope(|s| drain(s)); }",
        ] {
            let f = findings("adc-sim", "crates/adc-sim/src/sharded.rs", bad);
            assert!(rules_of(&f).contains(&"shard-safety"), "should flag: {bad}");
        }
        // pool.rs is the one legitimate spawn site, and identifiers that
        // merely contain the token (the pool_spawns telemetry counter)
        // never match.
        let pool = findings(
            "adc-sim",
            "crates/adc-sim/src/pool.rs",
            "fn run(s: &Scope) { s.spawn(|| worker_loop()); }",
        );
        assert!(!rules_of(&pool).contains(&"shard-safety"));
        let counter = findings(
            "adc-sim",
            "crates/adc-sim/src/sharded.rs",
            "fn f(e: &mut Stats) { e.pool_spawns += 1; }",
        );
        assert!(!rules_of(&counter).contains(&"shard-safety"));
        // Spawn tokens are hot-path-only: adc-core has no executor and
        // may use threads however it likes (it doesn't).
        let core = lib("adc-core", "fn run() { std::thread::spawn(|| work()); }");
        assert!(!rules_of(&core).contains(&"shard-safety"));
    }

    #[test]
    fn shard_safety_scope_is_core_plus_hot_path() {
        let hot = findings(
            "adc-sim",
            "crates/adc-sim/src/sharded.rs",
            "static mut COUNTER: u64 = 0;",
        );
        assert!(rules_of(&hot).contains(&"shard-safety"));
        // Coordinator-only and post-processing code may use whatever the
        // borrow checker allows.
        let cold = findings(
            "adc-sim",
            "crates/adc-sim/src/config.rs",
            "struct S { c: RefCell<u64> }",
        );
        assert!(!rules_of(&cold).contains(&"shard-safety"));
        let obs = lib("adc-obs", "struct S { c: RefCell<u64> }");
        assert!(!rules_of(&obs).contains(&"shard-safety"));
    }

    #[test]
    fn no_println_catches_macros_but_not_eprintln() {
        let bad = lib("adc-net", "fn t() { println!(\"x\"); }");
        assert!(rules_of(&bad).contains(&"no-println"));
        let ok = lib("adc-net", "fn t() { eprintln!(\"x\"); }");
        assert!(!rules_of(&ok).contains(&"no-println"));
    }

    #[test]
    fn bin_files_are_out_of_scope() {
        let file = parse_source(
            "crates/adc-sim/src/bin/tool.rs",
            "adc-sim",
            false,
            "fn main() { x.unwrap(); println!(\"x\"); }",
        );
        let mut out = Vec::new();
        check_file(&file, &mut out);
        assert!(out.is_empty());
    }
}
