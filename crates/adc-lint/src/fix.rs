//! `--fix`: mechanically removes stale `adc-lint: allow(...)` comments.
//!
//! Scope is deliberately the mechanical case only: a *well-formed*
//! directive naming a *known* rule that matched no finding. The fix
//! removes the named rule from the directive's rule list; when the
//! list empties, the whole directive goes, and when the directive was
//! the only content of a comment-only line, the line goes too.
//! Malformed directives (missing `)`) and unknown-rule directives are
//! left for a human — deleting text the parser could not understand is
//! not mechanical. Running `--fix` twice is the same as running it
//! once: after the first pass the stale directives are gone, so the
//! second pass sees nothing to do.

use crate::{Report, StaleAllow};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Applies every stale-allow removal the report found. Returns the
/// number of directives removed. Files are rewritten in place under
/// `root`.
pub fn apply_fixes(root: &Path, report: &Report) -> std::io::Result<usize> {
    // Group by file, then by line, so each file is rewritten once.
    let mut by_file: BTreeMap<&str, BTreeMap<usize, Vec<&str>>> = BTreeMap::new();
    for StaleAllow { file, line, rule } in &report.stale_allows {
        by_file
            .entry(file.as_str())
            .or_default()
            .entry(*line)
            .or_default()
            .push(rule.as_str());
    }
    let mut removed = 0;
    for (rel, lines) in by_file {
        let path = root.join(rel);
        let text = fs::read_to_string(&path)?;
        let had_trailing_newline = text.ends_with('\n');
        let mut out: Vec<String> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            match lines.get(&(i + 1)) {
                None => out.push(raw.to_string()),
                Some(stale) => match fix_line(raw, stale) {
                    Some(fixed) => {
                        removed += stale.len();
                        out.push(fixed);
                    }
                    None => {
                        removed += stale.len();
                    }
                },
            }
        }
        let mut text = out.join("\n");
        if had_trailing_newline {
            text.push('\n');
        }
        fs::write(&path, text)?;
    }
    Ok(removed)
}

/// Rewrites one line, dropping `stale` rules from its allow directives.
/// Returns `None` when the whole line should be deleted (it carried
/// nothing but the stale directive).
fn fix_line(raw: &str, stale: &[&str]) -> Option<String> {
    let mut line = raw.to_string();
    for marker in ["adc-lint: allow-file(", "adc-lint: allow("] {
        while let Some(p) = line.find(marker) {
            let list_from = p + marker.len();
            let Some(close_off) = line[list_from..].find(')') else {
                // Malformed: not ours to touch.
                break;
            };
            let close = list_from + close_off;
            let kept: Vec<&str> = line[list_from..close]
                .split(',')
                .map(str::trim)
                .filter(|r| !r.is_empty() && !stale.contains(r))
                .collect();
            if kept.is_empty() {
                // Remove the whole directive, plus a preceding
                // separator (`; ` or `, `) when the directive shared a
                // comment with justification text.
                let mut cut_from = p;
                let before = line[..p].trim_end();
                if before.ends_with(';') || before.ends_with(',') {
                    cut_from = before.len() - 1;
                }
                line.replace_range(cut_from..=close, "");
            } else {
                let rebuilt = format!("{}{}{}", marker, kept.join(", "), ")");
                line.replace_range(p..=close, &rebuilt);
                break; // nothing left to drop in this directive
            }
        }
    }
    // Clean up a comment that the removal emptied.
    let trimmed_end = line.trim_end().to_string();
    let tail = trimmed_end.trim_start();
    if matches!(tail, "//" | "///" | "//!") {
        // Comment-only line whose content was exactly the directive.
        return None;
    }
    if let Some(idx) = trimmed_end.rfind("//") {
        let comment_body = trimmed_end[idx..].trim_start_matches('/').trim();
        if comment_body.is_empty() && has_code_before_comment(&trimmed_end) {
            // Trailing empty comment after code: drop it.
            return Some(trimmed_end[..idx].trim_end().to_string());
        }
    }
    if trimmed_end.trim().is_empty() && !raw.trim().is_empty() {
        return None;
    }
    Some(trimmed_end)
}

/// Whether anything other than whitespace precedes the line's `//`.
fn has_code_before_comment(line: &str) -> bool {
    match line.find("//") {
        Some(idx) => !line[..idx].trim().is_empty(),
        None => !line.trim().is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_one_rule_from_a_list() {
        let fixed = fix_line(
            "x.unwrap(); // adc-lint: allow(panic, determinism)",
            &["determinism"],
        );
        assert_eq!(
            fixed.as_deref(),
            Some("x.unwrap(); // adc-lint: allow(panic)")
        );
    }

    #[test]
    fn drops_whole_directive_and_empty_comment() {
        let fixed = fix_line("x.compute(); // adc-lint: allow(panic)", &["panic"]);
        assert_eq!(fixed.as_deref(), Some("x.compute();"));
    }

    #[test]
    fn keeps_justification_text_in_shared_comment() {
        let fixed = fix_line(
            "x.compute(); // invariant: y is set; adc-lint: allow(panic)",
            &["panic"],
        );
        assert_eq!(
            fixed.as_deref(),
            Some("x.compute(); // invariant: y is set")
        );
    }

    #[test]
    fn deletes_comment_only_directive_line() {
        let fixed = fix_line("    // adc-lint: allow(panic)", &["panic"]);
        assert_eq!(fixed, None);
    }

    #[test]
    fn leaves_malformed_directives_alone() {
        let line = "x(); // adc-lint: allow(panic";
        assert_eq!(fix_line(line, &["panic"]).as_deref(), Some(line));
    }

    #[test]
    fn file_scope_directives_are_fixed_too() {
        let fixed = fix_line("// adc-lint: allow-file(float-eq)", &["float-eq"]);
        assert_eq!(fixed, None);
    }
}
