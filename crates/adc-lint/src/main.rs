//! CLI for the workspace lint. `cargo run -p adc-lint -- --check` is
//! the CI gate; see DESIGN.md "Static analysis & invariants".

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
adc-lint — workspace determinism & invariant static analysis

USAGE:
    adc-lint [OPTIONS]

OPTIONS:
    --root <DIR>    Workspace root (default: auto-detected from cwd)
    --check         Exit 1 when any finding survives suppression
    --json          Emit the machine-readable report instead of text
    --fix           Remove stale `adc-lint: allow(...)` directives
                    (the mechanical unused-allow case), then re-lint
    --list-rules    Print the rule catalog and exit
    -h, --help      Show this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut check = false;
    let mut json = false;
    let mut fix = false;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--check" => check = true,
            "--json" => json = true,
            "--fix" => fix = true,
            "--list-rules" => list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        println!("{:<15} {:<8} summary", "rule", "severity");
        for r in adc_lint::rules::RULES {
            println!("{:<15} {:<8} {}", r.id, r.severity.label(), r.summary);
            println!("{:<24} scope: {}", "", r.scope);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(find_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "error: could not find a workspace root (a directory containing `crates/`); \
                 pass --root"
            );
            return ExitCode::from(2);
        }
    };

    let mut report = match adc_lint::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if fix {
        match adc_lint::fix::apply_fixes(&root, &report) {
            Ok(0) => {}
            Ok(n) => {
                eprintln!("adc-lint --fix: removed {n} stale allow directive(s)");
                // Re-lint so the printed report (and --check) reflect
                // the tree as fixed.
                report = match adc_lint::run(&root) {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!("error: failed to re-scan {}: {e}", root.display());
                        return ExitCode::from(2);
                    }
                };
            }
            Err(e) => {
                eprintln!("error: --fix failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if json {
        print!("{}", adc_lint::render_json(&report));
    } else {
        print!("{}", adc_lint::render_human(&report));
    }

    if check && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first ancestor holding a
/// `crates/` directory next to a `Cargo.toml` (the workspace root, both
/// when invoked from the root and from inside a crate).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
