//! A hand-rolled Rust lexer producing a flat token stream with byte
//! spans and line numbers.
//!
//! This is the token layer the symbol index and call graph build on. It
//! understands exactly as much Rust as the workspace's rules need:
//! nested block comments, normal/byte/raw string literals, char
//! literals vs lifetimes (`'a'` vs `'a`), numeric literals, identifiers
//! and keywords (not distinguished here), and punctuation — with `::`,
//! `=>` and `->` kept as single tokens because the indexer keys on
//! them. It is *not* a conformant Rust lexer: float forms like `1e9`
//! lex as one `Num` token only by accident of the alphanumeric run, and
//! exotic literals (C strings, raw identifiers) are out of scope. Every
//! token carries its exact byte span in the input, so the differential
//! tests can check the classification against the v1 line scanner.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including a lone `_`).
    Ident,
    /// Lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// String literal of any flavor (`"…"`, `b"…"`, `r#"…"#`); text is
    /// the literal *content*, without quotes, prefix, or hashes.
    Str,
    /// Char literal (`'x'`, `'\n'`); text is the content between quotes.
    Char,
    /// Numeric literal (integer or float, with suffix if glued on).
    Num,
    /// Punctuation; multi-char for `::`, `=>` and `->`, else one char.
    Punct,
    /// Line or block comment, text includes the markers.
    Comment,
}

/// One token: classification, source text (see [`TokKind`] for which
/// part), 1-based start line, and byte span in the input.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub start: usize,
    pub end: usize,
}

/// Lexes `text` into tokens. Whitespace is dropped; everything else is
/// covered by exactly one token. Never panics: unterminated literals
/// and comments extend to end of input.
pub fn lex(text: &str) -> Vec<Tok> {
    Lexer {
        text,
        chars: text.char_indices().peekable(),
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    text: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while let Some(&(at, c)) = self.chars.peek() {
            if c == '\n' {
                self.line += 1;
                self.chars.next();
            } else if c.is_whitespace() {
                self.chars.next();
            } else if c == '/' && self.peek2() == Some('/') {
                self.line_comment(at);
            } else if c == '/' && self.peek2() == Some('*') {
                self.block_comment(at);
            } else if c == '"' {
                self.chars.next();
                self.string(at, at + 1, 0);
            } else if (c == 'r' || c == 'b') && self.raw_or_byte_string(at, c) {
                // consumed inside the helper
            } else if c == '\'' {
                self.quote(at);
            } else if c.is_ascii_digit() {
                self.number(at);
            } else if c.is_alphanumeric() || c == '_' {
                self.ident(at);
            } else {
                self.punct(at, c);
            }
        }
        self.toks
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next().map(|(_, c)| c)
    }

    fn push(&mut self, kind: TokKind, line: usize, start: usize, end: usize, text: String) {
        self.toks.push(Tok {
            kind,
            text,
            line,
            start,
            end,
        });
    }

    /// Byte offset just past the last consumed char.
    fn pos(&mut self) -> usize {
        self.chars
            .peek()
            .map(|&(i, _)| i)
            .unwrap_or(self.text.len())
    }

    fn line_comment(&mut self, start: usize) {
        let line = self.line;
        while let Some(&(_, c)) = self.chars.peek() {
            if c == '\n' {
                break;
            }
            self.chars.next();
        }
        let end = self.pos();
        self.push(
            TokKind::Comment,
            line,
            start,
            end,
            self.text[start..end].to_string(),
        );
    }

    fn block_comment(&mut self, start: usize) {
        let line = self.line;
        self.chars.next(); // '/'
        self.chars.next(); // '*'
        let mut depth = 1u32;
        while let Some((_, c)) = self.chars.next() {
            if c == '\n' {
                self.line += 1;
            } else if c == '*' && self.chars.peek().map(|&(_, c)| c) == Some('/') {
                self.chars.next();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if c == '/' && self.chars.peek().map(|&(_, c)| c) == Some('*') {
                self.chars.next();
                depth += 1;
            }
        }
        let end = self.pos();
        self.push(
            TokKind::Comment,
            line,
            start,
            end,
            self.text[start..end].to_string(),
        );
    }

    /// Normal or byte string body: opening quote already consumed;
    /// `content_from` is the byte offset of the first content char.
    fn string(&mut self, start: usize, content_from: usize, _hashes: u32) {
        let line = self.line;
        let mut content_to = content_from;
        while let Some((i, c)) = self.chars.next() {
            if c == '\n' {
                self.line += 1;
            }
            if c == '\\' {
                if let Some((_, e)) = self.chars.next() {
                    if e == '\n' {
                        self.line += 1;
                    }
                }
            } else if c == '"' {
                content_to = i;
                break;
            }
            content_to = self.pos();
        }
        let end = self.pos();
        self.push(
            TokKind::Str,
            line,
            start,
            end,
            self.text[content_from..content_to].to_string(),
        );
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`. Returns false (and
    /// consumes nothing) when the lookahead is not a string, so the
    /// caller falls through to identifier lexing.
    fn raw_or_byte_string(&mut self, start: usize, first: char) -> bool {
        let rest = &self.text[start..];
        let prefix_len = if rest.starts_with("br") || rest.starts_with("rb") {
            2
        } else {
            1
        };
        let raw = first == 'r' || rest[1..].starts_with('r');
        let after = &rest[prefix_len..];
        let hashes = after.chars().take_while(|&c| c == '#').count();
        if !after[hashes..].starts_with('"') || (!raw && hashes > 0) {
            self.ident(start);
            return true;
        }
        if !raw {
            // b"…": plain string body with escapes.
            for _ in 0..=prefix_len {
                self.chars.next(); // prefix chars + opening quote
            }
            self.string(start, start + prefix_len + 1, 0);
            return true;
        }
        // Raw string: no escapes, closed by `"` + hashes `#`s.
        let line = self.line;
        for _ in 0..(prefix_len + hashes + 1) {
            if let Some((_, c)) = self.chars.next() {
                if c == '\n' {
                    self.line += 1;
                }
            }
        }
        let content_from = start + prefix_len + hashes + 1;
        let closer: String = std::iter::once('"')
            .chain("#".repeat(hashes).chars())
            .collect();
        let mut content_to = self.text.len();
        loop {
            let here = self.pos();
            if here >= self.text.len() {
                break;
            }
            if self.text[here..].starts_with(&closer) {
                content_to = here;
                for _ in 0..closer.len() {
                    self.chars.next();
                }
                break;
            }
            if let Some((_, c)) = self.chars.next() {
                if c == '\n' {
                    self.line += 1;
                }
            }
        }
        let end = self.pos();
        self.push(
            TokKind::Str,
            line,
            start,
            end,
            self.text[content_from..content_to.max(content_from)].to_string(),
        );
        true
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, start: usize) {
        let line = self.line;
        self.chars.next(); // the quote
        let Some(&(_, c1)) = self.chars.peek() else {
            self.push(TokKind::Punct, line, start, start + 1, "'".to_string());
            return;
        };
        if c1 == '\\' {
            // Escaped char literal: consume to the closing quote.
            self.chars.next();
            self.chars.next(); // escaped char
            for (_, c) in self.chars.by_ref() {
                if c == '\'' {
                    break;
                }
            }
            let end = self.pos();
            let content = self.text[start + 1..end]
                .strip_suffix('\'')
                .unwrap_or(&self.text[start + 1..end]);
            self.push(TokKind::Char, line, start, end, content.to_string());
            return;
        }
        // Unescaped: `'x'` is a char, `'ident` (no closing quote) a
        // lifetime.
        let mut it = self.chars.clone();
        it.next();
        if it.next().map(|(_, c)| c) == Some('\'') && c1 != '\'' {
            self.chars.next(); // content
            self.chars.next(); // closing quote
            let end = self.pos();
            self.push(
                TokKind::Char,
                line,
                start,
                end,
                self.text[start + 1..end - 1].to_string(),
            );
            return;
        }
        // Lifetime: consume the identifier run.
        let name_from = self.pos();
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.chars.next();
            } else {
                break;
            }
        }
        let end = self.pos();
        self.push(
            TokKind::Lifetime,
            line,
            start,
            end,
            self.text[name_from..end].to_string(),
        );
    }

    fn number(&mut self, start: usize) {
        let line = self.line;
        self.alnum_run();
        // Float continuation: `.` followed by a digit.
        if self.chars.peek().map(|&(_, c)| c) == Some('.')
            && self.peek2().is_some_and(|c| c.is_ascii_digit())
        {
            self.chars.next();
            self.alnum_run();
        }
        let end = self.pos();
        self.push(
            TokKind::Num,
            line,
            start,
            end,
            self.text[start..end].to_string(),
        );
    }

    fn alnum_run(&mut self) {
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.chars.next();
            } else {
                break;
            }
        }
    }

    fn ident(&mut self, start: usize) {
        let line = self.line;
        self.alnum_run();
        let end = self.pos();
        self.push(
            TokKind::Ident,
            line,
            start,
            end,
            self.text[start..end].to_string(),
        );
    }

    fn punct(&mut self, start: usize, c: char) {
        let line = self.line;
        self.chars.next();
        let two = matches!(
            (c, self.chars.peek().map(|&(_, c)| c)),
            (':', Some(':')) | ('=', Some('>')) | ('-', Some('>'))
        );
        if two {
            self.chars.next();
        }
        let end = self.pos();
        self.push(
            TokKind::Punct,
            line,
            start,
            end,
            self.text[start..end].to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokKind, String)> {
        lex(text).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let t = kinds("foo::bar(x) => y");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "bar".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Punct, "=>".into()),
                (TokKind::Ident, "y".into()),
            ]
        );
    }

    #[test]
    fn strings_carry_content_only() {
        let text = "let s = \"adc_hops\"; let b = b\"adc_up\"; let r = r##\"raw \"q\" body\"##;";
        let t = kinds(text);
        let strs: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, vec!["adc_hops", "adc_up", "raw \"q\" body"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let t = kinds("fn f<'a>(c: char) { let x = 'x'; let n = '\\n'; let q = '\\''; }");
        let lifetimes: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a"]);
        let chars = t.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("a /* one /* two */ still */ b");
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].0, TokKind::Comment);
        assert_eq!(t[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let t = kinds("0..10 1.5 0xff 1_000u64");
        let nums: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "0xff", "1_000u64"]);
    }

    #[test]
    fn spans_are_ascending_and_in_bounds() {
        let text = "fn f() { let s = \"x\"; /* c */ 'a': }";
        let toks = lex(text);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlap at {t:?}");
            assert!(t.end <= text.len());
            assert!(t.start < t.end || t.text.is_empty());
            prev_end = t.end;
        }
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for bad in [
            "\"never closed",
            "/* never closed",
            "r#\"never",
            "'",
            "b\"x",
        ] {
            let _ = lex(bad);
        }
    }

    #[test]
    fn line_numbers_advance_across_multiline_tokens() {
        let toks = lex("a\n/* x\n y */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }
}
