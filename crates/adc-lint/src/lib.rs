//! Workspace-local static analysis for the ADC reproduction.
//!
//! `adc-lint` is a zero-dependency, tidy-style line/token analyzer that
//! enforces the invariants the simulator's reproducibility contract
//! rests on: no wall-clock or OS-randomness reads in deterministic
//! code, no default-hasher maps in sim paths, panic and float hygiene
//! in library crates, probe coverage for stats counters, and doc
//! comments on public API. See DESIGN.md "Static analysis & invariants"
//! for the rule catalog and suppression policy.
//!
//! Suppressions are spelled in comments:
//!
//! - same line or the line above a finding: `adc-lint: allow(rule-id)`
//!   (a comma-separated list is accepted);
//! - anywhere in a file: `adc-lint: allow-file(rule-id)` to suppress a
//!   rule for the whole file.
//!
//! Every suppression must match at least one finding, and must name a
//! known rule — otherwise the engine reports `unused-allow`. That keeps
//! stale escapes from accumulating as the code under them changes.

pub mod callgraph;
pub mod fix;
pub mod index;
pub mod lex;
pub mod rules;
pub mod scan;

use scan::SourceFile;
use std::path::Path;
use std::time::Instant;

/// Finding severity. Both levels fail `--check`; the distinction tells
/// a reader whether the rule guards correctness (error) or hygiene
/// (warning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    /// Lowercase label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed, for display.
    pub snippet: String,
    pub message: String,
}

/// Per-rule execution statistics for one run.
#[derive(Debug)]
pub struct RuleStat {
    pub id: &'static str,
    /// Findings that survived suppression.
    pub findings: usize,
    /// Suppression directives naming this rule (used or not).
    pub suppressions: usize,
    /// Wall time spent running the rule.
    pub nanos: u128,
}

/// A stale (unused, well-formed, known-rule) suppression directive —
/// the mechanical input `--fix` consumes.
#[derive(Debug, Clone)]
pub struct StaleAllow {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the directive appears on.
    pub line: usize,
    /// The rule the stale directive names.
    pub rule: String,
}

/// The result of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Number of rules in the catalog.
    pub rules: usize,
    /// Line-scoped suppressions seen across the tree.
    pub suppressions_line: usize,
    /// File-scoped suppressions seen across the tree.
    pub suppressions_file: usize,
    /// One entry per catalog rule, in catalog order.
    pub rule_stats: Vec<RuleStat>,
    /// Unused well-formed suppressions, for `--fix`.
    pub stale_allows: Vec<StaleAllow>,
    /// Wall time spent lexing and indexing (shared by semantic rules).
    pub engine_nanos: u128,
    /// Wall time for the whole run (scan excluded, rules included).
    pub total_nanos: u128,
}

impl Report {
    /// Total suppressions of both scopes.
    pub fn suppressions_total(&self) -> usize {
        self.suppressions_line + self.suppressions_file
    }

    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn counts(&self) -> (usize, usize) {
        let errors = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        (errors, self.findings.len() - errors)
    }
}

/// A parsed suppression directive awaiting a matching finding.
struct Suppression {
    file: String,
    /// 1-based line the directive appears on (for unused-allow reports).
    decl_line: usize,
    /// 1-based line findings must sit on to match; `None` = whole file.
    target_line: Option<usize>,
    rule: String,
    used: bool,
}

/// Scans the workspace under `root` and runs every rule.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let files = scan::scan_workspace(root)?;
    // The lint does not lint itself: its sources quote suppression
    // syntax in docs and fixtures, and no rule scopes it anyway.
    let files: Vec<SourceFile> = files
        .into_iter()
        .filter(|f| f.krate != "adc-lint")
        .collect();
    Ok(run_files(&files))
}

/// Runs every rule over an already-scanned file set. Public so the
/// fixture tests can lint in-memory and on-disk snippets directly.
pub fn run_files(files: &[SourceFile]) -> Report {
    let t_total = Instant::now();
    let mut suppressions = Vec::new();
    let mut parse_errors = Vec::new();
    for file in files {
        collect_suppressions(file, &mut suppressions, &mut parse_errors);
    }

    // Token/symbol layer, built once and shared by the semantic rules.
    let t_engine = Instant::now();
    let lexed = rules::SemanticCtx::lex_files(files);
    let index = rules::SemanticCtx::build_index(files, &lexed);
    let engine_nanos = t_engine.elapsed().as_nanos();
    let ctx = rules::SemanticCtx {
        files,
        lexed: &lexed,
        index: &index,
    };

    let mut raw = Vec::new();
    let mut rule_nanos: Vec<(&'static str, u128)> = Vec::new();
    for (id, rule) in rules::LINE_RULES {
        let t = Instant::now();
        for file in files {
            rule(file, &mut raw);
        }
        rule_nanos.push((id, t.elapsed().as_nanos()));
    }
    for (id, rule) in rules::SEMANTIC_RULES {
        let t = Instant::now();
        rule(&ctx, &mut raw);
        rule_nanos.push((id, t.elapsed().as_nanos()));
    }

    let t_resolve = Instant::now();
    let mut findings = Vec::new();
    'finding: for f in raw {
        // Line-scoped matches take priority, then file-scoped.
        for s in suppressions.iter_mut() {
            if s.rule == f.rule
                && s.file == f.file
                && (s.target_line == Some(f.line) || s.target_line.is_none())
            {
                s.used = true;
                continue 'finding;
            }
        }
        findings.push(f);
    }

    let suppressions_line = suppressions
        .iter()
        .filter(|s| s.target_line.is_some())
        .count();
    let suppressions_file = suppressions.len() - suppressions_line;

    let mut stale_allows = Vec::new();
    for s in &suppressions {
        if !s.used {
            findings.push(Finding {
                rule: "unused-allow",
                severity: Severity::Error,
                file: s.file.clone(),
                line: s.decl_line,
                snippet: format!("adc-lint: allow({})", s.rule),
                message: format!("suppression for `{}` matched no finding; remove it", s.rule),
            });
            stale_allows.push(StaleAllow {
                file: s.file.clone(),
                line: s.decl_line,
                rule: s.rule.clone(),
            });
        }
    }
    findings.extend(parse_errors);
    rule_nanos.push(("unused-allow", t_resolve.elapsed().as_nanos()));

    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });

    let rule_stats = rules::RULES
        .iter()
        .map(|info| RuleStat {
            id: info.id,
            findings: findings.iter().filter(|f| f.rule == info.id).count(),
            suppressions: suppressions.iter().filter(|s| s.rule == info.id).count(),
            nanos: rule_nanos
                .iter()
                .find(|(id, _)| *id == info.id)
                .map(|(_, n)| *n)
                .unwrap_or(0),
        })
        .collect();

    Report {
        findings,
        files_scanned: files.len(),
        rules: rules::RULES.len(),
        suppressions_line,
        suppressions_file,
        rule_stats,
        stale_allows,
        engine_nanos,
        total_nanos: t_total.elapsed().as_nanos(),
    }
}

/// Parses `adc-lint: allow(...)` / `allow-file(...)` directives out of
/// one file's comments.
fn collect_suppressions(file: &SourceFile, out: &mut Vec<Suppression>, errors: &mut Vec<Finding>) {
    for (i, line) in file.lines.iter().enumerate() {
        for (marker, file_scope) in [("adc-lint: allow-file(", true), ("adc-lint: allow(", false)] {
            let Some(p) = line.comment.find(marker) else {
                continue;
            };
            let rest = &line.comment[p + marker.len()..];
            let Some(close) = rest.find(')') else {
                errors.push(Finding {
                    rule: "unused-allow",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: i + 1,
                    snippet: line.raw.trim().to_string(),
                    message: "malformed suppression: missing `)`".to_string(),
                });
                continue;
            };
            let target_line = if file_scope {
                None
            } else if line.has_code() {
                Some(i + 1)
            } else {
                // Own-line comment: applies to the next line that has
                // code (stacked comments are skipped).
                Some(next_code_line(file, i))
            };
            for rule in rest[..close].split(',') {
                let rule = rule.trim();
                if rule.is_empty() {
                    continue;
                }
                if !rules::is_known_rule(rule) {
                    errors.push(Finding {
                        rule: "unused-allow",
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line: i + 1,
                        snippet: line.raw.trim().to_string(),
                        message: format!("suppression names unknown rule `{rule}`"),
                    });
                    continue;
                }
                out.push(Suppression {
                    file: file.rel.clone(),
                    decl_line: i + 1,
                    target_line,
                    rule: rule.to_string(),
                    used: false,
                });
            }
        }
    }
}

/// 1-based number of the first line after `i` that carries code (falls
/// back to the line after `i` when none exists, which then reports the
/// suppression as unused).
fn next_code_line(file: &SourceFile, i: usize) -> usize {
    file.lines
        .iter()
        .enumerate()
        .skip(i + 1)
        .find(|(_, l)| l.has_code())
        .map(|(j, _)| j + 1)
        .unwrap_or(i + 2)
}

/// Human-readable, diff-style report.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}:{}\n   |  {}\n\n",
            f.severity.label(),
            f.rule,
            f.message,
            f.file,
            f.line,
            f.snippet
        ));
    }
    let (errors, warnings) = report.counts();
    if report.is_clean() {
        out.push_str(&format!(
            "adc-lint: clean — 0 findings in {} files; {} suppressions ({} line, {} file)\n",
            report.files_scanned,
            report.suppressions_total(),
            report.suppressions_line,
            report.suppressions_file
        ));
    } else {
        out.push_str(&format!(
            "adc-lint: {} findings ({} errors, {} warnings) in {} files; {} suppressions\n",
            report.findings.len(),
            errors,
            warnings,
            report.files_scanned,
            report.suppressions_total()
        ));
    }
    out.push_str(&format!(
        "{} rules in {:.1} ms\n",
        report.rules,
        report.total_nanos as f64 / 1e6
    ));
    out
}

/// Machine-readable report (stable key order, one finding per array
/// element).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"adc-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"rules\": {},\n", report.rules));
    out.push_str(&format!(
        "  \"suppressions\": {{ \"total\": {}, \"line\": {}, \"file\": {} }},\n",
        report.suppressions_total(),
        report.suppressions_line,
        report.suppressions_file
    ));
    out.push_str(&format!(
        "  \"elapsed_ms\": {:.3},\n  \"engine_ms\": {:.3},\n",
        report.total_nanos as f64 / 1e6,
        report.engine_nanos as f64 / 1e6
    ));
    out.push_str("  \"by_rule\": {");
    for (i, s) in report.rule_stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {}: {{ \"findings\": {}, \"suppressions\": {}, \"wall_ms\": {:.3} }}",
            json_str(s.id),
            s.findings,
            s.suppressions,
            s.nanos as f64 / 1e6
        ));
    }
    out.push_str("\n  },\n");
    let (errors, warnings) = report.counts();
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {} }}",
            json_str(f.rule),
            json_str(f.severity.label()),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan::parse_source;

    fn report_for(text: &str) -> Report {
        let file = parse_source("crates/adc-core/src/x.rs", "adc-core", true, text);
        run_files(std::slice::from_ref(&file))
    }

    #[test]
    fn same_line_allow_suppresses() {
        let r = report_for(
            "fn t() { x.unwrap(); } // invariant: x was just set; adc-lint: allow(panic)",
        );
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions_line, 1);
    }

    #[test]
    fn own_line_allow_applies_to_next_code_line() {
        let r = report_for(
            "// invariant: x was just set\n// adc-lint: allow(panic)\nfn t() { x.unwrap(); }",
        );
        assert!(r.is_clean(), "findings: {:?}", r.findings);
    }

    #[test]
    fn file_scope_allow_covers_all_lines() {
        let r = report_for(
            "// adc-lint: allow-file(panic)\nfn a() { x.unwrap(); }\nfn b() { y.unwrap(); }",
        );
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions_file, 1);
    }

    #[test]
    fn unused_allow_is_reported() {
        let r = report_for("// adc-lint: allow(panic)\nfn t() {}\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "unused-allow");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let r = report_for("fn t() { x.unwrap(); } // adc-lint: allow(panics)");
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "unused-allow" && f.message.contains("unknown rule")));
    }

    #[test]
    fn allow_list_suppresses_multiple_rules() {
        let r = report_for(
            "use std::collections::HashMap; // keyed-only; adc-lint: allow(default-hasher)\n\
             fn t(m: &HashMap<u32, u32>) { m.get(&1).unwrap(); } // adc-lint: allow(default-hasher, panic)",
        );
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions_line, 3);
    }

    #[test]
    fn json_output_is_well_formed_for_empty_and_nonempty() {
        let clean = report_for("fn t() {}\n");
        let j = render_json(&clean);
        assert!(j.contains("\"findings\": []"));
        let dirty = report_for("fn t() { x.unwrap(); }");
        let j = render_json(&dirty);
        assert!(j.contains("\"rule\": \"panic\""));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn human_output_mentions_rule_and_location() {
        let dirty = report_for("fn t() { x.unwrap(); }");
        let h = render_human(&dirty);
        assert!(h.contains("error[panic]"));
        assert!(h.contains("crates/adc-core/src/x.rs:1"));
    }
}
