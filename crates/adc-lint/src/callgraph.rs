//! Intra-workspace call graph, built by name resolution over the
//! symbol index.
//!
//! Resolution is deliberately an *over*-approximation (documented in
//! DESIGN.md §8): a call site `x.m(...)` resolves to every indexed
//! impl method named `m`, a qualified call `Type::m(...)` to methods
//! named `m` whose impl self-type is `Type` (falling back to all `m`
//! when the qualifier is unknown), and a bare call `f(...)` to every
//! free fn named `f` — with `use` imports consulted to narrow the
//! crate when they can. Macro invocations (`name!(...)`) are not
//! calls. Over-approximation is the safe direction for a reachability
//! lint: it can demand a justification that is not strictly needed,
//! but it cannot miss a real call chain spelled as a plain call.

use crate::index::{FnItem, WorkspaceIndex};
use crate::lex::{Tok, TokKind};
use std::collections::BTreeMap;

/// A resolved call edge, kept with the site that produced it so
/// reachability reports can show the chain.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Callee: index into [`CallGraph::fns`].
    pub callee: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: usize,
}

/// The workspace call graph over every indexed fn.
#[derive(Debug)]
pub struct CallGraph<'a> {
    /// Flattened fn list; `fn_file[i]` is the scanned-file index of
    /// `fns[i]`.
    pub fns: Vec<&'a FnItem>,
    pub edges: Vec<Vec<CallEdge>>,
}

/// Rust keywords that look like call heads but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "mut", "ref", "move", "in", "as",
    "where", "impl", "dyn", "box", "unsafe", "else", "break", "continue", "await", "Some", "Ok",
    "Err", "None", "self", "Self", "super", "crate", "pub", "use", "mod", "const", "static",
    "enum", "struct", "trait", "type",
];

impl<'a> CallGraph<'a> {
    /// Builds the graph. `lexed[i]` is the token stream of scanned file
    /// `i`; `crate_of(i)` names its crate; `resolvable` limits callee
    /// candidates to the crates a reachability rule cares about.
    pub fn build(
        index: &'a WorkspaceIndex,
        lexed: &[Vec<Tok>],
        crate_of: &dyn Fn(usize) -> String,
        resolvable: &[&str],
    ) -> Self {
        let mut fns: Vec<&FnItem> = Vec::new();
        for file in &index.files {
            for f in &file.fns {
                fns.push(f);
            }
        }
        // Candidate tables: name -> fn indexes, split by "has an impl
        // self-type" so method calls don't resolve to free fns.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !resolvable.contains(&crate_of(f.file).as_str()) {
                continue;
            }
            if f.qual.is_some() {
                methods.entry(&f.name).or_default().push(i);
            } else {
                free_fns.entry(&f.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<CallEdge>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            let Some((from, to)) = f.body else {
                continue;
            };
            let toks = &lexed[f.file];
            let imports = &index.files[f.file].uses;
            let body = &toks[from.min(toks.len())..to.min(toks.len())];
            // Work over the comment-filtered view of the body.
            let view: Vec<&Tok> = body.iter().filter(|t| t.kind != TokKind::Comment).collect();
            for k in 0..view.len() {
                let t = view[k];
                if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                    continue;
                }
                // A call head is an ident directly followed by `(`;
                // `name!(...)` is a macro, `name::(`... is not a call.
                if !matches!(view.get(k + 1), Some(n) if n.kind == TokKind::Punct && n.text == "(")
                {
                    continue;
                }
                let name = t.text.as_str();
                let prev = k.checked_sub(1).map(|p| view[p]);
                let callees: Vec<usize> = match prev {
                    Some(p) if p.kind == TokKind::Punct && p.text == "." => {
                        // Method call: every impl method with this name.
                        methods.get(name).cloned().unwrap_or_default()
                    }
                    Some(p) if p.kind == TokKind::Punct && p.text == "::" => {
                        // Qualified call: restrict to the qualifier's
                        // impl when we know it, else fall back to every
                        // method (and free fns, for module paths).
                        let qual = k
                            .checked_sub(2)
                            .map(|q| view[q])
                            .filter(|q| q.kind == TokKind::Ident)
                            .map(|q| q.text.clone());
                        resolve_qualified(
                            name,
                            qual.as_deref(),
                            &methods,
                            &free_fns,
                            imports,
                            &fns,
                            crate_of,
                        )
                    }
                    _ => {
                        // Bare call: free fns with this name, preferring
                        // the caller's own crate when it defines one.
                        let all = free_fns.get(name).cloned().unwrap_or_default();
                        let own_crate = crate_of(f.file);
                        let local: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&c| crate_of(fns[c].file) == own_crate)
                            .collect();
                        if local.is_empty() {
                            all
                        } else {
                            local
                        }
                    }
                };
                for callee in callees {
                    edges[i].push(CallEdge {
                        callee,
                        line: t.line,
                    });
                }
            }
        }
        CallGraph { fns, edges }
    }

    /// BFS from `roots`, returning for every reached fn the (caller,
    /// call line) parent pointer that discovered it, so rules can print
    /// the call chain. Roots map to `None`.
    pub fn reach(&self, roots: &[usize]) -> BTreeMap<usize, Option<(usize, usize)>> {
        let mut seen: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if seen.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for e in &self.edges[i] {
                if let std::collections::btree_map::Entry::Vacant(v) = seen.entry(e.callee) {
                    v.insert(Some((i, e.line)));
                    queue.push_back(e.callee);
                }
            }
        }
        seen
    }
}

/// Resolves `Qual::name(...)`. When the qualifier matches an indexed
/// impl self-type, only that type's methods are candidates; otherwise
/// every method plus free fns of that name are (module-path calls like
/// `pool::run_window(...)` land here). Imports narrow the candidate
/// set to the qualifier's crate when the qualifier was imported from
/// an `adc_*` crate.
fn resolve_qualified(
    name: &str,
    qual: Option<&str>,
    methods: &BTreeMap<&str, Vec<usize>>,
    free_fns: &BTreeMap<&str, Vec<usize>>,
    imports: &[crate::index::UseImport],
    fns: &[&FnItem],
    crate_of: &dyn Fn(usize) -> String,
) -> Vec<usize> {
    let mut all: Vec<usize> = methods.get(name).cloned().unwrap_or_default();
    all.extend(free_fns.get(name).cloned().unwrap_or_default());
    let Some(qual) = qual else {
        return all;
    };
    // Self::m(...) — the impl context is unknown here; keep everything.
    if qual == "Self" || qual == "self" {
        return all;
    }
    let typed: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&c| fns[c].qual.as_deref() == Some(qual))
        .collect();
    let mut candidates = if methods
        .values()
        .chain(free_fns.values())
        .flatten()
        .any(|&c| fns[c].qual.as_deref() == Some(qual))
    {
        // The qualifier names a known impl type: its methods only.
        typed
    } else {
        all
    };
    // `use adc_x::...::Qual;` narrows candidates to that crate.
    if let Some(import) = imports.iter().find(|u| u.name == qual) {
        let root = import.root_segment.replace('_', "-");
        if root.starts_with("adc-") {
            let narrowed: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| crate_of(fns[c].file) == root)
                .collect();
            if !narrowed.is_empty() {
                candidates = narrowed;
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::WorkspaceIndex;
    use crate::lex::lex;

    fn graph(texts: &[&str]) -> (Vec<Vec<Tok>>, Vec<String>) {
        let lexed: Vec<Vec<Tok>> = texts.iter().map(|t| lex(t)).collect();
        (lexed, vec!["adc-sim".to_string(); texts.len()])
    }

    fn names_reached(texts: &[&str], root_name: &str) -> Vec<String> {
        let (lexed, crates) = graph(texts);
        let index = WorkspaceIndex::build(&lexed, &|_, _| false);
        let crate_of = |i: usize| crates[i].clone();
        let g = CallGraph::build(&index, &lexed, &crate_of, &["adc-sim"]);
        let roots: Vec<usize> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == root_name)
            .map(|(i, _)| i)
            .collect();
        let mut reached: Vec<String> = g
            .reach(&roots)
            .keys()
            .map(|&i| g.fns[i].name.clone())
            .collect();
        reached.sort();
        reached
    }

    #[test]
    fn plain_calls_chain_transitively() {
        let reached = names_reached(
            &["fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn unrelated() {}"],
            "a",
        );
        assert_eq!(reached, vec!["a", "b", "c"]);
    }

    #[test]
    fn method_calls_resolve_across_files() {
        let reached = names_reached(
            &[
                "fn a(w: &W) { w.work(); }",
                "struct W; impl W { fn work(&self) { helper(); } }\nfn helper() {}",
            ],
            "a",
        );
        assert_eq!(reached, vec!["a", "helper", "work"]);
    }

    #[test]
    fn qualified_calls_restrict_to_the_named_type() {
        let reached = names_reached(
            &[
                "fn a() { W::work(); }",
                "struct W; impl W { fn work() {} }\nstruct V; impl V { fn work() { sink(); } }\nfn sink() {}",
            ],
            "a",
        );
        assert_eq!(reached, vec!["a", "work"]);
    }

    #[test]
    fn macros_are_not_calls() {
        let reached = names_reached(
            &["fn a() { work!(); }\nfn work() { sink(); }\nfn sink() {}"],
            "a",
        );
        assert_eq!(reached, vec!["a"]);
    }

    #[test]
    fn reach_reports_parent_chain() {
        let (lexed, crates) = graph(&["fn a() { b(); }\nfn b() { c(); }\nfn c() {}"]);
        let index = WorkspaceIndex::build(&lexed, &|_, _| false);
        let crate_of = |i: usize| crates[i].clone();
        let g = CallGraph::build(&index, &lexed, &crate_of, &["adc-sim"]);
        let a = g.fns.iter().position(|f| f.name == "a").unwrap();
        let c = g.fns.iter().position(|f| f.name == "c").unwrap();
        let seen = g.reach(&[a]);
        let (parent_of_c, _) = seen[&c].expect("c is not a root");
        assert_eq!(g.fns[parent_of_c].name, "b");
    }
}
