//! Source discovery and the per-line source model the rules run over.
//!
//! The scanner is deliberately *not* a Rust parser: it is a line/token
//! model (in the spirit of rust-lang's `tidy`) that strips string-literal
//! and comment *contents* out of the "code" view of each line, tracks
//! which lines belong to `#[cfg(test)]` items, and records every comment
//! so rules can check for suppressions and justification comments. That
//! is enough precision for the workspace's rule set while keeping the
//! crate dependency-free and fast.

use std::fs;
use std::path::{Path, PathBuf};

/// One physical source line, split into views the rules consume.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// The line exactly as it appears in the file.
    pub raw: String,
    /// The line with comments removed and string/char literal contents
    /// blanked (quotes remain, contents do not), so token searches never
    /// match inside literals or comments.
    pub code: String,
    /// The comment text on this line, including its leading `//`, `///`,
    /// `//!` or `/*` marker; empty when the line has no comment.
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

impl SourceLine {
    /// Whether the line carries any non-comment code.
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }

    /// Whether the line's comment is a doc comment (`///` or `//!`).
    pub fn is_doc_comment(&self) -> bool {
        self.comment.starts_with("///") || self.comment.starts_with("//!")
    }
}

/// One scanned `.rs` file plus the workspace context rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The owning crate (`adc-core`, `adc-sim`, ...), from the
    /// `crates/<name>/src/...` path shape.
    pub krate: String,
    /// Whether this is library code: under `src/`, not under `src/bin/`
    /// and not a `main.rs`.
    pub is_lib: bool,
    pub lines: Vec<SourceLine>,
}

/// Walks `root/crates/*/src` and `root/crates/*/tests` and returns
/// every `.rs` file, sorted by relative path so output and JSON are
/// stable across platforms. Integration-test files scan as non-library
/// (`is_lib == false`), so only the rules that opt into test code (the
/// metric-name agreement check, suppression handling) see them.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let krate = match crate_dir.file_name().and_then(|n| n.to_str()) {
            Some(name) => name.to_string(),
            None => continue,
        };
        let mut rs_files = Vec::new();
        for sub in ["src", "tests"] {
            let dir = crate_dir.join(sub);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut rs_files)?;
            }
        }
        rs_files.sort();
        for path in rs_files {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let is_lib =
                rel.contains("/src/") && !rel.contains("/src/bin/") && !rel.ends_with("/main.rs");
            files.push(parse_source(&rel, &krate, is_lib, &text));
        }
    }
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses raw source text into the per-line model. Public so tests and
/// fixtures can run rules over in-memory snippets.
pub fn parse_source(rel: &str, krate: &str, is_lib: bool, text: &str) -> SourceFile {
    let mut lines = split_code_and_comments(text);
    mark_test_regions(&mut lines);
    SourceFile {
        rel: rel.to_string(),
        krate: krate.to_string(),
        is_lib,
        lines,
    }
}

/// Lexer state carried across lines.
enum Mode {
    Normal,
    /// Inside a `/* */` comment, with nesting depth.
    Block(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string literal closed by `"` plus this many `#`s.
    RawStr(u32),
}

/// Splits every line into its code and comment views.
fn split_code_and_comments(text: &str) -> Vec<SourceLine> {
    let mut out = Vec::new();
    let mut mode = Mode::Normal;
    for raw in text.lines() {
        let bytes: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            match mode {
                Mode::Block(depth) => {
                    comment.push(c);
                    if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        comment.push('/');
                        i += 1;
                        mode = if depth > 1 {
                            Mode::Block(depth - 1)
                        } else {
                            Mode::Normal
                        };
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        comment.push('*');
                        i += 1;
                        mode = Mode::Block(depth + 1);
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 1; // skip the escaped character
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Normal;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let mut n = 0;
                        while n < hashes && bytes.get(i + 1 + n as usize) == Some(&'#') {
                            n += 1;
                        }
                        if n == hashes {
                            i += hashes as usize;
                            code.push('"');
                            mode = Mode::Normal;
                        }
                    }
                }
                Mode::Normal => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        comment.push_str(&raw[char_offset(raw, i)..]);
                        break;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        comment.push_str("/*");
                        i += 1;
                        mode = Mode::Block(1);
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                    } else if c == 'r'
                        && !prev_is_ident(&code)
                        && matches!(bytes.get(i + 1), Some('"') | Some('#'))
                    {
                        // Possible raw string: r"..." or r#"..."#.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            code.push('"');
                            i = j;
                            mode = Mode::RawStr(hashes);
                        } else {
                            code.push(c);
                        }
                    } else if c == '\'' {
                        // Distinguish char literals from lifetimes.
                        if bytes.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            code.push_str("' '");
                            i = j;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 2;
                        } else {
                            code.push(c); // lifetime marker
                        }
                    } else {
                        code.push(c);
                    }
                }
            }
            i += 1;
        }
        out.push(SourceLine {
            raw: raw.to_string(),
            code,
            comment,
            in_test: false,
        });
    }
    out
}

/// Byte offset of the `i`-th char of `s` (lines are short; O(n) is fine).
fn char_offset(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map(|(o, _)| o).unwrap_or(s.len())
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Marks every line belonging to a `#[cfg(test)]` item by brace matching
/// from the item that follows the attribute.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") || lines[i].code.contains("#[cfg(all(test") {
            // Find the end of the annotated item: the matching close of
            // the first `{` at or after the attribute (or the first `;`
            // before any `{`, for `#[cfg(test)] use ...;`).
            let mut depth: i32 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 && j > i => {}
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                if !opened && lines[j].code.contains(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        parse_source("crates/x/src/lib.rs", "x", true, text)
    }

    #[test]
    fn strings_and_comments_are_stripped_from_code() {
        let f = parse("let x = \"HashMap in a string\"; // HashMap in a comment\nlet y = 1;");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(f.lines[0].has_code());
    }

    #[test]
    fn raw_strings_are_stripped() {
        let f = parse("let x = r#\"unwrap() . \"#; let z = 2;");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let z = 2;"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let f = parse("let q = '\"'; let h = \"HashMap\";");
        assert!(!f.lines[0].code.contains("HashMap"));
    }

    #[test]
    fn lifetimes_are_kept_as_code() {
        let f = parse("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = parse("/* HashMap\n still HashMap */ let x = 1;");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("let x = 1;"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = parse("/// docs with unwrap()\npub fn g() {}");
        assert!(!f.lines[0].has_code());
        assert!(f.lines[0].is_doc_comment());
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text =
            "pub fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\npub fn c() {}";
        let f = parse(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn nested_braces_inside_test_mod_are_tracked() {
        let text = "#[cfg(test)]\nmod t {\n fn a() { if x { y(); } }\n}\nfn real() {}";
        let f = parse(text);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[4].in_test);
    }
}
