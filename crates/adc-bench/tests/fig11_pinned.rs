//! Pins the fixed 5-proxy end-to-end scenario's hit and hop numbers to a
//! golden file, at a micro scale that still exercises both systems.
//!
//! The golden sweep CSV (`determinism.rs`) covers the ADC parameter
//! sweep; this file covers the Figure 11 comparison path — ADC and the
//! CARP baseline over the shared Polygraph trace — so an event-loop or
//! agent rewrite that shifts any count by even one is caught. Hit counts,
//! hop sums and message totals here were produced by the pre-calendar-
//! queue binary-heap event loop; the rewrite reproduced them exactly.
//!
//! Regenerate after an *intentional* behavior change:
//!
//! ```text
//! ADC_BLESS_GOLDEN=1 cargo test -p adc-bench --test fig11_pinned
//! ```

use adc_bench::experiment::Experiment;
use adc_bench::scale::Scale;
use adc_sim::SimReport;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fig11_micro.txt")
}

/// Renders every deterministic count the comparison produces. Floats are
/// printed with `{:?}` (shortest round-trip form), so any bit-level
/// change shows up.
fn render(name: &str, report: &SimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[{name}]");
    let _ = writeln!(out, "completed = {}", report.completed);
    let _ = writeln!(out, "hits = {}", report.hits);
    for (phase, stats) in ["fill", "request1", "request2"].iter().zip(&report.phases) {
        let _ = writeln!(out, "{phase} = {}/{}", stats.hits, stats.requests);
    }
    let _ = writeln!(out, "mean_hops = {:?}", report.mean_hops());
    let _ = writeln!(out, "messages_delivered = {}", report.messages_delivered);
    let _ = writeln!(out, "events_processed = {}", report.events_processed);
    let _ = writeln!(out, "peak_flows = {}", report.peak_flows);
    let _ = writeln!(out, "client_orphans = {}", report.client_orphans);
    let _ = writeln!(
        out,
        "orphan_origin_requests = {}",
        report.orphan_origin_requests
    );
    let _ = writeln!(out, "bytes_from_origin = {}", report.bytes_from_origin);
    let _ = writeln!(out, "bytes_from_caches = {}", report.bytes_from_caches);
    let cluster = report.cluster_stats();
    let _ = writeln!(
        out,
        "origin_fetches = {}",
        cluster.origin_loops + cluster.origin_max_hops + cluster.origin_this_miss
    );
    let _ = writeln!(out, "per_proxy_requests = {:?}", {
        let mut v: Vec<u64> = report
            .per_proxy
            .iter()
            .map(|p| p.requests_received)
            .collect();
        v.sort_unstable();
        v
    });
    out
}

#[test]
fn fig11_micro_counts_match_golden() {
    let experiment = Experiment::at_scale(Scale::Custom(0.002));
    let trace = experiment.trace();
    let adc = experiment.run_adc_on(&trace);
    let carp = experiment.run_carp_on(&trace);
    let rendered = format!("{}\n{}", render("adc", &adc), render("carp", &carp));

    let path = golden_path();
    if std::env::var_os("ADC_BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "golden file missing; bless it with \
         ADC_BLESS_GOLDEN=1 cargo test -p adc-bench --test fig11_pinned",
    );
    assert_eq!(
        rendered, golden,
        "fig11 micro counts diverged from the golden file; if the change \
         is intentional, re-bless with ADC_BLESS_GOLDEN=1"
    );
}

/// The same scenario on the sharded executor must reproduce the *same*
/// golden file: sequential injection on N shards is defined to be
/// byte-identical to the single-threaded runner, so this test is never
/// re-blessed separately — any divergence is a sharding bug.
#[test]
fn fig11_micro_counts_match_golden_on_the_sharded_executor() {
    if std::env::var_os("ADC_BLESS_GOLDEN").is_some() {
        return; // blessing is the single-threaded test's job
    }
    let experiment = Experiment::at_scale(Scale::Custom(0.002));
    let trace = experiment.trace();
    let adc = experiment.run_adc_sharded_on(&trace, 4);
    let carp = experiment.run_carp_sharded_on(&trace, 4);
    let rendered = format!("{}\n{}", render("adc", &adc), render("carp", &carp));
    let golden = std::fs::read_to_string(golden_path()).expect(
        "golden file missing; bless it with \
         ADC_BLESS_GOLDEN=1 cargo test -p adc-bench --test fig11_pinned",
    );
    assert_eq!(
        rendered, golden,
        "sharded fig11 micro counts diverged from the single-threaded \
         golden file — the sharded executor broke bit-equality"
    );
}
