//! Determinism regression tests for the parallel experiment harness.
//!
//! Three layers of protection:
//!
//! 1. a golden file pins a micro-scale sweep's CSV byte-for-byte
//!    (timing columns zeroed — they are the one legitimately
//!    non-deterministic output), so workload, simulator or RNG changes
//!    cannot slip through unnoticed;
//! 2. `--jobs 1` and `--jobs 4` must produce identical `SweepPoint`s
//!    (excluding timing), the tentpole guarantee of the executor;
//! 3. a property test round-trips arbitrary finite sweep points through
//!    the CSV codec.
//!
//! Regenerate the golden file after an *intentional* behavior change:
//!
//! ```text
//! ADC_BLESS_GOLDEN=1 cargo test -p adc-bench --test determinism
//! ```

use adc_bench::sweep::{
    read_sweep, run_sweep_with, write_sweep, SweepOptions, SweepPoint, SweptTable,
};
use adc_bench::Scale;
use proptest::prelude::*;
use std::path::PathBuf;

/// The micro scale used for the pinned sweep: 18 full simulations in
/// roughly a second in debug mode.
const GOLDEN_SCALE: Scale = Scale::Custom(0.0005);

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("sweep_micro.csv")
}

fn unique_temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adc-determinism-{tag}-{}", std::process::id()))
}

/// Zeroes the timing fields, the only ones that legitimately vary
/// between runs of the same sweep.
fn without_timing(mut p: SweepPoint) -> SweepPoint {
    p.wall_secs = 0.0;
    p.cpu_secs = 0.0;
    p
}

#[test]
fn golden_micro_sweep_is_pinned() {
    let points: Vec<SweepPoint> = run_sweep_with(GOLDEN_SCALE, SweepOptions::serial())
        .into_iter()
        .map(without_timing)
        .collect();

    let golden = golden_path();
    if std::env::var_os("ADC_BLESS_GOLDEN").is_some() {
        write_sweep(&golden, &points).expect("bless golden file");
        eprintln!("blessed {}", golden.display());
        return;
    }

    let expected = read_sweep(&golden).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); regenerate with \
             ADC_BLESS_GOLDEN=1 cargo test -p adc-bench --test determinism",
            golden.display()
        )
    });
    assert_eq!(
        points, expected,
        "micro-sweep output diverged from the pinned golden file; if the \
         change is intentional, bless a new golden (see module docs)"
    );

    // The CSV bytes are pinned too: re-encoding the points must
    // reproduce the committed file exactly.
    let dir = unique_temp_dir("golden");
    let reencoded = dir.join("sweep_micro.csv");
    write_sweep(&reencoded, &points).expect("write re-encoded sweep");
    let ours = std::fs::read_to_string(&reencoded).expect("read re-encoded sweep");
    let theirs = std::fs::read_to_string(&golden).expect("read golden");
    assert_eq!(ours, theirs, "CSV encoding changed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_sweep_matches_serial() {
    let serial = run_sweep_with(GOLDEN_SCALE, SweepOptions::serial());
    let parallel = run_sweep_with(
        GOLDEN_SCALE,
        SweepOptions {
            jobs: 4,
            serial_timing: false,
        },
    );
    assert_eq!(serial.len(), 18);
    assert_eq!(parallel.len(), 18);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            without_timing(*s),
            without_timing(*p),
            "--jobs 4 diverged from --jobs 1 at {}@{}",
            s.table,
            s.nominal_size
        );
    }
}

#[test]
fn serial_timing_repass_keeps_results() {
    let plain = run_sweep_with(GOLDEN_SCALE, SweepOptions::serial());
    let repassed = run_sweep_with(
        GOLDEN_SCALE,
        SweepOptions {
            jobs: 4,
            serial_timing: true,
        },
    );
    for (a, b) in plain.iter().zip(&repassed) {
        assert_eq!(without_timing(*a), without_timing(*b));
    }
}

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e9..1.0e9,
        0.0..1.0,
        Just(0.0),
        Just(-0.0),
        Just(1.0e-300),
    ]
}

fn arb_point() -> impl Strategy<Value = SweepPoint> {
    (
        prop_oneof![
            Just(SweptTable::Caching),
            Just(SweptTable::Multiple),
            Just(SweptTable::Single),
        ],
        any::<u16>(),
        any::<u16>(),
        finite_f64(),
        finite_f64(),
        finite_f64(),
        finite_f64(),
        finite_f64(),
    )
        .prop_map(
            |(table, nominal, actual, hit, hops, wall, cpu, steady)| SweepPoint {
                table,
                nominal_size: nominal as usize,
                actual_size: actual as usize,
                hit_rate: hit,
                mean_hops: hops,
                wall_secs: wall,
                cpu_secs: cpu,
                steady_hit_rate: steady,
            },
        )
}

proptest! {
    #[test]
    fn arbitrary_finite_points_round_trip(points in proptest::collection::vec(arb_point(), 0..20)) {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = unique_temp_dir(&format!("proptest-{n}"));
        let path = dir.join("sweep.csv");
        write_sweep(&path, &points).expect("write");
        let back = read_sweep(&path).expect("read");
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(back, points);
    }
}
