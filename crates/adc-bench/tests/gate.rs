//! End-to-end checks for the perf-regression gate and the metrics
//! exposition: the `bench_diff` binary must exit non-zero on a doctored
//! regression, and the Prometheus text a figure run writes must be
//! identical across two same-seed runs and pass the format checker.

use adc_bench::observe::run_adc_observed;
use adc_bench::{BenchArgs, Experiment, Scale};
use std::path::PathBuf;
use std::process::Command;

/// Unique scratch path so parallel test binaries can't collide.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adc_gate_test_{}_{name}", std::process::id()))
}

const BASELINE: &str = r#"{
  "benchmark": "adc_end_to_end_5_proxies",
  "smoke": false,
  "scale": "ci",
  "requests": 399000,
  "events": 2126120,
  "messages": 2126120,
  "peak_flows": 1,
  "hit_rate": 0.525434,
  "mean_hops": 4.857724,
  "replies_orphaned": 0,
  "trace_dropped": 0,
  "lint": { "rules": 10, "suppressions": 44 },
  "wall_seconds": 0.529920,
  "cpu_seconds": 0.526393,
  "requests_per_sec": 752943.2,
  "events_per_sec": 4012149.2,
  "shard": {
    "shards": 4,
    "requests": 399000,
    "events": 2525120,
    "messages": 2126120,
    "peak_flows": 212,
    "hit_rate": 0.525434,
    "pool_spawns": 3,
    "windows_advanced": 1200,
    "windows_widened": 900,
    "windows_skipped": 64000,
    "baseline_wall_seconds": 0.810000,
    "wall_seconds": 0.270000,
    "baseline_events_per_sec": 3117432.1,
    "events_per_sec": 9352296.3,
    "speedup": 3.000
  },
  "profile": {
    "total": { "wall_seconds": 0.619812, "cpu_seconds": 0.607532 }
  }
}
"#;

fn run_bench_diff(baseline: &str, current: &str, extra: &[&str]) -> std::process::Output {
    let base_path = scratch("baseline.json");
    let cur_path = scratch("current.json");
    std::fs::write(&base_path, baseline).unwrap();
    std::fs::write(&cur_path, current).unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .arg(&base_path)
        .arg(&cur_path)
        .args(extra)
        .output()
        .expect("spawn bench_diff");
    std::fs::remove_file(&base_path).ok();
    std::fs::remove_file(&cur_path).ok();
    output
}

#[test]
fn bench_diff_passes_identical_reports() {
    let output = run_bench_diff(BASELINE, BASELINE, &[]);
    assert!(
        output.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(String::from_utf8_lossy(&output.stdout).contains("OK"));
}

#[test]
fn bench_diff_fails_on_a_doctored_deterministic_regression() {
    // A one-count drift in a deterministic field: behaviour changed.
    let doctored = BASELINE.replace("\"events\": 2126120", "\"events\": 2126121");
    let output = run_bench_diff(BASELINE, &doctored, &[]);
    assert_eq!(output.status.code(), Some(1), "gate must exit 1");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("REGRESSION"), "stdout: {stdout}");
    assert!(stdout.contains("events"), "stdout: {stdout}");
}

#[test]
fn bench_diff_throughput_warn_mode_downgrades_to_exit_zero() {
    let slow = BASELINE.replace(
        "\"events_per_sec\": 4012149.2",
        "\"events_per_sec\": 1000000.0",
    );
    let hard = run_bench_diff(BASELINE, &slow, &[]);
    assert_eq!(hard.status.code(), Some(1));
    let soft = run_bench_diff(BASELINE, &slow, &["--warn-throughput"]);
    assert!(soft.status.success());
    assert!(String::from_utf8_lossy(&soft.stdout).contains("warning"));
}

#[test]
fn bench_diff_enforces_the_shard_speedup_floor() {
    // 2.5 is a mild relative dip from 3.0 (inside the 30% tolerance),
    // so only the explicit floor rejects it.
    let doctored = BASELINE.replace("\"speedup\": 3.000", "\"speedup\": 2.500");
    let no_floor = run_bench_diff(BASELINE, &doctored, &[]);
    assert!(
        no_floor.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&no_floor.stdout)
    );
    let floored = run_bench_diff(BASELINE, &doctored, &["--min-shard-speedup", "2.8"]);
    assert_eq!(floored.status.code(), Some(1), "floor must exit 1");
    let stdout = String::from_utf8_lossy(&floored.stdout);
    assert!(stdout.contains("REGRESSION"), "stdout: {stdout}");
    assert!(stdout.contains("shard.speedup"), "stdout: {stdout}");
    // A parallel-efficiency collapse trips the relative gate even
    // without a floor, and --warn-throughput does not silence a floor.
    let collapsed = BASELINE.replace("\"speedup\": 3.000", "\"speedup\": 0.900");
    assert_eq!(
        run_bench_diff(BASELINE, &collapsed, &[]).status.code(),
        Some(1)
    );
    let warned = run_bench_diff(
        BASELINE,
        &collapsed,
        &["--warn-throughput", "--min-shard-speedup", "1.0"],
    );
    assert_eq!(warned.status.code(), Some(1), "floor survives warn mode");
    // Bad flag values are usage errors.
    assert_eq!(
        run_bench_diff(BASELINE, BASELINE, &["--min-shard-speedup", "-1"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn bench_diff_rejects_incomparable_and_malformed_input() {
    let smoke = BASELINE.replace("\"smoke\": false", "\"smoke\": true");
    assert_eq!(run_bench_diff(BASELINE, &smoke, &[]).status.code(), Some(2));
    assert_eq!(
        run_bench_diff(BASELINE, "not json at all", &[])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn metrics_exposition_is_deterministic_across_same_seed_runs() {
    let run = |name: &str| {
        let path = scratch(name);
        let args = BenchArgs {
            metrics: Some(path.clone()),
            ..BenchArgs::default()
        };
        let report = run_adc_observed(&Experiment::at_scale(Scale::Custom(0.004)), &args);
        let text = std::fs::read_to_string(&path).expect("exposition written");
        std::fs::remove_file(&path).ok();
        (report, text)
    };
    let (report_a, text_a) = run("a.prom");
    let (report_b, text_b) = run("b.prom");
    assert_eq!(text_a, text_b, "same seed must give identical expositions");
    adc_metrics::validate_prometheus(&text_a).expect("exposition must pass the format checker");
    // The per-proxy summaries are part of the SimReport and equally
    // deterministic.
    let a = report_a.metrics.expect("metrics on");
    let b = report_b.metrics.expect("metrics on");
    assert_eq!(a.per_proxy, b.per_proxy);
    assert!(text_a.contains("# TYPE adc_local_hits_total counter"));
    assert!(text_a.contains("# TYPE adc_hops histogram"));
}
