//! End-to-end checks for the observability layer as the figure binaries
//! use it: convergence sampling over a real (scaled-down) fig11-style
//! run must show agreement rising in trend, and both export formats must
//! be syntactically valid.

use adc_bench::observe::run_adc_observed;
use adc_bench::{BenchArgs, Experiment, Scale};
use adc_obs::validate_json;
use std::path::PathBuf;

/// Unique scratch path so parallel test binaries can't collide.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adc_obs_test_{}_{name}", std::process::id()))
}

#[test]
fn convergence_agreement_rises_over_a_fig11_run() {
    let args = BenchArgs {
        convergence: true,
        ..BenchArgs::default()
    };
    let experiment = Experiment::at_scale(Scale::Custom(0.01));
    let report = run_adc_observed(&experiment, &args);
    let conv = report.convergence.expect("convergence sampling was on");
    assert!(conv.samples >= 8, "too few samples: {}", conv.samples);

    // Trend, not strict monotonicity: the mean agreement over the first
    // quarter of samples must not exceed the mean over the last quarter,
    // and the run must actually end substantially converged.
    let ys: Vec<f64> = conv.agreement.points.iter().map(|&(_, y)| y).collect();
    let quarter = (ys.len() / 4).max(1);
    let head: f64 = ys[..quarter].iter().sum::<f64>() / quarter as f64;
    let tail: f64 = ys[ys.len() - quarter..].iter().sum::<f64>() / quarter as f64;
    assert!(
        head <= tail,
        "agreement fell over the run: head mean {head:.4} > tail mean {tail:.4}"
    );
    assert!(
        conv.final_agreement().unwrap_or(0.0) > 0.5,
        "run ended unconverged: {:?}",
        conv.final_agreement()
    );
}

#[test]
fn exports_are_valid_json() {
    let events = scratch("events.jsonl");
    let chrome = scratch("trace.json");
    let args = BenchArgs {
        events: Some(events.clone()),
        chrome_trace: Some(chrome.clone()),
        ..BenchArgs::default()
    };
    let experiment = Experiment::at_scale(Scale::Custom(0.002));
    let report = run_adc_observed(&experiment, &args);
    assert!(report.completed > 0);

    let jsonl = std::fs::read_to_string(&events).expect("events file written");
    let mut lines = 0usize;
    for line in jsonl.lines() {
        validate_json(line).unwrap_or_else(|e| panic!("bad JSONL line {e}: {line}"));
        lines += 1;
    }
    assert!(lines > 1_000, "suspiciously few events: {lines}");

    let trace = std::fs::read_to_string(&chrome).expect("chrome trace written");
    validate_json(&trace).expect("chrome trace is one valid JSON document");
    assert!(trace.contains("\"traceEvents\""));

    let _ = std::fs::remove_file(&events);
    let _ = std::fs::remove_file(&chrome);
}
