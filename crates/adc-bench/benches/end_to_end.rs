//! End-to-end simulation throughput: complete ADC and CARP clusters
//! (5 proxies) digesting a 1/500-scale Polygraph workload. This is the
//! Criterion-tracked version of the figure runs.

use adc_bench::{Experiment, Scale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_adc_cluster(c: &mut Criterion) {
    let experiment = Experiment::at_scale(Scale::Custom(0.002));
    c.bench_function("end_to_end_adc_8k_requests", |b| {
        b.iter(|| black_box(experiment.run_adc().completed));
    });
}

fn bench_carp_cluster(c: &mut Criterion) {
    let experiment = Experiment::at_scale(Scale::Custom(0.002));
    c.bench_function("end_to_end_carp_8k_requests", |b| {
        b.iter(|| black_box(experiment.run_carp().completed));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_adc_cluster, bench_carp_cluster
}
criterion_main!(benches);
