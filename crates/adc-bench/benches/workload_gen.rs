//! Workload-generation throughput: the Polygraph-like stream and the
//! Zipf sampler must be much faster than the simulator that consumes
//! them.

use adc_workload::{PolygraphConfig, Zipf};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_polygraph(c: &mut Criterion) {
    c.bench_function("polygraph_generate_10k", |b| {
        let config = PolygraphConfig::scaled(0.01);
        b.iter(|| {
            let total: u64 = config.build().take(10_000).map(|r| r.object.raw()).sum();
            black_box(total)
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    for &n in &[1_000usize, 100_000] {
        c.bench_function(&format!("zipf_sample_n{n}"), |b| {
            let zipf = Zipf::new(n, 0.8);
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(zipf.sample(&mut rng)));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_polygraph, bench_zipf
}
criterion_main!(benches);
