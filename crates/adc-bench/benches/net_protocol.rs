//! Wire-protocol throughput: encode/decode of the TCP runtime's frames.

use adc_core::{ClientId, NodeId, ObjectId, ProxyId, Reply, Request, RequestId, ServedFrom};
use adc_net::protocol::{decode, encode, Frame};
use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn request_frame() -> Frame {
    Frame::Request(
        Request {
            id: RequestId::new(ClientId::new(7), 123_456),
            object: ObjectId::new(0xfeed_beef),
            client: ClientId::new(7),
            sender: NodeId::Proxy(ProxyId::new(3)),
            hops: 4,
        },
        None,
    )
}

fn reply_frame(body_len: usize) -> Frame {
    Frame::Reply(
        Reply {
            id: RequestId::new(ClientId::new(7), 123_456),
            object: ObjectId::new(0xfeed_beef),
            client: ClientId::new(7),
            resolver: Some(ProxyId::new(1)),
            cached_by: Some(ProxyId::new(1)),
            served_from: ServedFrom::Cache(ProxyId::new(1)),
            size: body_len as u32,
        },
        Bytes::from(vec![0xAB; body_len]),
        None,
    )
}

fn bench_encode_decode(c: &mut Criterion) {
    c.bench_function("encode_request", |b| {
        let frame = request_frame();
        b.iter(|| black_box(encode(&frame)));
    });
    c.bench_function("decode_request", |b| {
        let encoded = encode(&request_frame());
        b.iter(|| black_box(decode(encoded.clone()).unwrap()));
    });
    let mut group = c.benchmark_group("reply_round_trip");
    for &body in &[0usize, 1_024, 64 * 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(body), &body, |b, &body| {
            let frame = reply_frame(body);
            b.iter(|| {
                let encoded = encode(&frame);
                black_box(decode(encoded).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_encode_decode
}
criterion_main!(benches);
