//! Agent event-processing throughput: ADC vs the CARP baseline.
//!
//! Drives full miss→origin→backward cycles through a single agent so the
//! numbers include pending-table and mapping-table work.

use adc_baselines::CarpProxy;
use adc_core::{
    Action, AdcConfig, AdcProxy, CacheAgent, ClientId, Message, ObjectId, ProxyId, Reply, Request,
    RequestId,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive_cycle<A: CacheAgent>(agent: &mut A, rng: &mut StdRng, seq: u64, object: u64) {
    let req = Request::new(
        RequestId::new(ClientId::new(0), seq),
        ObjectId::new(object),
        ClientId::new(0),
    );
    let Action::Send { message, .. } = agent.request_action(req, rng);
    if let Message::Request(forwarded) = message {
        // Pretend the origin resolved it immediately.
        let reply = Reply::from_origin(&forwarded, 1024);
        let mut reply = reply;
        // Unwind any pending hops (loops can stack two).
        while let Some(Action::Send { message, .. }) = agent.reply_action(reply) {
            match message {
                Message::Reply(r) => reply = r,
                Message::Request(_) => break,
            }
            if agent.is_cached(ObjectId::new(object)) {
                break;
            }
        }
    }
    black_box(agent.cached_objects());
}

fn bench_adc_agent(c: &mut Criterion) {
    let config = AdcConfig::builder()
        .single_capacity(10_000)
        .multiple_capacity(10_000)
        .cache_capacity(5_000)
        .max_hops(8)
        .build();
    let zipf = adc_workload::Zipf::new(20_000, 0.8);
    c.bench_function("adc_agent_cycle", |b| {
        let mut agent = AdcProxy::new(ProxyId::new(0), 1, config.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let mut zipf_rng = StdRng::seed_from_u64(2);
        let mut seq = 0u64;
        b.iter(|| {
            let object = zipf.sample(&mut zipf_rng) as u64;
            drive_cycle(&mut agent, &mut rng, seq, object);
            seq += 1;
        });
    });
}

fn bench_carp_agent(c: &mut Criterion) {
    let zipf = adc_workload::Zipf::new(20_000, 0.8);
    c.bench_function("carp_agent_cycle", |b| {
        let mut agent = CarpProxy::new(ProxyId::new(0), 1, 5_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut zipf_rng = StdRng::seed_from_u64(2);
        let mut seq = 0u64;
        b.iter(|| {
            let object = zipf.sample(&mut zipf_rng) as u64;
            drive_cycle(&mut agent, &mut rng, seq, object);
            seq += 1;
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_adc_agent, bench_carp_agent
}
criterion_main!(benches);
