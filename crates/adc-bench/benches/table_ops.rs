//! Micro-benchmarks for the mapping-table data structures — the
//! operations Figure 15 of the paper identifies as the time sinks
//! ("insertion and deletion at the ordered multiple-table", "the
//! element-wise search within the [single-table] list").

use adc_core::tables::{MappingTables, OrderedTable, SingleTable};
use adc_core::{AgingMode, Location, ObjectId, TableEntry};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_single_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_table");
    for &size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_top", size), &size, |b, &size| {
            let mut table = SingleTable::new(size);
            let mut i = 0u64;
            b.iter(|| {
                table.push_top(TableEntry::new(ObjectId::new(i), Location::This, i));
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_ordered_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordered_table");
    for &size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("insert_remove", size),
            &size,
            |b, &size| {
                let mut table = OrderedTable::new(size);
                for i in 0..size as u64 {
                    let mut e = TableEntry::new(ObjectId::new(i), Location::This, i);
                    e.average = i * 7 % 1000;
                    e.hits = 2;
                    table.insert(e);
                }
                let mut i = 0u64;
                b.iter(|| {
                    let id = ObjectId::new(i % size as u64);
                    if let Some(mut e) = table.remove(id) {
                        e.average = (e.average + 13) % 1000;
                        table.insert(e);
                    }
                    i += 1;
                });
            },
        );
    }
    group.finish();
}

fn bench_update_entry(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_entry");
    for &size in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("zipf_stream", size), &size, |b, &size| {
            let mut tables = MappingTables::new(size, size, size / 2, AgingMode::AgedWorst);
            let zipf = adc_workload::Zipf::new(size * 2, 0.8);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
            let mut now = 0u64;
            b.iter(|| {
                now += 1;
                let obj = ObjectId::new(zipf.sample(&mut rng) as u64);
                black_box(tables.update_entry(obj, Location::This, now));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_table, bench_ordered_table, bench_update_entry
}
criterion_main!(benches);
