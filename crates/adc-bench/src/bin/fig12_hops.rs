//! Regenerates **Figure 12: Hops — ADC vs. Hashing**.
//!
//! Plots the moving average of hops needed to resolve a request (a hop =
//! any message transfer between client, proxies and origin, both
//! directions).
//!
//! Expected shape (paper): ADC needs about two more hops on average than
//! the hashing scheme (around 7 vs around 5), the price of its flexible
//! search.

use adc_bench::observe::run_adc_observed;
use adc_bench::output::{apply_args, named, print_run_summary, print_series_table};
use adc_bench::{BenchArgs, Experiment};
use adc_metrics::csv;

fn main() {
    let args = BenchArgs::from_env();
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);
    eprintln!(
        "figure 12: {} requests, 5 proxies — running ADC...",
        experiment.workload.total_requests()
    );
    let adc = run_adc_observed(&experiment, &args);
    eprintln!("running CARP hashing baseline...");
    let carp = experiment.run_carp();

    let adc_series = named(&adc.hops_series, "adc");
    let carp_series = named(&carp.hops_series, "hashing");
    let path = args
        .out
        .join(format!("fig12_hops_{}.csv", args.scale.tag()));
    csv::write_series_file(&path, "requests", &[&adc_series, &carp_series])
        .expect("write figure CSV");

    println!(
        "Figure 12 — hops (moving average over last {} requests)",
        experiment.sim.hit_window
    );
    print_series_table("requests", &[&adc_series, &carp_series], 40);
    println!();
    print_run_summary("ADC", &adc);
    print_run_summary("Hashing (CARP)", &carp);
    println!(
        "mean hops: adc={:.3} hashing={:.3} (adc - hashing = {:+.3})",
        adc.mean_hops(),
        carp.mean_hops(),
        adc.mean_hops() - carp.mean_hops()
    );
    println!("wrote {}", path.display());
}
