//! Ablation A3: **hop-limit sensitivity**.
//!
//! The paper lists the maximum number of forwardings as a configurable
//! parameter but leaves its study to future work. This binary sweeps the
//! limit and reports the hit-rate / hops trade-off: a tight limit cuts
//! search cost but aborts searches to the origin early. The six runs
//! execute on the `--jobs` worker pool against one shared trace.

use adc_bench::output::apply_args;
use adc_bench::parallel::{run_jobs, ExperimentJob};
use adc_bench::{BenchArgs, Experiment};
use adc_metrics::csv;
use adc_sim::SimReport;

const LIMITS: [u32; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);
    let trace = experiment.trace();

    let jobs: Vec<ExperimentJob<SimReport>> = LIMITS
        .iter()
        .map(|&limit| {
            let (e, t) = (experiment.clone(), trace.clone());
            ExperimentJob::new(format!("max_hops={limit}"), move || {
                let mut adc = e.adc.clone();
                adc.max_hops = limit;
                e.run_adc_with_on(adc, &t)
            })
        })
        .collect();
    eprintln!(
        "running {} hop-limit points on {} worker{}...",
        jobs.len(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let reports = run_jobs(jobs, args.jobs);

    let mut rows = Vec::new();
    println!("Ablation A3 — max-hops sensitivity (5 proxies)");
    println!(
        "{:>9} {:>10} {:>12} {:>10} {:>14}",
        "max_hops", "hit_rate", "phase2_hit", "mean_hops", "origin_maxhops"
    );
    for (&limit, report) in LIMITS.iter().zip(&reports) {
        let aborted = report.cluster_stats().origin_max_hops;
        println!(
            "{limit:>9} {:>10.4} {:>12.4} {:>10.3} {aborted:>14}",
            report.hit_rate(),
            report.phases[2].hit_rate(),
            report.mean_hops()
        );
        rows.push(vec![
            limit.to_string(),
            format!("{}", report.hit_rate()),
            format!("{}", report.phases[2].hit_rate()),
            format!("{}", report.mean_hops()),
            aborted.to_string(),
        ]);
    }

    let path = args
        .out
        .join(format!("ablation_max_hops_{}.csv", args.scale.tag()));
    csv::write_file(
        &path,
        &[
            "max_hops",
            "hit_rate",
            "phase2_hit_rate",
            "mean_hops",
            "aborted_searches",
        ],
        rows,
    )
    .expect("write ablation CSV");
    println!("wrote {}", path.display());
}
