//! Ablation A2: **aging on vs off** in the admission threshold.
//!
//! The paper's aging rule (Figure 4) compares candidates against the
//! *aged* average of the worst resident entry so stale objects expire.
//! On a stationary workload the rule is nearly free (popularity never
//! shifts, so the stale-resident situation rarely arises); its value
//! shows when the hot set *rotates*. This binary measures both:
//!
//! 1. the paper's Polygraph-like workload (stationary popularity), and
//! 2. a shifting-Zipf workload where the hot set moves to a disjoint
//!    window several times during the run.

use adc_bench::output::{apply_args, print_run_summary};
use adc_bench::{BenchArgs, Experiment};
use adc_core::{AdcConfig, AdcProxy, AgingMode, ProxyId};
use adc_metrics::csv;
use adc_sim::{SimConfig, SimReport, Simulation};
use adc_workload::ShiftingZipf;

fn run_shifting(aging: AgingMode, scale: f64, base: &AdcConfig, sim: &SimConfig) -> SimReport {
    let mut config = base.clone();
    config.aging = aging;
    let agents: Vec<AdcProxy> = (0..5)
        .map(|i| AdcProxy::new(ProxyId::new(i), 5, config.clone()))
        .collect();
    // Hot window sized to the aggregate cache; four shifts over the run.
    let requests = (1_000_000.0 * scale) as u64;
    let window = base.cache_capacity * 2;
    let workload = ShiftingZipf::new(window, 0.9, 50, 7, requests / 4);
    Simulation::new(agents, sim.clone()).run(workload.take(requests as usize))
}

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);

    eprintln!("ablation A2 (stationary): ADC with aging...");
    let aged = experiment.run_adc();
    eprintln!("ADC without aging...");
    let mut no_aging = experiment.adc.clone();
    no_aging.aging = AgingMode::Off;
    let frozen = experiment.run_adc_with(no_aging);

    eprintln!("ablation A2 (shifting hot set): ADC with aging...");
    let factor = args.scale.factor();
    let aged_shift = run_shifting(
        AgingMode::AgedWorst,
        factor,
        &experiment.adc,
        &experiment.sim,
    );
    eprintln!("ADC without aging...");
    let frozen_shift = run_shifting(AgingMode::Off, factor, &experiment.adc, &experiment.sim);

    let path = args
        .out
        .join(format!("ablation_aging_{}.csv", args.scale.tag()));
    let row = |workload: &str, aging: &str, r: &SimReport| {
        vec![
            workload.to_string(),
            aging.to_string(),
            format!("{}", r.hit_rate()),
            format!("{}", r.phases[2].hit_rate()),
            format!("{}", r.mean_hops()),
        ]
    };
    csv::write_file(
        &path,
        &[
            "workload",
            "aging",
            "hit_rate",
            "phase2_hit_rate",
            "mean_hops",
        ],
        vec![
            row("polygraph", "aged_worst", &aged),
            row("polygraph", "off", &frozen),
            row("shifting", "aged_worst", &aged_shift),
            row("shifting", "off", &frozen_shift),
        ],
    )
    .expect("write ablation CSV");

    println!("Ablation A2 — admission aging");
    print_run_summary("polygraph workload, aged-worst admission (paper)", &aged);
    print_run_summary("polygraph workload, aging off", &frozen);
    print_run_summary("shifting hot set, aged-worst admission", &aged_shift);
    print_run_summary("shifting hot set, aging off", &frozen_shift);
    println!(
        "stationary: aged={:.4} off={:.4} (diff {:+.4})",
        aged.hit_rate(),
        frozen.hit_rate(),
        aged.hit_rate() - frozen.hit_rate()
    );
    println!(
        "shifting  : aged={:.4} off={:.4} (diff {:+.4})",
        aged_shift.hit_rate(),
        frozen_shift.hit_rate(),
        aged_shift.hit_rate() - frozen_shift.hit_rate()
    );
    println!(
        "(aging mainly guards against stale residents squatting after popularity\n\
         shifts; in these workloads turnover via displacement already suffices, so\n\
         the measured differences stay within noise)"
    );
    println!("wrote {}", path.display());
}
