//! Tracked throughput baseline for the event-loop core.
//!
//! Runs the fixed 5-proxy end-to-end scenario (the Figure 11 setup,
//! ADC agents over the shared Polygraph trace) and writes
//! `BENCH_adc.json` — requests/sec, events/sec, peak flow-table size,
//! wall and CPU time, a `"lint"` section (adc-lint rule and suppression
//! counts, so allow-creep is visible in baseline diffs), a `"shard"`
//! section (the same experiment under open-loop injection on the
//! barrier-synchronized sharded executor at 1 shard and at `--shards`
//! shards, default 4 — the counts must be shard-count invariant and are
//! gated exactly, the sharded throughput feeds the throughput gate, and
//! the 1-shard/N-shard wall ratio is reported as `speedup`), a
//! `"shard_profile"` section (one extra profiled sharded run: per-shard
//! drain times, the coordinator's barrier-wait split, and the
//! load-imbalance coefficient gated relatively by `bench_diff`), a
//! `"spans"` section (one span-recorded sequential run: per-segment
//! latency attribution whose reconciliation fields are deterministic
//! and gated exactly), a `"net_trace"` section (a fixed request stream
//! replayed through a real loopback TCP cluster with tracing off and
//! then on — lane count and stream length gated exactly, both
//! throughput legs gated relatively, so distributed-tracing overhead
//! regressions surface in baseline diffs), plus a per-phase
//! `"profile"` section (workload
//! generation / simulation / report assembly) — to the current
//! directory. The committed
//! `BENCH_baseline.json` at the repository root is the baseline a
//! perf-sensitive change is compared against (see the `bench_diff`
//! gate); refresh it with:
//!
//! ```text
//! cargo run --release -p adc-bench --bin bench_report
//! cp BENCH_adc.json BENCH_baseline.json
//! ```
//!
//! `--smoke` shrinks the workload to a few-second run for CI, where only
//! "does it run and emit well-formed JSON" matters, and stamps the output
//! accordingly so a smoke file is never mistaken for a baseline.

use adc_bench::{live_workload, replay_live, BenchArgs, Experiment, Scale};
use adc_sim::{thread_cpu_now, InjectionMode, SimTime};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    raw.retain(|a| a != "--smoke");
    let mut args = match BenchArgs::parse(raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}\n(additionally: --smoke for a fast CI run)");
            std::process::exit(2);
        }
    };
    if smoke {
        args.scale = Scale::Custom(0.002);
    }

    let mut experiment = Experiment::at_scale(args.scale);
    if let Some(seed) = args.seed {
        experiment.workload.seed = seed;
        experiment.sim.seed = seed;
    }
    // The baseline measures the event loop, not the metrics subsystem:
    // match the sweep configuration (no occupancy series).
    experiment.sim.sample_occupancy = false;

    eprintln!(
        "bench_report: {} requests, 5 proxies, scale {} — running ADC end-to-end...",
        experiment.workload.total_requests(),
        args.scale,
    );
    let total_wall_start = Instant::now();
    let total_cpu_start = thread_cpu_now();
    let gen_wall_start = Instant::now();
    let gen_cpu_start = thread_cpu_now();
    let trace = experiment.trace();
    let gen_wall = gen_wall_start.elapsed();
    let gen_cpu = thread_cpu_now().saturating_sub(gen_cpu_start);
    let report = experiment.run_adc_on(&trace);
    let total_wall = total_wall_start.elapsed();
    let total_cpu = thread_cpu_now().saturating_sub(total_cpu_start);

    let wall = report.wall_time;
    let cpu = report.cpu_time;
    // Whatever the simulation itself didn't account for (report
    // assembly, series bookkeeping, trace iteration overhead) lands in
    // the "report" bucket: total minus generation minus simulation.
    let rep_wall = total_wall.saturating_sub(gen_wall).saturating_sub(wall);
    let rep_cpu = total_cpu.saturating_sub(gen_cpu).saturating_sub(cpu);
    let per_sec = |count: u64, d: Duration| {
        if d.as_secs_f64() > 0.0 {
            count as f64 / d.as_secs_f64()
        } else {
            0.0
        }
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"adc_end_to_end_5_proxies\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"scale\": \"{}\",", args.scale.tag());
    let _ = writeln!(json, "  \"requests\": {},", report.completed);
    let _ = writeln!(json, "  \"events\": {},", report.events_processed);
    let _ = writeln!(json, "  \"messages\": {},", report.messages_delivered);
    let _ = writeln!(json, "  \"peak_flows\": {},", report.peak_flows);
    let _ = writeln!(json, "  \"hit_rate\": {:.6},", report.hit_rate());
    let _ = writeln!(json, "  \"mean_hops\": {:.6},", report.mean_hops());
    let _ = writeln!(
        json,
        "  \"replies_orphaned\": {},",
        report.cluster_stats().replies_orphaned
    );
    let _ = writeln!(json, "  \"trace_dropped\": {},", report.trace_dropped());
    // Static-analysis surface: rule count and how many suppressions the
    // tree carries, so allow-creep shows up in baseline diffs.
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match adc_lint::run(&repo_root) {
        Ok(lint) => {
            let _ = writeln!(json, "  \"lint\": {{");
            let _ = writeln!(json, "    \"rules\": {},", lint.rules);
            let _ = writeln!(json, "    \"suppressions\": {},", lint.suppressions_total());
            // Wall time is telemetry, not a gated field: the CI lint
            // runtime budget reads it, the diff gate ignores it.
            let _ = writeln!(
                json,
                "    \"elapsed_ms\": {:.3},",
                lint.total_nanos as f64 / 1e6
            );
            let _ = writeln!(json, "    \"by_rule\": {{");
            let last = lint.rule_stats.len().saturating_sub(1);
            for (i, rs) in lint.rule_stats.iter().enumerate() {
                let comma = if i == last { "" } else { "," };
                let _ = writeln!(
                    json,
                    "      \"{}\": {{ \"findings\": {}, \"suppressions\": {}, \
                     \"wall_ms\": {:.3} }}{comma}",
                    rs.id,
                    rs.findings,
                    rs.suppressions,
                    rs.nanos as f64 / 1e6
                );
            }
            let _ = writeln!(json, "    }}");
            let _ = writeln!(json, "  }},");
        }
        Err(e) => {
            eprintln!("bench_report: lint scan skipped ({e})");
            let _ = writeln!(json, "  \"lint\": null,");
        }
    }
    let _ = writeln!(json, "  \"wall_seconds\": {:.6},", wall.as_secs_f64());
    let _ = writeln!(json, "  \"cpu_seconds\": {:.6},", cpu.as_secs_f64());
    let _ = writeln!(
        json,
        "  \"requests_per_sec\": {:.1},",
        per_sec(report.completed, wall)
    );
    let _ = writeln!(
        json,
        "  \"events_per_sec\": {:.1},",
        per_sec(report.events_processed, wall)
    );
    // Sharded-executor surface: the same experiment under open-loop
    // injection (flows overlap, so worker shards have concurrent work),
    // run on the barrier-synchronized executor at 1 shard and at
    // `shards` shards over the same trace. The executor is shard-count
    // invariant by construction, so the counts are gated exactly; the
    // sharded events-per-second feeds the throughput gate.
    let shards = if args.shards > 1 { args.shards } else { 4 };
    let mut shard_exp = experiment.clone();
    shard_exp.sim.injection = InjectionMode::OpenLoop {
        interval: SimTime::from_micros(50),
    };
    // Scaling curve: the same trace at 1, 2, 4, `--shards` and one
    // shard per core. Smoke mode keeps only the two gate-feeding
    // points so CI stays fast.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut counts: Vec<usize> = if smoke {
        vec![1, shards]
    } else {
        vec![1, 2, 4, shards, cores]
    };
    counts.sort_unstable();
    counts.dedup();
    eprintln!("bench_report: sharded executor — open-loop runs at shards {counts:?}...");
    let scaling: Vec<_> = counts
        .iter()
        .map(|&count| (count, shard_exp.run_adc_sharded_on(&trace, count)))
        .collect();
    let (_, shard_base) = scaling.first().expect("counts start at 1 shard");
    for (count, run) in &scaling {
        assert_eq!(
            shard_base.to_deterministic_json(),
            run.to_deterministic_json(),
            "sharded executor must be shard-count invariant (diverged at {count} shards)"
        );
    }
    let speedup_vs_base = |run: &adc_sim::SimReport| {
        if run.wall_time.as_secs_f64() > 0.0 {
            shard_base.wall_time.as_secs_f64() / run.wall_time.as_secs_f64()
        } else {
            0.0
        }
    };
    let (_, shard_run) = scaling
        .iter()
        .find(|(count, _)| *count == shards)
        .expect("the --shards point is always run");
    let speedup = speedup_vs_base(shard_run);
    let exec = shard_run.shard_exec.unwrap_or_default();
    let _ = writeln!(json, "  \"shard\": {{");
    let _ = writeln!(json, "    \"shards\": {shards},");
    let _ = writeln!(json, "    \"requests\": {},", shard_run.completed);
    let _ = writeln!(json, "    \"events\": {},", shard_run.events_processed);
    let _ = writeln!(json, "    \"messages\": {},", shard_run.messages_delivered);
    let _ = writeln!(json, "    \"peak_flows\": {},", shard_run.peak_flows);
    let _ = writeln!(json, "    \"hit_rate\": {:.6},", shard_run.hit_rate());
    // Executor telemetry (outside the deterministic report surface:
    // pool sizing follows the host, widening follows the tuning).
    let _ = writeln!(json, "    \"pool_spawns\": {},", exec.pool_spawns);
    let _ = writeln!(json, "    \"windows_advanced\": {},", exec.windows_advanced);
    let _ = writeln!(json, "    \"windows_widened\": {},", exec.windows_widened);
    let _ = writeln!(json, "    \"windows_skipped\": {},", exec.windows_skipped);
    let _ = writeln!(
        json,
        "    \"baseline_wall_seconds\": {:.6},",
        shard_base.wall_time.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"wall_seconds\": {:.6},",
        shard_run.wall_time.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"baseline_events_per_sec\": {:.1},",
        per_sec(shard_base.events_processed, shard_base.wall_time)
    );
    let _ = writeln!(
        json,
        "    \"events_per_sec\": {:.1},",
        per_sec(shard_run.events_processed, shard_run.wall_time)
    );
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    // The full curve, keyed by shard count (nested objects — the gate's
    // parser takes no arrays). Informational: hosts differ, so nothing
    // here is gated.
    let _ = writeln!(json, "    \"scaling\": {{");
    for (i, (count, run)) in scaling.iter().enumerate() {
        let _ = writeln!(
            json,
            "      \"{count}\": {{ \"wall_seconds\": {:.6}, \"events_per_sec\": {:.1}, \
             \"speedup\": {:.3} }}{}",
            run.wall_time.as_secs_f64(),
            per_sec(run.events_processed, run.wall_time),
            speedup_vs_base(run),
            if i + 1 == scaling.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    // Execution-profiler surface: one extra profiled run at the gate's
    // shard count, separate from the timed scaling legs so the profile's
    // clock reads never depress the gated throughput numbers. The
    // imbalance coefficient (max/mean per-shard drain time) is gated
    // relatively by bench_diff; the rest is informational wall-clock
    // telemetry.
    eprintln!("bench_report: profiled sharded run at {shards} shards...");
    let profiled = shard_exp.run_adc_sharded_profiled_on(&trace, shards);
    assert_eq!(
        shard_base.to_deterministic_json(),
        profiled.to_deterministic_json(),
        "the execution profiler must not move the deterministic bytes"
    );
    let prof = profiled
        .shard_profile
        .expect("profiled run reports the execution profile");
    let _ = writeln!(json, "  \"shard_profile\": {{");
    let _ = writeln!(json, "    \"shards\": {},", prof.shards);
    let _ = writeln!(json, "    \"windows\": {},", prof.windows);
    let _ = writeln!(
        json,
        "    \"imbalance_coefficient\": {:.4},",
        prof.imbalance_coefficient()
    );
    let _ = writeln!(
        json,
        "    \"barrier_wait_fraction\": {:.4},",
        prof.barrier_wait_fraction()
    );
    let _ = writeln!(
        json,
        "    \"drain_seconds_total\": {:.6},",
        prof.total_drain_ns() as f64 / 1e9
    );
    let _ = writeln!(
        json,
        "    \"coordinator_busy_seconds\": {:.6},",
        prof.coordinator_busy_ns as f64 / 1e9
    );
    let _ = writeln!(
        json,
        "    \"coordinator_wait_seconds\": {:.6},",
        prof.coordinator_wait_ns as f64 / 1e9
    );
    let quantile = |h: &adc_metrics::Log2Histogram, q: f64| h.quantile(q).unwrap_or(0);
    let _ = writeln!(
        json,
        "    \"window_occupancy_p50\": {},",
        quantile(&prof.window_occupancy, 0.50)
    );
    let _ = writeln!(
        json,
        "    \"window_occupancy_p99\": {},",
        quantile(&prof.window_occupancy, 0.99)
    );
    let _ = writeln!(
        json,
        "    \"outbox_depth_p50\": {},",
        quantile(&prof.outbox_depth, 0.50)
    );
    let _ = writeln!(
        json,
        "    \"outbox_depth_p99\": {},",
        quantile(&prof.outbox_depth, 0.99)
    );
    let _ = writeln!(json, "    \"slices\": {},", prof.slices.len());
    let _ = writeln!(json, "    \"per_shard\": {{");
    for lane in 0..prof.shards {
        let _ = writeln!(
            json,
            "      \"{lane}\": {{ \"drain_seconds\": {:.6}, \"windows\": {}, \"events\": {} }}{}",
            prof.shard_drain_ns[lane] as f64 / 1e9,
            prof.shard_windows[lane],
            prof.shard_events[lane],
            if lane + 1 == prof.shards { "" } else { "," }
        );
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    // Flow-span surface: the sequential experiment re-run with the span
    // recorder attached (again outside the timed legs). Everything here
    // is simulated time — a pure function of the seeded workload — so
    // the reconciliation fields are gated exactly.
    eprintln!("bench_report: span-recorded run...");
    let span_run = experiment.run_adc_spans_on(&trace, 5);
    assert_eq!(
        report.to_deterministic_json(),
        span_run.to_deterministic_json(),
        "the span recorder must not move the deterministic bytes"
    );
    let spans = span_run.spans.expect("span run reports the breakdown");
    let _ = writeln!(json, "  \"spans\": {{");
    let _ = writeln!(json, "    \"flows\": {},", spans.flows);
    let _ = writeln!(json, "    \"total_us\": {},", spans.total_us);
    let _ = writeln!(json, "    \"attributed_us\": {},", spans.attributed_us);
    let _ = writeln!(
        json,
        "    \"sum_check_failures\": {},",
        spans.sum_check_failures
    );
    let _ = writeln!(json, "    \"segments\": {{");
    for (i, seg) in spans.segments.iter().enumerate() {
        let _ = writeln!(
            json,
            "      \"{}\": {{ \"total_us\": {}, \"count\": {} }}{}",
            seg.kind.name(),
            seg.total_us,
            seg.count,
            if i + 1 == spans.segments.len() {
                ""
            } else {
                ","
            }
        );
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(
        json,
        "    \"slowest_us\": {}",
        spans.slowest.first().map_or(0, |f| f.total_us)
    );
    let _ = writeln!(json, "  }},");
    // Live-network tracing surface: the same request stream replayed
    // through a real loopback cluster twice — tracing off, then on — so
    // the wire-level cost of span recording is part of the gated report.
    // Stream length and lane count are structural (exact-gated); the
    // two throughput legs ride the relative gate.
    let live_requests: u64 = if smoke { 120 } else { 600 };
    eprintln!("bench_report: live cluster replay, tracing off ({live_requests} requests)...");
    let off = replay_live(live_workload(live_requests), None).expect("live replay (untraced)");
    eprintln!("bench_report: live cluster replay, tracing on...");
    let on = replay_live(live_workload(live_requests), Some(8192)).expect("live replay (traced)");
    let merged = on.merged.as_ref().expect("traced replay merges");
    let _ = writeln!(json, "  \"net_trace\": {{");
    let _ = writeln!(json, "    \"requests\": {},", on.requests);
    let _ = writeln!(json, "    \"lanes\": {},", merged.lanes.len());
    let _ = writeln!(
        json,
        "    \"cross_node_traces\": {},",
        merged.cross_node_traces
    );
    let _ = writeln!(json, "    \"spans_dropped\": {},", on.spans_dropped);
    let _ = writeln!(json, "    \"clamped\": {},", merged.clamped);
    let _ = writeln!(
        json,
        "    \"requests_per_sec\": {:.3},",
        off.requests_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"requests_per_sec_traced\": {:.3}",
        on.requests_per_sec()
    );
    let _ = writeln!(json, "  }},");
    let phase = |name: &str, w: Duration, c: Duration, last: bool| {
        format!(
            "    \"{name}\": {{ \"wall_seconds\": {:.6}, \"cpu_seconds\": {:.6} }}{}",
            w.as_secs_f64(),
            c.as_secs_f64(),
            if last { "" } else { "," }
        )
    };
    let _ = writeln!(json, "  \"profile\": {{");
    let _ = writeln!(json, "{}", phase("workload_gen", gen_wall, gen_cpu, false));
    let _ = writeln!(json, "{}", phase("simulate", wall, cpu, false));
    let _ = writeln!(json, "{}", phase("report", rep_wall, rep_cpu, false));
    let _ = writeln!(json, "{}", phase("total", total_wall, total_cpu, true));
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = "BENCH_adc.json";
    std::fs::write(path, &json).expect("write BENCH_adc.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
