//! Ablation A1: **selective caching vs cache-everything LRU**.
//!
//! §III.4 of the paper claims "our algorithm works better with the
//! approach of selective caching and an ordered table than a table based
//! on a typical LRU algorithm". This binary runs the headline workload
//! with the ADC forwarding machinery unchanged but the caching policy
//! switched between the two.

use adc_bench::output::{apply_args, print_run_summary};
use adc_bench::{BenchArgs, Experiment};
use adc_core::CachePolicy;
use adc_metrics::csv;

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);

    eprintln!("ablation A1: running ADC with selective caching...");
    let selective = experiment.run_adc();
    eprintln!("running ADC with cache-everything LRU...");
    let mut lru_config = experiment.adc.clone();
    lru_config.policy = CachePolicy::LruAll;
    let lru = experiment.run_adc_with(lru_config);

    let path = args
        .out
        .join(format!("ablation_policy_{}.csv", args.scale.tag()));
    let rows = vec![
        vec![
            "selective".to_string(),
            format!("{}", selective.hit_rate()),
            format!("{}", selective.phases[2].hit_rate()),
            format!("{}", selective.mean_hops()),
        ],
        vec![
            "lru_all".to_string(),
            format!("{}", lru.hit_rate()),
            format!("{}", lru.phases[2].hit_rate()),
            format!("{}", lru.mean_hops()),
        ],
    ];
    csv::write_file(
        &path,
        &["policy", "hit_rate", "phase2_hit_rate", "mean_hops"],
        rows,
    )
    .expect("write ablation CSV");

    println!("Ablation A1 — caching policy (ADC forwarding, different stores)");
    print_run_summary("ADC selective caching (paper)", &selective);
    print_run_summary("ADC cache-everything LRU", &lru);
    println!(
        "phase II hit rate: selective={:.4} lru={:.4} (selective - lru = {:+.4})",
        selective.phases[2].hit_rate(),
        lru.phases[2].hit_rate(),
        selective.phases[2].hit_rate() - lru.phases[2].hit_rate()
    );
    println!("wrote {}", path.display());
}
