//! Writes the Polygraph-like request stream to a CSV trace file, so the
//! exact workload behind every figure can be archived, inspected or fed
//! to an external system.
//!
//! ```text
//! cargo run -p adc-bench --release --bin gen_trace -- --scale ci --out results
//! ```

use adc_bench::BenchArgs;
use adc_workload::analysis::trace_stats;
use adc_workload::trace::write_trace;
use adc_workload::PolygraphConfig;

fn main() {
    let args = BenchArgs::from_env();
    let mut config = PolygraphConfig::scaled(args.scale.factor());
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let path = args
        .out
        .join(format!("polygraph_trace_{}.csv", args.scale.tag()));
    eprintln!(
        "writing {} requests to {} ...",
        config.total_requests(),
        path.display()
    );
    let file = std::fs::File::create(&path).expect("create trace file");
    write_trace(file, config.build()).expect("write trace");

    let stats = trace_stats(config.build());
    println!("trace written: {}", path.display());
    println!("  requests         : {}", stats.requests);
    println!("  distinct objects : {}", stats.distinct_objects);
    println!("  recurrence ratio : {:.4}", stats.recurrence_ratio);
    println!(
        "  est. Zipf alpha  : {}",
        stats
            .zipf_alpha
            .map(|a| format!("{a:.3}"))
            .unwrap_or_else(|| "n/a".into())
    );
}
