//! Regenerates **Figure 13: Hit Rates by Table Size**.
//!
//! Varies each of the caching/multiple/single tables from 5k to 30k
//! entries (others held at the 10k/20k/20k defaults) and plots the
//! overall hit rate.
//!
//! Expected shape (paper): the caching-table size dominates — hit rate
//! climbs with cache size and plateaus around the default; the
//! single-table barely matters even at 5k; a multiple-table under 10k
//! hurts, above 10k adds little.

use adc_bench::sweep::{load_or_run_sweep_with, SweepOptions, SweptTable, NOMINAL_SIZES};
use adc_bench::BenchArgs;
use adc_metrics::csv;

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let points =
        load_or_run_sweep_with(&args.out, args.scale, SweepOptions::from(&args)).expect("sweep");

    let value = |table: SweptTable, nominal: usize| {
        points
            .iter()
            .find(|p| p.table == table && p.nominal_size == nominal)
            .map(|p| p.hit_rate)
            .expect("complete sweep")
    };

    let path = args
        .out
        .join(format!("fig13_hits_by_size_{}.csv", args.scale.tag()));
    let rows = NOMINAL_SIZES.iter().map(|&n| {
        vec![
            n.to_string(),
            format!("{}", value(SweptTable::Caching, n)),
            format!("{}", value(SweptTable::Multiple, n)),
            format!("{}", value(SweptTable::Single, n)),
        ]
    });
    csv::write_file(&path, &["size", "caching", "multiple", "single"], rows)
        .expect("write figure CSV");

    println!("Figure 13 — hit rate by table size (varied table; others at defaults)");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "size", "caching", "multiple", "single"
    );
    for &n in &NOMINAL_SIZES {
        println!(
            "{n:>8} {:>10.4} {:>10.4} {:>10.4}",
            value(SweptTable::Caching, n),
            value(SweptTable::Multiple, n),
            value(SweptTable::Single, n)
        );
    }
    println!("wrote {}", path.display());
}
