//! Regenerates **Figure 15: Processing Time by Table Size**.
//!
//! Same sweep as Figures 13/14 but plotting the wall-clock time each
//! simulation took.
//!
//! Expected shape (paper): growing the single- and multiple-tables slows
//! the run down (more table work per request), while the caching-table
//! size has no significant impact. Absolute numbers are not comparable —
//! the paper measured a Java multi-agent testbed on Pentium-III hosts —
//! but the ordering of the three curves is the reproduced claim.

use adc_bench::sweep::{load_or_run_sweep, SweptTable, NOMINAL_SIZES};
use adc_bench::BenchArgs;
use adc_metrics::csv;

fn main() {
    let args = BenchArgs::from_env();
    let points = load_or_run_sweep(&args.out, args.scale).expect("sweep");

    let value = |table: SweptTable, nominal: usize| {
        points
            .iter()
            .find(|p| p.table == table && p.nominal_size == nominal)
            .map(|p| p.wall_secs)
            .expect("complete sweep")
    };

    let path = args
        .out
        .join(format!("fig15_time_by_size_{}.csv", args.scale.tag()));
    let rows = NOMINAL_SIZES.iter().map(|&n| {
        vec![
            n.to_string(),
            format!("{}", value(SweptTable::Caching, n)),
            format!("{}", value(SweptTable::Multiple, n)),
            format!("{}", value(SweptTable::Single, n)),
        ]
    });
    csv::write_file(&path, &["size", "caching", "multiple", "single"], rows)
        .expect("write figure CSV");

    println!("Figure 15 — simulation wall time (s) by table size");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "size", "caching", "multiple", "single"
    );
    for &n in &NOMINAL_SIZES {
        println!(
            "{n:>8} {:>10.3} {:>10.3} {:>10.3}",
            value(SweptTable::Caching, n),
            value(SweptTable::Multiple, n),
            value(SweptTable::Single, n)
        );
    }
    println!("note: absolute seconds are this machine's; the paper's claim is the curve ordering");
    println!("wrote {}", path.display());
}
