//! Regenerates **Figure 15: Processing Time by Table Size**.
//!
//! Same sweep as Figures 13/14 but plotting the time each simulation
//! took — both wall-clock seconds and the simulating thread's CPU
//! seconds.
//!
//! Expected shape (paper): growing the single- and multiple-tables slows
//! the run down (more table work per request), while the caching-table
//! size has no significant impact. Absolute numbers are not comparable —
//! the paper measured a Java multi-agent testbed on Pentium-III hosts —
//! but the ordering of the three curves is the reproduced claim.
//!
//! Timing caveat: when the sweep ran with `--jobs > 1`, concurrent runs
//! share cores and `wall_secs` inflates under contention. The `cpu_*`
//! columns stay meaningful regardless; to get uncontended wall-clock
//! numbers, pass `--serial-timing` (re-runs the points sequentially for
//! timing only) or run the sweep with `--jobs 1`.

use adc_bench::sweep::{load_or_run_sweep_with, SweepOptions, SweptTable, NOMINAL_SIZES};
use adc_bench::BenchArgs;
use adc_metrics::csv;

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let options = SweepOptions::from(&args);
    let points = load_or_run_sweep_with(&args.out, args.scale, options).expect("sweep");

    let point = |table: SweptTable, nominal: usize| {
        points
            .iter()
            .find(|p| p.table == table && p.nominal_size == nominal)
            .expect("complete sweep")
    };

    let path = args
        .out
        .join(format!("fig15_time_by_size_{}.csv", args.scale.tag()));
    let rows = NOMINAL_SIZES.iter().map(|&n| {
        vec![
            n.to_string(),
            format!("{}", point(SweptTable::Caching, n).wall_secs),
            format!("{}", point(SweptTable::Multiple, n).wall_secs),
            format!("{}", point(SweptTable::Single, n).wall_secs),
            format!("{}", point(SweptTable::Caching, n).cpu_secs),
            format!("{}", point(SweptTable::Multiple, n).cpu_secs),
            format!("{}", point(SweptTable::Single, n).cpu_secs),
        ]
    });
    csv::write_file(
        &path,
        &[
            "size",
            "caching",
            "multiple",
            "single",
            "caching_cpu",
            "multiple_cpu",
            "single_cpu",
        ],
        rows,
    )
    .expect("write figure CSV");

    println!("Figure 15 — simulation time (s) by table size (wall | cpu)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "size", "caching", "multiple", "single", "caching*", "multiple*", "single*"
    );
    for &n in &NOMINAL_SIZES {
        println!(
            "{n:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            point(SweptTable::Caching, n).wall_secs,
            point(SweptTable::Multiple, n).wall_secs,
            point(SweptTable::Single, n).wall_secs,
            point(SweptTable::Caching, n).cpu_secs,
            point(SweptTable::Multiple, n).cpu_secs,
            point(SweptTable::Single, n).cpu_secs,
        );
    }
    println!("note: absolute seconds are this machine's; the paper's claim is the curve ordering");
    println!("      (* = per-thread CPU seconds, robust to parallel execution)");
    if options.jobs > 1 && !options.serial_timing {
        println!(
            "note: sweep ran with {} workers — wall_secs may be inflated by core sharing; \
             re-run with --serial-timing or --jobs 1 for clean wall-clock numbers",
            options.jobs
        );
    }
    println!("wrote {}", path.display());
}
