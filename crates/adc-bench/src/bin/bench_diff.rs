//! Perf-regression gate: compares a fresh `BENCH_adc.json` against the
//! committed baseline and exits non-zero when a gated field regressed.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> \
//!     [--throughput-tolerance <0..1>] [--warn-throughput] \
//!     [--min-shard-speedup <ratio>] \
//!     [--imbalance-tolerance <0..1>] [--warn-imbalance]
//! ```
//!
//! Exit codes: 0 = gate passed, 1 = regression detected, 2 = usage or
//! I/O error. Deterministic fields (counts, hit rate, hops, lint
//! surface, span attribution) must match the baseline exactly;
//! throughput fields — including the sharded executor's `shard.speedup`
//! ratio — get a relative tolerance (default 30%) and
//! `--warn-throughput` demotes their failures to warnings for noisy
//! shared runners. `--min-shard-speedup` additionally enforces an
//! absolute speedup floor (use `1.0` on a multi-core runner to require
//! that sharding actually pays off); the floor is never demoted to a
//! warning. The execution profiler's load-imbalance coefficient
//! (`shard_profile.imbalance_coefficient`, lower is better) may rise at
//! most `--imbalance-tolerance` (default 50%) over the baseline;
//! `--warn-imbalance` demotes that failure to a warning.

use adc_bench::{diff_reports, DiffConfig};

fn usage() -> String {
    "usage: bench_diff <baseline.json> <current.json> \
     [--throughput-tolerance <0..1>] [--warn-throughput] \
     [--min-shard-speedup <ratio>] \
     [--imbalance-tolerance <0..1>] [--warn-imbalance]"
        .to_string()
}

fn parse_args(
    args: impl IntoIterator<Item = String>,
) -> Result<(String, String, DiffConfig), String> {
    let mut paths = Vec::new();
    let mut config = DiffConfig::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--throughput-tolerance" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| "--throughput-tolerance requires a value".to_string())?;
                let tol: f64 = raw
                    .parse()
                    .map_err(|e| format!("bad --throughput-tolerance: {e}"))?;
                if !(0.0..1.0).contains(&tol) {
                    return Err("--throughput-tolerance must be in [0, 1)".to_string());
                }
                config.throughput_tolerance = tol;
            }
            "--warn-throughput" => config.warn_throughput = true,
            "--min-shard-speedup" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| "--min-shard-speedup requires a value".to_string())?;
                let floor: f64 = raw
                    .parse()
                    .map_err(|e| format!("bad --min-shard-speedup: {e}"))?;
                if !floor.is_finite() || floor < 0.0 {
                    return Err("--min-shard-speedup must be a non-negative ratio".to_string());
                }
                config.min_shard_speedup = Some(floor);
            }
            "--imbalance-tolerance" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| "--imbalance-tolerance requires a value".to_string())?;
                let tol: f64 = raw
                    .parse()
                    .map_err(|e| format!("bad --imbalance-tolerance: {e}"))?;
                if !tol.is_finite() || tol < 0.0 {
                    return Err("--imbalance-tolerance must be a non-negative ratio".to_string());
                }
                config.imbalance_tolerance = tol;
            }
            "--warn-imbalance" => config.warn_imbalance = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown argument {other:?}\n{}", usage()))
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        return Err(format!(
            "expected exactly two report paths, got {}\n{}",
            paths.len(),
            usage()
        ));
    }
    let current = paths.pop().unwrap_or_default();
    let baseline = paths.pop().unwrap_or_default();
    Ok((baseline, current, config))
}

fn main() {
    let (baseline_path, current_path, config) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);
    let report = match diff_reports(&baseline, &current, &config) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            std::process::exit(2);
        }
    };
    for warning in &report.warnings {
        println!("warning: {warning}");
    }
    if report.passed() {
        println!(
            "bench_diff: OK — {} gated fields match {} (tolerance {:.0}%{})",
            report.compared,
            baseline_path,
            100.0 * config.throughput_tolerance,
            if config.warn_throughput {
                ", throughput warn-only"
            } else {
                ""
            },
        );
        return;
    }
    for regression in &report.regressions {
        println!("REGRESSION: {regression}");
    }
    println!(
        "bench_diff: FAILED — {} regression(s) against {baseline_path}",
        report.regressions.len()
    );
    std::process::exit(1);
}
