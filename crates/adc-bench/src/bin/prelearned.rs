//! The paper's named future-work experiment: "Further tests, with a
//! repetition of the request pattern and a system with pre-learned
//! information shall be shown in the future work."
//!
//! Runs the workload cold, snapshots every proxy's learned tables to
//! disk, restores a warm cluster from those snapshots, and replays the
//! workload. The warm system should skip the learning dip entirely.

use adc_bench::output::{apply_args, print_run_summary};
use adc_bench::{BenchArgs, Experiment};
use adc_core::{AdcProxy, ProxySnapshot};
use adc_metrics::csv;
use adc_sim::Simulation;

fn main() {
    let args = BenchArgs::from_env();
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);

    eprintln!("cold run (learning from scratch)...");
    let sim = Simulation::new(experiment.adc_agents(), experiment.sim.clone());
    let (cold, trained) = sim.run_with_agents(experiment.workload.build());

    // Persist every proxy's learned state, then restore a warm cluster
    // from the files — the full save/load path, not just object reuse.
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let mut warm_agents: Vec<AdcProxy> = Vec::new();
    for agent in &trained {
        let snapshot = ProxySnapshot::capture(agent);
        let path = args.out.join(format!(
            "snapshot_{}_proxy{}.txt",
            args.scale.tag(),
            snapshot.proxy.raw()
        ));
        let file = std::fs::File::create(&path).expect("create snapshot file");
        snapshot.write_to(file).expect("write snapshot");
        let back = ProxySnapshot::read_from(std::fs::File::open(&path).expect("open snapshot"))
            .expect("read snapshot");
        warm_agents.push(back.restore().expect("restore proxy"));
    }

    eprintln!("warm run (pre-learned tables, same request pattern)...");
    let sim = Simulation::new(warm_agents, experiment.sim.clone());
    let warm = sim.run(experiment.workload.build());

    let path = args
        .out
        .join(format!("prelearned_{}.csv", args.scale.tag()));
    let mut cold_series = cold.hit_series.clone();
    cold_series.name = "cold".into();
    let mut warm_series = warm.hit_series.clone();
    warm_series.name = "prelearned".into();
    csv::write_series_file(&path, "requests", &[&cold_series, &warm_series]).expect("write CSV");

    println!("Pre-learned system vs cold start (same request pattern)");
    print_run_summary("cold start", &cold);
    print_run_summary("pre-learned", &warm);
    println!(
        "fill-phase hit rate: cold={:.4} prelearned={:.4} — the warm system hits\n\
         immediately on objects it already knows",
        cold.phases[0].hit_rate(),
        warm.phases[0].hit_rate()
    );
    println!(
        "overall: cold={:.4} prelearned={:.4} ({:+.4})",
        cold.hit_rate(),
        warm.hit_rate(),
        warm.hit_rate() - cold.hit_rate()
    );
    println!("wrote {}", path.display());
}
