//! Live cluster tracing smoke: replays a request stream through a real
//! 4-proxy TCP cluster with tracing on, scrapes every node's span ring,
//! merges the scrapes onto the collector timeline and writes the merged
//! chrome trace plus the per-segment latency table.
//!
//! ```text
//! cargo run -p adc-bench --release --bin net_trace -- --scale ci --out results
//! ```
//!
//! Outputs:
//!
//! * `results/net_trace_<scale>.json` — merged chrome `trace_event`
//!   file, one lane per node (client, `proxy-0..3`, origin);
//! * `results/net_trace_<scale>.txt` — per-segment latency table.
//!
//! The binary hard-fails unless the merge shows one lane per cluster
//! node and at least one multi-hop trace crossing two or more nodes —
//! the same assertions the CI smoke leg relies on.

use adc_bench::{live_workload, replay_live, BenchArgs, LIVE_PROXIES};
use adc_obs::validate_json;

fn main() {
    let args = BenchArgs::from_env();
    // 600 requests at ci scale: a few seconds of live TCP traffic.
    let requests = ((6000.0 * args.scale.factor()) as u64).max(60);
    eprintln!(
        "net_trace: replaying {requests} requests through a traced {LIVE_PROXIES}-proxy cluster..."
    );
    let replay = replay_live(live_workload(requests), Some(8192)).expect("live traced replay");
    let merged = replay.merged.as_ref().expect("traced replay merges");

    // One lane per cluster node (client + proxies + origin), and the
    // workload's cold misses must show up as multi-hop traces.
    assert_eq!(replay.completed, requests, "every request completes");
    assert_eq!(replay.spans_dropped, 0, "ring capacity covers the run");
    let node_lanes = merged.lanes.len().saturating_sub(1); // client lane aside
    assert!(
        node_lanes >= LIVE_PROXIES as usize,
        "expected at least {LIVE_PROXIES} node lanes, got {node_lanes}"
    );
    assert!(
        merged.cross_node_traces >= 1,
        "no trace crossed two nodes — forwarding is not being traced"
    );

    let chrome = merged.to_chrome_trace();
    validate_json(&chrome).expect("merged chrome trace is valid JSON");

    std::fs::create_dir_all(&args.out).expect("create output dir");
    let tag = args.scale.tag();
    let json_path = args.out.join(format!("net_trace_{tag}.json"));
    let table_path = args.out.join(format!("net_trace_{tag}.txt"));
    std::fs::write(&json_path, &chrome).expect("write chrome trace");
    std::fs::write(&table_path, merged.segment_table()).expect("write segment table");

    println!(
        "net_trace: merged {} traces ({} cross-node) across {} lanes",
        merged.traces,
        merged.cross_node_traces,
        merged.lanes.len()
    );
    println!(
        "  completed        : {}/{} ({} hits, {:.0} req/s)",
        replay.completed,
        replay.requests,
        replay.hits,
        replay.requests_per_sec()
    );
    println!("  clamped spans    : {}", merged.clamped);
    print!("{}", merged.segment_table());
    println!("wrote {}", json_path.display());
    println!("wrote {}", table_path.display());
}
