//! Ablation A4: **proxy churn** — the paper's unexplored "changes of the
//! infrastructure" parameter.
//!
//! Restarts proxies mid-run (they forget tables and caches) and measures
//! how each scheme's hit rate degrades and recovers. CARP's mapping is
//! intrinsic (the hash function), so it only refills caches; ADC must
//! also re-learn its mapping tables through random search.

use adc_bench::output::{apply_args, print_run_summary};
use adc_bench::{BenchArgs, Experiment};
use adc_core::ProxyId;
use adc_metrics::csv;
use adc_sim::{ChurnEvent, Simulation};

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);
    let total = experiment.workload.total_requests();

    // Restart two of five proxies mid-way through request phase I and
    // one more at the start of phase II.
    let churn = vec![
        ChurnEvent {
            after_completed: total * 4 / 10,
            proxy: ProxyId::new(0),
        },
        ChurnEvent {
            after_completed: total * 45 / 100,
            proxy: ProxyId::new(1),
        },
        ChurnEvent {
            after_completed: total * 65 / 100,
            proxy: ProxyId::new(2),
        },
    ];

    let mut sim_config = experiment.sim.clone();
    sim_config.churn = churn.clone();

    eprintln!("ablation A4: ADC under churn...");
    let adc = Simulation::new(experiment.adc_agents(), sim_config.clone())
        .run(experiment.workload.build());
    eprintln!("CARP under churn...");
    let carp =
        Simulation::new(experiment.carp_agents(), sim_config).run(experiment.workload.build());
    eprintln!("ADC baseline without churn...");
    let adc_clean = experiment.run_adc();

    let path = args
        .out
        .join(format!("ablation_churn_{}.csv", args.scale.tag()));
    let mut adc_series = adc.hit_series.clone();
    adc_series.name = "adc_churn".into();
    let mut carp_series = carp.hit_series.clone();
    carp_series.name = "hashing_churn".into();
    let mut clean_series = adc_clean.hit_series.clone();
    clean_series.name = "adc_clean".into();
    csv::write_series_file(
        &path,
        "requests",
        &[&adc_series, &carp_series, &clean_series],
    )
    .expect("write ablation CSV");

    println!("Ablation A4 — proxy churn ({} restarts)", churn.len());
    print_run_summary("ADC with churn", &adc);
    print_run_summary("Hashing (CARP) with churn", &carp);
    print_run_summary("ADC without churn", &adc_clean);
    println!(
        "hit-rate cost of churn: adc={:+.4} hashing-vs-clean-adc={:+.4}",
        adc.hit_rate() - adc_clean.hit_rate(),
        carp.hit_rate() - adc_clean.hit_rate(),
    );
    println!("wrote {}", path.display());
}
