//! Ablation A6: **number of proxies** — a declared parameter of the
//! paper's testbed ("we are able to run any number of proxy agents")
//! that its evaluation never sweeps.
//!
//! Scales the cluster from 2 to 10 proxies while keeping the *aggregate*
//! cache budget fixed (so the experiment isolates coordination cost from
//! raw capacity): more proxies = more places a random search can fail,
//! but also more parallel entry points. The ten runs (ADC + CARP per
//! cluster size) execute on the `--jobs` worker pool against one shared
//! trace.

use adc_baselines::CarpProxy;
use adc_bench::output::apply_args;
use adc_bench::parallel::{run_jobs, ExperimentJob};
use adc_bench::{BenchArgs, Experiment};
use adc_core::{AdcProxy, ProxyId};
use adc_metrics::csv;
use adc_sim::SimReport;

const CLUSTER_SIZES: [u32; 5] = [2, 3, 5, 8, 10];

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let base = apply_args(Experiment::at_scale(args.scale), &args);
    // The paper's aggregate budget: 5 proxies × the per-proxy default.
    let aggregate_cache = base.adc.cache_capacity * 5;
    let aggregate_single = base.adc.single_capacity * 5;
    let aggregate_multiple = base.adc.multiple_capacity * 5;
    let trace = base.trace();

    let mut jobs: Vec<ExperimentJob<SimReport>> = Vec::new();
    for n in CLUSTER_SIZES {
        let adc_config = adc_core::AdcConfig::builder()
            .single_capacity((aggregate_single / n as usize).max(16))
            .multiple_capacity((aggregate_multiple / n as usize).max(16))
            .cache_capacity((aggregate_cache / n as usize).max(16))
            .max_hops(base.adc.max_hops)
            .build();
        let (e, t) = (base.clone(), trace.clone());
        jobs.push(ExperimentJob::new(format!("adc n={n}"), move || {
            let agents: Vec<AdcProxy> = (0..n)
                .map(|i| AdcProxy::new(ProxyId::new(i), n, adc_config.clone()))
                .collect();
            e.run_agents_on(agents, &t).0
        }));

        let carp_cache = (aggregate_cache / n as usize).max(16);
        let (e, t) = (base.clone(), trace.clone());
        jobs.push(ExperimentJob::new(format!("carp n={n}"), move || {
            let agents: Vec<CarpProxy> = (0..n)
                .map(|i| CarpProxy::new(ProxyId::new(i), n, carp_cache))
                .collect();
            e.run_agents_on(agents, &t).0
        }));
    }
    eprintln!(
        "running {} cluster-size points on {} worker{}...",
        jobs.len(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let reports = run_jobs(jobs, args.jobs);

    println!("Ablation A6 — cluster size (aggregate table budget held fixed)");
    println!(
        "{:>8} | {:>9} {:>11} {:>7} | {:>9} {:>11} {:>7}",
        "proxies", "adc_hit", "adc_p2", "hops", "carp_hit", "carp_p2", "hops"
    );
    let mut rows = Vec::new();
    for (i, &n) in CLUSTER_SIZES.iter().enumerate() {
        let adc = &reports[2 * i];
        let carp = &reports[2 * i + 1];
        println!(
            "{n:>8} | {:>9.4} {:>11.4} {:>7.3} | {:>9.4} {:>11.4} {:>7.3}",
            adc.hit_rate(),
            adc.phases[2].hit_rate(),
            adc.mean_hops(),
            carp.hit_rate(),
            carp.phases[2].hit_rate(),
            carp.mean_hops()
        );
        rows.push(vec![
            n.to_string(),
            format!("{}", adc.hit_rate()),
            format!("{}", adc.phases[2].hit_rate()),
            format!("{}", adc.mean_hops()),
            format!("{}", carp.hit_rate()),
            format!("{}", carp.phases[2].hit_rate()),
            format!("{}", carp.mean_hops()),
        ]);
    }

    let path = args
        .out
        .join(format!("ablation_proxies_{}.csv", args.scale.tag()));
    csv::write_file(
        &path,
        &[
            "proxies",
            "adc_hit_rate",
            "adc_phase2",
            "adc_hops",
            "carp_hit_rate",
            "carp_phase2",
            "carp_hops",
        ],
        rows,
    )
    .expect("write ablation CSV");
    println!("wrote {}", path.display());
}
