//! Ablation A5: **bounded three-table ADC vs the unlimited predecessor**
//! (paper §II.3/§III.3: "In our first attempt ... the table to grow
//! infinitely, ... which usually leads to out of memory problems").
//!
//! Runs both designs over the headline workload and reports hit rate,
//! hops and — the point of the bounded design — mapping-table memory.
//! The two runs execute on the `--jobs` worker pool against one shared
//! trace.

use adc_bench::output::{apply_args, print_run_summary};
use adc_bench::parallel::{run_jobs, ExperimentJob};
use adc_bench::{BenchArgs, Experiment};
use adc_core::{ProxyId, UnlimitedAdcProxy};
use adc_metrics::csv;
use adc_sim::SimReport;

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);
    let trace = experiment.trace();
    let bounded_entries = (experiment.adc.single_capacity
        + experiment.adc.multiple_capacity
        + experiment.adc.cache_capacity) as u64
        * u64::from(experiment.proxies);

    eprintln!(
        "ablation A5: bounded vs unlimited ADC on {} worker{}...",
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let jobs: Vec<ExperimentJob<(SimReport, u64)>> = vec![
        {
            let (e, t) = (experiment.clone(), trace.clone());
            ExperimentJob::new("bounded", move || (e.run_adc_on(&t), bounded_entries))
        },
        {
            let (e, t) = (experiment.clone(), trace.clone());
            ExperimentJob::new("unlimited", move || {
                let agents: Vec<UnlimitedAdcProxy> = (0..e.proxies)
                    .map(|i| {
                        UnlimitedAdcProxy::new(
                            ProxyId::new(i),
                            e.proxies,
                            e.adc.cache_capacity,
                            e.adc.max_hops,
                        )
                    })
                    .collect();
                let (report, agents) = e.run_agents_on(agents, &t);
                let entries: u64 = agents.iter().map(|a| a.mapping_entries() as u64).sum();
                (report, entries)
            })
        },
    ];
    let mut results = run_jobs(jobs, args.jobs).into_iter();
    let (bounded, bounded_entries) = results.next().expect("bounded run");
    let (unlimited, unlimited_entries) = results.next().expect("unlimited run");

    let path = args
        .out
        .join(format!("ablation_unlimited_{}.csv", args.scale.tag()));
    let rows = vec![
        vec![
            "bounded".to_string(),
            format!("{}", bounded.hit_rate()),
            format!("{}", bounded.phases[2].hit_rate()),
            format!("{}", bounded.mean_hops()),
            bounded_entries.to_string(),
        ],
        vec![
            "unlimited".to_string(),
            format!("{}", unlimited.hit_rate()),
            format!("{}", unlimited.phases[2].hit_rate()),
            format!("{}", unlimited.mean_hops()),
            unlimited_entries.to_string(),
        ],
    ];
    csv::write_file(
        &path,
        &[
            "design",
            "hit_rate",
            "phase2_hit_rate",
            "mean_hops",
            "mapping_entries",
        ],
        rows,
    )
    .expect("write ablation CSV");

    println!("Ablation A5 — bounded tables vs unlimited mapping");
    print_run_summary("ADC (bounded three tables)", &bounded);
    print_run_summary("ADC (unlimited mapping)", &unlimited);
    println!(
        "mapping memory: bounded = {} entries (fixed), unlimited = {} entries (grows with\n\
         every distinct object ever seen — the paper's out-of-memory problem)",
        bounded_entries, unlimited_entries
    );
    println!(
        "phase II hit rate: bounded={:.4} unlimited={:.4} — the bounded design holds the\n\
         level the unlimited one reaches, with {}x less mapping state",
        bounded.phases[2].hit_rate(),
        unlimited.phases[2].hit_rate(),
        unlimited_entries / bounded_entries.max(1)
    );
    println!("wrote {}", path.display());
}
