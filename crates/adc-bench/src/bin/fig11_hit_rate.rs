//! Regenerates **Figure 11: Hit Rate — ADC vs. Hashing**.
//!
//! Runs the paper's headline comparison: 5 ADC proxies vs 5 CARP-style
//! hashing proxies over the three-phase Polygraph-like workload, plotting
//! the hit rate as a moving average over the last 5000 requests.
//!
//! Expected shape (paper): a fill phase with near-zero hit rate, a
//! learning phase where ADC "drags after" hashing, then ADC catching up
//! and slightly outperforming the hashing scheme in the replayed phase.

use adc_bench::observe::run_adc_observed;
use adc_bench::output::{apply_args, named, print_run_summary, print_series_table};
use adc_bench::{BenchArgs, Experiment};
use adc_metrics::csv;

fn main() {
    let args = BenchArgs::from_env();
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);
    eprintln!(
        "figure 11: {} requests, 5 proxies, tables {}k/{}k/{}k — running ADC...",
        experiment.workload.total_requests(),
        experiment.adc.single_capacity / 1000,
        experiment.adc.multiple_capacity / 1000,
        experiment.adc.cache_capacity / 1000,
    );
    let adc = run_adc_observed(&experiment, &args);
    eprintln!("running CARP hashing baseline...");
    let carp = experiment.run_carp();

    let adc_series = named(&adc.hit_series, "adc");
    let carp_series = named(&carp.hit_series, "hashing");
    let path = args
        .out
        .join(format!("fig11_hit_rate_{}.csv", args.scale.tag()));
    csv::write_series_file(&path, "requests", &[&adc_series, &carp_series])
        .expect("write figure CSV");

    println!(
        "Figure 11 — hit rate (moving average over last {} requests)",
        experiment.sim.hit_window
    );
    print_series_table("requests", &[&adc_series, &carp_series], 40);
    println!();
    print_run_summary("ADC", &adc);
    print_run_summary("Hashing (CARP)", &carp);
    println!(
        "steady-state (phase II): adc={:.4} hashing={:.4} (adc - hashing = {:+.4})",
        adc.phases[2].hit_rate(),
        carp.phases[2].hit_rate(),
        adc.phases[2].hit_rate() - carp.phases[2].hit_rate()
    );
    println!("wrote {}", path.display());
}
