//! Regenerates **Figure 14: Hops by Table Size**.
//!
//! Same sweep as Figure 13 but plotting the mean hops per request.
//!
//! Expected shape (paper): mild, mostly declining curves — the whole
//! spread is only about a quarter hop against an average of ~7; the
//! single-table shows the steepest decline (bigger single-table = more
//! learned forwarding information retained).

use adc_bench::sweep::{load_or_run_sweep_with, SweepOptions, SweptTable, NOMINAL_SIZES};
use adc_bench::BenchArgs;
use adc_metrics::csv;

fn main() {
    let args = BenchArgs::from_env();
    adc_bench::observe_default_run(&args);
    let points =
        load_or_run_sweep_with(&args.out, args.scale, SweepOptions::from(&args)).expect("sweep");

    let value = |table: SweptTable, nominal: usize| {
        points
            .iter()
            .find(|p| p.table == table && p.nominal_size == nominal)
            .map(|p| p.mean_hops)
            .expect("complete sweep")
    };

    let path = args
        .out
        .join(format!("fig14_hops_by_size_{}.csv", args.scale.tag()));
    let rows = NOMINAL_SIZES.iter().map(|&n| {
        vec![
            n.to_string(),
            format!("{}", value(SweptTable::Caching, n)),
            format!("{}", value(SweptTable::Multiple, n)),
            format!("{}", value(SweptTable::Single, n)),
        ]
    });
    csv::write_file(&path, &["size", "caching", "multiple", "single"], rows)
        .expect("write figure CSV");

    println!("Figure 14 — mean hops by table size (varied table; others at defaults)");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "size", "caching", "multiple", "single"
    );
    for &n in &NOMINAL_SIZES {
        println!(
            "{n:>8} {:>10.4} {:>10.4} {:>10.4}",
            value(SweptTable::Caching, n),
            value(SweptTable::Multiple, n),
            value(SweptTable::Single, n)
        );
    }
    println!("wrote {}", path.display());
}
