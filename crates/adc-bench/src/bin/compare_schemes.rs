//! Cross-scheme comparison: every distributed-caching design in this
//! repository over the same workload and cache budget.
//!
//! ADC (bounded and unlimited), SOAP (the per-category predecessor),
//! CARP/HRW hash routing, consistent-hash routing, a hierarchical caching
//! tree, and ADC's cache-everything LRU ablation — one row each. The
//! seven runs are independent, so they execute on the `--jobs` worker
//! pool against one shared trace; row order is fixed regardless of which
//! run finishes first.

use adc_baselines::{ConsistentRing, HashingProxy, HierarchyProxy, SoapProxy};
use adc_bench::output::apply_args;
use adc_bench::parallel::{run_jobs, ExperimentJob};
use adc_bench::{BenchArgs, Experiment};
use adc_core::{CachePolicy, ProxyId, UnlimitedAdcProxy};
use adc_metrics::csv;
use adc_sim::SimReport;

struct Row {
    name: &'static str,
    report: SimReport,
}

fn main() {
    let args = BenchArgs::from_env();
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);
    let n = experiment.proxies;
    let cache = experiment.adc.cache_capacity;
    let trace = experiment.trace();

    let mut jobs: Vec<ExperimentJob<Row>> = Vec::new();
    let mut push_job = |name: &'static str, run: Box<dyn FnOnce() -> SimReport + Send>| {
        jobs.push(ExperimentJob::new(name, move || Row {
            name,
            report: run(),
        }));
    };

    {
        let (e, t) = (experiment.clone(), trace.clone());
        push_job("adc", Box::new(move || e.run_adc_on(&t)));
    }
    {
        let (e, t) = (experiment.clone(), trace.clone());
        let mut lru_cfg = experiment.adc.clone();
        lru_cfg.policy = CachePolicy::LruAll;
        push_job("adc_lru", Box::new(move || e.run_adc_with_on(lru_cfg, &t)));
    }
    {
        let (e, t) = (experiment.clone(), trace.clone());
        let max_hops = experiment.adc.max_hops;
        push_job(
            "adc_unlimited",
            Box::new(move || {
                let agents: Vec<UnlimitedAdcProxy> = (0..n)
                    .map(|i| UnlimitedAdcProxy::new(ProxyId::new(i), n, cache, max_hops))
                    .collect();
                e.run_agents_on(agents, &t).0
            }),
        );
    }
    {
        let (e, t) = (experiment.clone(), trace.clone());
        let max_hops = experiment.adc.max_hops;
        push_job(
            "soap",
            Box::new(move || {
                let agents: Vec<SoapProxy> = (0..n)
                    .map(|i| SoapProxy::new(ProxyId::new(i), n, 1_024, cache, max_hops))
                    .collect();
                e.run_agents_on(agents, &t).0
            }),
        );
    }
    {
        let (e, t) = (experiment.clone(), trace.clone());
        push_job("carp", Box::new(move || e.run_carp_on(&t)));
    }
    {
        let (e, t) = (experiment.clone(), trace.clone());
        push_job(
            "consistent",
            Box::new(move || {
                let agents: Vec<HashingProxy<ConsistentRing>> = (0..n)
                    .map(|i| {
                        HashingProxy::with_owner_map(
                            ProxyId::new(i),
                            ConsistentRing::new((0..n).map(ProxyId::new), 128),
                            cache,
                        )
                    })
                    .collect();
                e.run_agents_on(agents, &t).0
            }),
        );
    }
    {
        let (e, t) = (experiment, trace);
        push_job(
            "hierarchy",
            Box::new(move || e.run_agents_on(HierarchyProxy::binary_tree(n, cache), &t).0),
        );
    }

    eprintln!(
        "running {} schemes on {} worker{}...",
        jobs.len(),
        args.jobs,
        if args.jobs == 1 { "" } else { "s" }
    );
    let rows = run_jobs(jobs, args.jobs);

    println!(
        "\n{:<14} {:>9} {:>11} {:>9} {:>12} {:>10}",
        "scheme", "hit_rate", "phase2_hit", "hops", "origin_gets", "messages"
    );
    let mut csv_rows = Vec::new();
    for row in &rows {
        let r = &row.report;
        let origin = r.cluster_stats().origin_forwards();
        println!(
            "{:<14} {:>9.4} {:>11.4} {:>9.3} {:>12} {:>10}",
            row.name,
            r.hit_rate(),
            r.phases[2].hit_rate(),
            r.mean_hops(),
            origin,
            r.messages_delivered
        );
        csv_rows.push(vec![
            row.name.to_string(),
            format!("{}", r.hit_rate()),
            format!("{}", r.phases[2].hit_rate()),
            format!("{}", r.mean_hops()),
            origin.to_string(),
            r.messages_delivered.to_string(),
        ]);
    }
    let path = args
        .out
        .join(format!("compare_schemes_{}.csv", args.scale.tag()));
    csv::write_file(
        &path,
        &[
            "scheme",
            "hit_rate",
            "phase2_hit_rate",
            "mean_hops",
            "origin_fetches",
            "messages",
        ],
        csv_rows,
    )
    .expect("write comparison CSV");
    println!("\nwrote {}", path.display());
}
