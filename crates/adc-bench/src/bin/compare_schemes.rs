//! Cross-scheme comparison: every distributed-caching design in this
//! repository over the same workload and cache budget.
//!
//! ADC (bounded and unlimited), SOAP (the per-category predecessor),
//! CARP/HRW hash routing, consistent-hash routing, a hierarchical caching
//! tree, and ADC's cache-everything LRU ablation — one row each.

use adc_bench::output::apply_args;
use adc_bench::{BenchArgs, Experiment};
use adc_baselines::{ConsistentRing, HashingProxy, HierarchyProxy, SoapProxy};
use adc_core::{CachePolicy, ProxyId, UnlimitedAdcProxy};
use adc_metrics::csv;
use adc_sim::{SimReport, Simulation};

struct Row {
    name: &'static str,
    report: SimReport,
}

fn main() {
    let args = BenchArgs::from_env();
    let experiment = apply_args(Experiment::at_scale(args.scale), &args);
    let n = experiment.proxies;
    let cache = experiment.adc.cache_capacity;
    let mut rows = Vec::new();

    eprintln!("running ADC...");
    rows.push(Row {
        name: "adc",
        report: experiment.run_adc(),
    });

    eprintln!("running ADC (LRU-everything ablation)...");
    let mut lru_cfg = experiment.adc.clone();
    lru_cfg.policy = CachePolicy::LruAll;
    rows.push(Row {
        name: "adc_lru",
        report: experiment.run_adc_with(lru_cfg),
    });

    eprintln!("running ADC (unlimited mapping)...");
    let agents: Vec<UnlimitedAdcProxy> = (0..n)
        .map(|i| UnlimitedAdcProxy::new(ProxyId::new(i), n, cache, experiment.adc.max_hops))
        .collect();
    rows.push(Row {
        name: "adc_unlimited",
        report: Simulation::new(agents, experiment.sim.clone())
            .run(experiment.workload.build()),
    });

    eprintln!("running SOAP (per-category predecessor)...");
    let soap_agents: Vec<SoapProxy> = (0..n)
        .map(|i| SoapProxy::new(ProxyId::new(i), n, 1_024, cache, experiment.adc.max_hops))
        .collect();
    rows.push(Row {
        name: "soap",
        report: Simulation::new(soap_agents, experiment.sim.clone())
            .run(experiment.workload.build()),
    });

    eprintln!("running CARP (HRW hashing)...");
    rows.push(Row {
        name: "carp",
        report: experiment.run_carp(),
    });

    eprintln!("running consistent-hash ring...");
    let ring_agents: Vec<HashingProxy<ConsistentRing>> = (0..n)
        .map(|i| {
            HashingProxy::with_owner_map(
                ProxyId::new(i),
                ConsistentRing::new((0..n).map(ProxyId::new), 128),
                cache,
            )
        })
        .collect();
    rows.push(Row {
        name: "consistent",
        report: Simulation::new(ring_agents, experiment.sim.clone())
            .run(experiment.workload.build()),
    });

    eprintln!("running hierarchical tree...");
    let tree = HierarchyProxy::binary_tree(n, cache);
    rows.push(Row {
        name: "hierarchy",
        report: Simulation::new(tree, experiment.sim.clone())
            .run(experiment.workload.build()),
    });

    println!(
        "\n{:<14} {:>9} {:>11} {:>9} {:>12} {:>10}",
        "scheme", "hit_rate", "phase2_hit", "hops", "origin_gets", "messages"
    );
    let mut csv_rows = Vec::new();
    for row in &rows {
        let r = &row.report;
        let origin = r.cluster_stats().origin_forwards();
        println!(
            "{:<14} {:>9.4} {:>11.4} {:>9.3} {:>12} {:>10}",
            row.name,
            r.hit_rate(),
            r.phases[2].hit_rate(),
            r.mean_hops(),
            origin,
            r.messages_delivered
        );
        csv_rows.push(vec![
            row.name.to_string(),
            format!("{}", r.hit_rate()),
            format!("{}", r.phases[2].hit_rate()),
            format!("{}", r.mean_hops()),
            origin.to_string(),
            r.messages_delivered.to_string(),
        ]);
    }
    let path = args
        .out
        .join(format!("compare_schemes_{}.csv", args.scale.tag()));
    csv::write_file(
        &path,
        &[
            "scheme",
            "hit_rate",
            "phase2_hit_rate",
            "mean_hops",
            "origin_fetches",
            "messages",
        ],
        csv_rows,
    )
    .expect("write comparison CSV");
    println!("\nwrote {}", path.display());
}
