//! Minimal command-line parsing shared by the figure binaries.
//!
//! Every binary accepts:
//!
//! * `--scale ci|full|<factor>` — experiment scale (default `ci`);
//! * `--out <dir>` — output directory for CSV files (default `results`);
//! * `--seed <u64>` — workload/simulator seed override.

use crate::scale::Scale;
use std::path::PathBuf;

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// Output directory.
    pub out: PathBuf,
    /// Optional seed override.
    pub seed: Option<u64>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::default(),
            out: PathBuf::from("results"),
            seed: None,
        }
    }
}

impl BenchArgs {
    /// Parses an argument list (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or bad values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_for = |flag: &str| {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--scale" => out.scale = value_for("--scale")?.parse()?,
                "--out" => out.out = PathBuf::from(value_for("--out")?),
                "--seed" => {
                    out.seed = Some(
                        value_for("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?,
                    )
                }
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown argument {other:?}\n{}", Self::usage())),
            }
        }
        Ok(out)
    }

    /// Parses from the process arguments, exiting with a message on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Usage text.
    pub fn usage() -> String {
        "usage: <figure-bin> [--scale ci|full|<factor>] [--out <dir>] [--seed <u64>]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, BenchArgs::default());
        assert_eq!(a.out, PathBuf::from("results"));
    }

    #[test]
    fn full_flags() {
        let a = parse(&["--scale", "full", "--out", "/tmp/x", "--seed", "7"]).unwrap();
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.seed, Some(7));
    }

    #[test]
    fn custom_scale() {
        let a = parse(&["--scale", "0.25"]).unwrap();
        assert_eq!(a.scale, Scale::Custom(0.25));
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "nope"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
