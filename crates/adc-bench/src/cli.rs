//! Minimal command-line parsing shared by the figure binaries.
//!
//! Every binary accepts:
//!
//! * `--scale ci|full|<factor>` — experiment scale (default `ci`);
//! * `--out <dir>` — output directory for CSV files (default `results`);
//! * `--seed <u64>` — workload/simulator seed override;
//! * `--jobs <n>` — worker threads for independent runs (default: the
//!   machine's available parallelism);
//! * `--serial-timing` — after a parallel sweep, re-run the
//!   timing-sensitive points sequentially so wall-clock numbers are not
//!   inflated by core sharing (Figure 15);
//! * `--events <file>` — capture the typed simulation event stream of
//!   the main ADC run as JSON-Lines;
//! * `--chrome-trace <file>` — export the same stream as a
//!   `chrome://tracing` / Perfetto `trace_event` file;
//! * `--convergence` — sample mapping-table convergence (agreement,
//!   remaps, churn) during the main ADC run;
//! * `--metrics <file>` — fold the main ADC run's events into the
//!   per-proxy metrics registry and write the Prometheus text
//!   exposition to this file;
//! * `--shards <n>` — run the main ADC simulation on `n` worker shards
//!   (the deterministic barrier-synchronized executor; `1`, the
//!   default, uses the single-threaded runner);
//! * `--spans <file.json>` — attach the causal flow-span recorder to the
//!   main ADC run and write the per-segment / per-proxy latency
//!   attribution report (single-threaded runs only);
//! * `--profile-shards` — collect the sharded executor's wall-clock
//!   profile (per-shard drain time, barrier-wait split, imbalance) on
//!   the main run; with `--chrome-trace` the shard lanes are rendered
//!   instead of the single-threaded event timeline.

use crate::parallel::default_jobs;
use crate::scale::Scale;
use std::path::PathBuf;

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// Output directory.
    pub out: PathBuf,
    /// Optional seed override.
    pub seed: Option<u64>,
    /// Worker threads for independent simulation runs.
    pub jobs: usize,
    /// Re-run timing-sensitive points serially after a parallel sweep.
    pub serial_timing: bool,
    /// Write the main ADC run's event stream to this JSON-Lines file.
    pub events: Option<PathBuf>,
    /// Write the main ADC run's events as a `chrome://tracing` file.
    pub chrome_trace: Option<PathBuf>,
    /// Sample mapping-table convergence during the main ADC run.
    pub convergence: bool,
    /// Write the main ADC run's Prometheus text exposition to this file.
    pub metrics: Option<PathBuf>,
    /// Worker shards for the main ADC simulation (1 = single-threaded).
    pub shards: usize,
    /// Write the main ADC run's flow-span attribution report (JSON) to
    /// this file. Single-threaded runs only.
    pub spans: Option<PathBuf>,
    /// Collect the sharded executor's wall-clock execution profile on
    /// the main run.
    pub profile_shards: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::default(),
            out: PathBuf::from("results"),
            seed: None,
            jobs: default_jobs(),
            serial_timing: false,
            events: None,
            chrome_trace: None,
            convergence: false,
            metrics: None,
            shards: 1,
            spans: None,
            profile_shards: false,
        }
    }
}

impl BenchArgs {
    /// Parses an argument list (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or bad values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_for = |flag: &str| {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--scale" => out.scale = value_for("--scale")?.parse()?,
                "--out" => out.out = PathBuf::from(value_for("--out")?),
                "--seed" => {
                    out.seed = Some(
                        value_for("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?,
                    )
                }
                "--jobs" => {
                    let jobs: usize = value_for("--jobs")?
                        .parse()
                        .map_err(|e| format!("bad --jobs: {e}"))?;
                    if jobs == 0 {
                        return Err("--jobs must be at least 1".to_string());
                    }
                    out.jobs = jobs;
                }
                "--serial-timing" => out.serial_timing = true,
                "--events" => out.events = Some(PathBuf::from(value_for("--events")?)),
                "--chrome-trace" => {
                    out.chrome_trace = Some(PathBuf::from(value_for("--chrome-trace")?))
                }
                "--convergence" => out.convergence = true,
                "--metrics" => out.metrics = Some(PathBuf::from(value_for("--metrics")?)),
                "--shards" => {
                    let shards: usize = value_for("--shards")?
                        .parse()
                        .map_err(|e| format!("bad --shards: {e}"))?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".to_string());
                    }
                    out.shards = shards;
                }
                "--spans" => out.spans = Some(PathBuf::from(value_for("--spans")?)),
                "--profile-shards" => out.profile_shards = true,
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown argument {other:?}\n{}", Self::usage())),
            }
        }
        Ok(out)
    }

    /// Parses from the process arguments, exiting with a message on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Usage text.
    pub fn usage() -> String {
        "usage: <figure-bin> [--scale ci|full|<factor>] [--out <dir>] [--seed <u64>] \
         [--jobs <n>] [--serial-timing] [--events <file.jsonl>] \
         [--chrome-trace <file.json>] [--convergence] [--metrics <file.prom>] \
         [--shards <n>] [--spans <file.json>] [--profile-shards]"
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, BenchArgs::default());
        assert_eq!(a.out, PathBuf::from("results"));
        assert!(a.jobs >= 1);
        assert!(!a.serial_timing);
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--scale",
            "full",
            "--out",
            "/tmp/x",
            "--seed",
            "7",
            "--jobs",
            "3",
            "--serial-timing",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.jobs, 3);
        assert!(a.serial_timing);
    }

    #[test]
    fn custom_scale() {
        let a = parse(&["--scale", "0.25"]).unwrap();
        assert_eq!(a.scale, Scale::Custom(0.25));
    }

    #[test]
    fn jobs_flag() {
        assert_eq!(parse(&["--jobs", "1"]).unwrap().jobs, 1);
        assert_eq!(parse(&["--jobs", "16"]).unwrap().jobs, 16);
    }

    #[test]
    fn observability_flags() {
        let a = parse(&[
            "--events",
            "/tmp/ev.jsonl",
            "--chrome-trace",
            "/tmp/trace.json",
            "--convergence",
            "--metrics",
            "/tmp/m.prom",
        ])
        .unwrap();
        assert_eq!(a.events, Some(PathBuf::from("/tmp/ev.jsonl")));
        assert_eq!(a.chrome_trace, Some(PathBuf::from("/tmp/trace.json")));
        assert!(a.convergence);
        assert_eq!(a.metrics, Some(PathBuf::from("/tmp/m.prom")));
        // Off by default — the unobserved hot path must stay the default.
        let d = parse(&[]).unwrap();
        assert_eq!(d.events, None);
        assert_eq!(d.chrome_trace, None);
        assert!(!d.convergence);
        assert_eq!(d.metrics, None);
    }

    #[test]
    fn shards_flag() {
        assert_eq!(parse(&[]).unwrap().shards, 1);
        assert_eq!(parse(&["--shards", "1"]).unwrap().shards, 1);
        assert_eq!(parse(&["--shards", "4"]).unwrap().shards, 4);
        assert_eq!(parse(&["--shards", "7"]).unwrap().shards, 7);
    }

    #[test]
    fn span_and_profile_flags() {
        let a = parse(&[
            "--spans",
            "/tmp/spans.json",
            "--profile-shards",
            "--shards",
            "4",
        ])
        .unwrap();
        assert_eq!(a.spans, Some(PathBuf::from("/tmp/spans.json")));
        assert!(a.profile_shards);
        assert_eq!(a.shards, 4);
        // Off by default — the unobserved hot path must stay the default.
        let d = parse(&[]).unwrap();
        assert_eq!(d.spans, None);
        assert!(!d.profile_shards);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--events"]).is_err());
        assert!(parse(&["--chrome-trace"]).is_err());
        assert!(parse(&["--metrics"]).is_err());
        assert!(parse(&["--scale", "nope"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "two"]).is_err());
        assert!(parse(&["--shards"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "four"]).is_err());
        assert!(parse(&["--spans"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
