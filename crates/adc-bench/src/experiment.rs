//! The standard experiment setup shared by every figure.
//!
//! The paper's §V.2 settings: 5 proxies, 20 k single-table, 20 k
//! multiple-table, 10 k caching table, a ~3.99 M-request Polygraph
//! workload, hit/hop curves as 5000-request moving averages.

use crate::scale::Scale;
use adc_baselines::CarpProxy;
use adc_core::{AdcConfig, AdcProxy, CacheAgent, ProxyId};
use adc_sim::{SimConfig, SimReport, Simulation};
use adc_workload::{PolygraphConfig, SharedTrace};

/// A fully specified experiment: cluster size, ADC parameters, workload
/// and simulator settings.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Number of cooperating proxies (paper: 5).
    pub proxies: u32,
    /// ADC table configuration.
    pub adc: AdcConfig,
    /// The request workload.
    pub workload: PolygraphConfig,
    /// Simulator settings (latency model, windows, seed).
    pub sim: SimConfig,
}

impl Experiment {
    /// The paper's experiment at the given scale: workload, table sizes
    /// and measurement windows all shrink together.
    pub fn at_scale(scale: Scale) -> Self {
        let adc = AdcConfig::builder()
            .single_capacity(scale.size(20_000))
            .multiple_capacity(scale.size(20_000))
            .cache_capacity(scale.size(10_000))
            .max_hops(16)
            .build();
        let sim = SimConfig {
            hit_window: scale.window(5_000),
            sample_every: scale.window(5_000) as u64,
            ..SimConfig::default()
        };
        Experiment {
            proxies: 5,
            adc,
            workload: PolygraphConfig::scaled(scale.factor()),
            sim,
        }
    }

    /// Builds the ADC proxy agents for this experiment.
    pub fn adc_agents(&self) -> Vec<AdcProxy> {
        (0..self.proxies)
            .map(|i| AdcProxy::new(ProxyId::new(i), self.proxies, self.adc.clone()))
            .collect()
    }

    /// Builds CARP baseline agents with the same cache budget as the ADC
    /// caching table.
    pub fn carp_agents(&self) -> Vec<CarpProxy> {
        (0..self.proxies)
            .map(|i| CarpProxy::new(ProxyId::new(i), self.proxies, self.adc.cache_capacity))
            .collect()
    }

    /// Materializes this experiment's workload once for sharing across
    /// runs (`run_*_on` variants). The records are exactly what
    /// `self.workload.build()` would regenerate.
    pub fn trace(&self) -> SharedTrace {
        self.workload.materialize()
    }

    /// Runs the ADC system over the workload.
    pub fn run_adc(&self) -> SimReport {
        Simulation::new(self.adc_agents(), self.sim.clone()).run(self.workload.build())
    }

    /// Runs the CARP baseline over the same workload.
    pub fn run_carp(&self) -> SimReport {
        Simulation::new(self.carp_agents(), self.sim.clone()).run(self.workload.build())
    }

    /// Runs ADC with an alternative table configuration (parameter
    /// sweeps, ablations), leaving everything else identical.
    pub fn run_adc_with(&self, adc: AdcConfig) -> SimReport {
        let agents: Vec<AdcProxy> = (0..self.proxies)
            .map(|i| AdcProxy::new(ProxyId::new(i), self.proxies, adc.clone()))
            .collect();
        Simulation::new(agents, self.sim.clone()).run(self.workload.build())
    }

    /// [`run_adc`](Self::run_adc) over a pre-materialized trace.
    pub fn run_adc_on(&self, trace: &SharedTrace) -> SimReport {
        Simulation::new(self.adc_agents(), self.sim.clone()).run(trace.iter())
    }

    /// [`run_adc_on`](Self::run_adc_on) on the sharded executor.
    /// Sequential injection reproduces `run_adc_on` byte-for-byte at any
    /// shard count; open-loop injection is invariant in `shards`.
    ///
    /// # Panics
    ///
    /// As [`Simulation::run_sharded`] (zero shards, faults/churn/tracing
    /// enabled, or a zero-latency network).
    pub fn run_adc_sharded_on(&self, trace: &SharedTrace, shards: usize) -> SimReport {
        Simulation::new(self.adc_agents(), self.sim.clone()).run_sharded(trace.iter(), shards)
    }

    /// [`run_carp_on`](Self::run_carp_on) on the sharded executor.
    ///
    /// # Panics
    ///
    /// As [`Simulation::run_sharded`].
    pub fn run_carp_sharded_on(&self, trace: &SharedTrace, shards: usize) -> SimReport {
        Simulation::new(self.carp_agents(), self.sim.clone()).run_sharded(trace.iter(), shards)
    }

    /// [`run_adc_sharded_on`](Self::run_adc_sharded_on) with the
    /// wall-clock execution profiler on: the report additionally carries
    /// [`SimReport::shard_profile`] (per-shard drain accounting, the
    /// coordinator's busy/wait split, occupancy and outbox histograms,
    /// chrome-trace shard lanes). Deterministic fields are identical to
    /// the unprofiled run.
    ///
    /// # Panics
    ///
    /// As [`Simulation::run_sharded`].
    pub fn run_adc_sharded_profiled_on(&self, trace: &SharedTrace, shards: usize) -> SimReport {
        let mut sim = self.sim.clone();
        sim.shard.profile = true;
        Simulation::new(self.adc_agents(), sim).run_sharded(trace.iter(), shards)
    }

    /// [`run_adc_on`](Self::run_adc_on) with the causal flow-span
    /// recorder attached: the report additionally carries
    /// [`SimReport::spans`] (per-segment / per-proxy latency attribution
    /// and the `top_k` slowest flows). Deterministic fields are
    /// identical to the unobserved run.
    pub fn run_adc_spans_on(&self, trace: &SharedTrace, top_k: usize) -> SimReport {
        Simulation::new(self.adc_agents(), self.sim.clone()).run_with_spans(trace.iter(), top_k)
    }

    /// [`run_carp`](Self::run_carp) over a pre-materialized trace.
    pub fn run_carp_on(&self, trace: &SharedTrace) -> SimReport {
        Simulation::new(self.carp_agents(), self.sim.clone()).run(trace.iter())
    }

    /// [`run_adc_with`](Self::run_adc_with) over a pre-materialized
    /// trace.
    pub fn run_adc_with_on(&self, adc: AdcConfig, trace: &SharedTrace) -> SimReport {
        let agents: Vec<AdcProxy> = (0..self.proxies)
            .map(|i| AdcProxy::new(ProxyId::new(i), self.proxies, adc.clone()))
            .collect();
        Simulation::new(agents, self.sim.clone()).run(trace.iter())
    }

    /// Runs arbitrary agents under this experiment's simulator settings
    /// over a pre-materialized trace, returning the report and the
    /// agents for post-run inspection.
    pub fn run_agents_on<A: CacheAgent>(
        &self,
        agents: Vec<A>,
        trace: &SharedTrace,
    ) -> (SimReport, Vec<A>) {
        Simulation::new(agents, self.sim.clone()).run_with_agents(trace.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_experiment_is_consistent() {
        let e = Experiment::at_scale(Scale::Custom(0.01));
        assert_eq!(e.proxies, 5);
        assert_eq!(e.adc.single_capacity, 200);
        assert_eq!(e.adc.cache_capacity, 100);
        assert_eq!(e.workload.total_requests(), 39_900);
        assert_eq!(e.sim.hit_window, 100);
    }

    #[test]
    fn tiny_experiment_runs_end_to_end() {
        let e = Experiment::at_scale(Scale::Custom(0.002));
        let adc = e.run_adc();
        let carp = e.run_carp();
        assert_eq!(adc.completed, e.workload.total_requests());
        assert_eq!(carp.completed, e.workload.total_requests());
        // Both systems get a meaningful number of hits on the replayed
        // phases.
        assert!(adc.hits > 0);
        assert!(carp.hits > 0);
    }

    #[test]
    fn shared_trace_matches_regeneration() {
        let e = Experiment::at_scale(Scale::Custom(0.001));
        let trace = e.trace();
        assert_eq!(trace.len() as u64, e.workload.total_requests());
        let fresh = e.run_adc();
        let shared = e.run_adc_on(&trace);
        assert_eq!(shared.completed, fresh.completed);
        assert_eq!(shared.hits, fresh.hits);
        assert_eq!(shared.phases, fresh.phases);
        assert_eq!(shared.messages_delivered, fresh.messages_delivered);
        let (via_agents, agents) = e.run_agents_on(e.carp_agents(), &trace);
        assert_eq!(agents.len(), e.proxies as usize);
        assert_eq!(via_agents.completed, e.run_carp_on(&trace).completed);
    }

    #[test]
    fn sharded_run_matches_the_single_threaded_runner() {
        let e = Experiment::at_scale(Scale::Custom(0.001));
        let trace = e.trace();
        let single = e.run_adc_on(&trace);
        for shards in [1, 3, 4] {
            let sharded = e.run_adc_sharded_on(&trace, shards);
            assert_eq!(
                single.to_deterministic_json(),
                sharded.to_deterministic_json(),
                "sharded ({shards}) diverged from the single-threaded run"
            );
        }
        let carp = e.run_carp_on(&trace);
        let carp_sharded = e.run_carp_sharded_on(&trace, 4);
        assert_eq!(
            carp.to_deterministic_json(),
            carp_sharded.to_deterministic_json()
        );
    }

    #[test]
    fn span_and_profiled_runs_observe_without_perturbing() {
        let e = Experiment::at_scale(Scale::Custom(0.001));
        let trace = e.trace();
        let plain = e.run_adc_on(&trace);
        let spans = e.run_adc_spans_on(&trace, 3);
        assert_eq!(plain.to_deterministic_json(), spans.to_deterministic_json());
        let span_report = spans.spans.expect("span run fills the report");
        assert_eq!(span_report.flows, plain.completed);
        assert_eq!(span_report.sum_check_failures, 0);
        let profiled = e.run_adc_sharded_profiled_on(&trace, 4);
        assert_eq!(
            plain.to_deterministic_json(),
            profiled.to_deterministic_json()
        );
        let profile = profiled.shard_profile.expect("profiled run fills it");
        assert_eq!(profile.shards, 4);
        assert!(profile.total_drain_ns() > 0);
    }
}
