//! Experiment scale selection.
//!
//! Every figure binary accepts `--scale ci` (default, a 1/10 model of the
//! paper's 3.99 M-request workload), `--scale full` (paper scale) or
//! `--scale <factor>`. Table capacities, workload sizes and measurement
//! windows all scale together so the system stays in the same operating
//! regime.

use std::fmt;
use std::str::FromStr;

/// Experiment scale as a fraction of the paper's setup.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Scale {
    /// 1/10 of the paper (≈ 400 k requests): minutes, not tens of
    /// minutes.
    #[default]
    Ci,
    /// The paper's full 3.99 M-request setup.
    Full,
    /// An arbitrary fraction in `(0, 1]`.
    Custom(f64),
}

impl Scale {
    /// The scaling factor in `(0, 1]`.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Ci => 0.1,
            Scale::Full => 1.0,
            Scale::Custom(f) => f,
        }
    }

    /// Scales a paper-sized capacity, with a floor to stay meaningful.
    pub fn size(self, base: usize) -> usize {
        ((base as f64 * self.factor()) as usize).max(16)
    }

    /// Scales a measurement window (moving-average length, sampling
    /// stride).
    pub fn window(self, base: usize) -> usize {
        ((base as f64 * self.factor()) as usize).max(100)
    }

    /// A short tag used in output file names, e.g. `ci`, `full`, `0.05`.
    pub fn tag(self) -> String {
        match self {
            Scale::Ci => "ci".into(),
            Scale::Full => "full".into(),
            Scale::Custom(f) => format!("{f}"),
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (factor {})", self.tag(), self.factor())
    }
}

impl FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ci" => Ok(Scale::Ci),
            "full" => Ok(Scale::Full),
            other => {
                let f: f64 = other
                    .parse()
                    .map_err(|_| format!("bad scale {other:?}: expected ci, full or a factor"))?;
                if f > 0.0 && f <= 1.0 {
                    Ok(Scale::Custom(f))
                } else {
                    Err(format!("scale factor {f} outside (0, 1]"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors() {
        assert_eq!(Scale::Ci.factor(), 0.1);
        assert_eq!(Scale::Full.factor(), 1.0);
        assert_eq!(Scale::Custom(0.25).factor(), 0.25);
    }

    #[test]
    fn size_scales_with_floor() {
        assert_eq!(Scale::Full.size(20_000), 20_000);
        assert_eq!(Scale::Ci.size(20_000), 2_000);
        assert_eq!(Scale::Custom(0.0001).size(20_000), 16);
    }

    #[test]
    fn parsing() {
        assert_eq!("ci".parse::<Scale>().unwrap(), Scale::Ci);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert_eq!("0.5".parse::<Scale>().unwrap(), Scale::Custom(0.5));
        assert!("0".parse::<Scale>().is_err());
        assert!("2".parse::<Scale>().is_err());
        assert!("banana".parse::<Scale>().is_err());
    }

    #[test]
    fn tags_are_filename_safe() {
        assert_eq!(Scale::Ci.tag(), "ci");
        assert_eq!(Scale::Full.tag(), "full");
        assert_eq!(Scale::Custom(0.5).tag(), "0.5");
    }
}
