//! Comparison of two `BENCH_adc.json` reports: the perf-regression gate.
//!
//! The bench report mixes two kinds of fields. Deterministic outputs
//! (request/event/message counts, hit rate, hops, lint surface) are pure
//! functions of the seeded workload and must match the baseline
//! *exactly* — any drift means behaviour changed, and either the change
//! is a bug or the baseline must be consciously regenerated. Timing
//! fields (`requests_per_sec`, `wall_seconds`, ...) are noisy on shared
//! CI runners, so they get a generous relative threshold and can be
//! demoted to warnings with [`DiffConfig::warn_throughput`].
//!
//! The JSON is parsed with a small hand-rolled scalar reader (the
//! workspace's vendored `serde` is a no-op): nested objects flatten to
//! dotted keys (`lint.rules`, `profile.total.wall_seconds`) and the
//! noise-only `profile.*` subtree is excluded from gating.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar value extracted from a bench report.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A JSON number (all numbers are read as `f64`; the bench report
    /// stays well inside the 2^53 exact-integer range).
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// A JSON string.
    Str(String),
    /// JSON `null` (the report writes `"lint": null` when the scan is
    /// skipped).
    Null,
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Num(n) => write!(f, "{n}"),
            Scalar::Bool(b) => write!(f, "{b}"),
            Scalar::Str(s) => write!(f, "{s:?}"),
            Scalar::Null => write!(f, "null"),
        }
    }
}

/// Flattens a bench-report JSON object into dotted-key scalars.
///
/// Supports exactly the grammar `bench_report` emits: objects, strings,
/// numbers, booleans and `null`. Arrays are rejected.
///
/// # Errors
///
/// Returns a message describing the first syntax problem.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    parser.skip_ws();
    parser.parse_object("", &mut out)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.bytes.get(self.pos).map(|&b| b as char)
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", self.pos));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("bad UTF-8 in string: {e}"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn parse_object(
        &mut self,
        prefix: &str,
        out: &mut BTreeMap<String, Scalar>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            let path = if prefix.is_empty() {
                key
            } else {
                format!("{prefix}.{key}")
            };
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.parse_value(&path, out)?;
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|&b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_value(
        &mut self,
        path: &str,
        out: &mut BTreeMap<String, Scalar>,
    ) -> Result<(), String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(path, out),
            Some(b'"') => {
                let s = self.parse_string()?;
                out.insert(path.to_string(), Scalar::Str(s));
                Ok(())
            }
            Some(b'[') => Err(format!("arrays unsupported (at {path:?})")),
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&b| {
                    !b.is_ascii_whitespace() && b != b',' && b != b'}' && b != b']'
                }) {
                    self.pos += 1;
                }
                let token = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("bad UTF-8: {e}"))?;
                let scalar = match token {
                    "true" => Scalar::Bool(true),
                    "false" => Scalar::Bool(false),
                    "null" => Scalar::Null,
                    n => Scalar::Num(
                        n.parse()
                            .map_err(|e| format!("bad number {n:?} at {path:?}: {e}"))?,
                    ),
                };
                out.insert(path.to_string(), scalar);
                Ok(())
            }
            None => Err(format!("unexpected end of input at {path:?}")),
        }
    }
}

/// Fields that are pure functions of the seeded workload: any drift from
/// the baseline is a hard failure.
pub const EXACT_FIELDS: &[&str] = &[
    "requests",
    "events",
    "messages",
    "peak_flows",
    "hit_rate",
    "mean_hops",
    "replies_orphaned",
    "trace_dropped",
    "lint.rules",
    // The sharded-executor run is shard-count invariant, so these hold
    // regardless of the --shards value the report was produced with.
    "shard.requests",
    "shard.events",
    "shard.messages",
    "shard.peak_flows",
    "shard.hit_rate",
    // Span attribution is simulated time — a pure function of the
    // seeded workload — and the recorder's reconciliation invariants
    // (every microsecond attributed, zero self-check failures) are part
    // of the deterministic surface.
    "spans.flows",
    "spans.total_us",
    "spans.attributed_us",
    "spans.sum_check_failures",
    // The live-network tracing surface replays a fixed request stream
    // through a real loopback cluster: the stream length and lane count
    // are structural (a missing lane means a node died mid-replay), and
    // the ring capacity is sized so a healthy run never drops a span.
    "net_trace.requests",
    "net_trace.lanes",
    "net_trace.spans_dropped",
];

/// Fields where an *increase* over the baseline is a regression but a
/// decrease is an improvement (allow-creep guard).
pub const NON_INCREASING_FIELDS: &[&str] = &["lint.suppressions"];

/// Throughput fields: higher is better, compared with a relative
/// threshold because shared runners are noisy. `shard.speedup` rides
/// the same relative gate (a parallel-efficiency collapse is a perf
/// regression even when absolute throughput survives the tolerance)
/// and additionally honours [`DiffConfig::min_shard_speedup`].
pub const THROUGHPUT_FIELDS: &[&str] = &[
    "requests_per_sec",
    "events_per_sec",
    "shard.events_per_sec",
    "shard.speedup",
    // Live cluster replay, tracing off and on: the traced leg gates the
    // wire + recording overhead of distributed tracing.
    "net_trace.requests_per_sec",
    "net_trace.requests_per_sec_traced",
];

/// The scaling field the absolute [`DiffConfig::min_shard_speedup`]
/// floor applies to.
pub const SPEEDUP_FIELD: &str = "shard.speedup";

/// The execution profiler's load-imbalance coefficient (max/mean
/// per-shard drain time, ≥ 1.0). Lower is better; an *increase* beyond
/// the relative [`DiffConfig::imbalance_tolerance`] means the shard
/// partition degraded (one shard is soaking up the work while the rest
/// idle at the barrier). Wall-clock derived, so noisy like throughput —
/// [`DiffConfig::warn_imbalance`] demotes failures to warnings.
pub const IMBALANCE_FIELD: &str = "shard_profile.imbalance_coefficient";

/// Identity fields that must match for the comparison to make sense at
/// all (comparing a smoke run against a full baseline is meaningless).
pub const IDENTITY_FIELDS: &[&str] = &["benchmark", "smoke", "scale"];

/// Gate policy knobs.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Allowed relative throughput drop before a throughput field
    /// regresses (0.30 = current may be up to 30% slower).
    pub throughput_tolerance: f64,
    /// Demote throughput regressions to warnings (for shared CI runners
    /// where only the deterministic fields are trustworthy).
    pub warn_throughput: bool,
    /// Absolute floor for [`SPEEDUP_FIELD`]: the sharded run must be at
    /// least this many times faster than its own 1-shard run. `None`
    /// (the default) skips the check — a single-core runner physically
    /// cannot beat 1.0, so the floor is opt-in for multi-core
    /// environments (CI's scaling leg passes `--min-shard-speedup`).
    /// Unlike the relative gate, the floor is never demoted to a
    /// warning: passing it is an explicit request.
    pub min_shard_speedup: Option<f64>,
    /// Allowed relative rise of [`IMBALANCE_FIELD`] before the gate
    /// fails (0.50 = the coefficient may grow up to 50% over the
    /// baseline). Generous by default: scheduling noise moves it.
    pub imbalance_tolerance: f64,
    /// Demote imbalance regressions to warnings.
    pub warn_imbalance: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            throughput_tolerance: 0.30,
            warn_throughput: false,
            min_shard_speedup: None,
            imbalance_tolerance: 0.50,
            warn_imbalance: false,
        }
    }
}

/// Outcome of comparing a current bench report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Hard failures: the gate must reject the change.
    pub regressions: Vec<String>,
    /// Soft findings (throughput drift in warn mode, improvements worth
    /// a baseline refresh).
    pub warnings: Vec<String>,
    /// Number of gated fields actually compared.
    pub compared: usize,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn get_num(fields: &BTreeMap<String, Scalar>, key: &str) -> Option<f64> {
    match fields.get(key) {
        Some(Scalar::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Compares `current` against `baseline` (both raw `BENCH_adc.json`
/// text) under `config`.
///
/// # Errors
///
/// Returns a message when either report fails to parse or the two
/// reports describe different experiments (benchmark/smoke/scale
/// mismatch).
pub fn diff_reports(
    baseline: &str,
    current: &str,
    config: &DiffConfig,
) -> Result<DiffReport, String> {
    let base = parse_flat_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse_flat_json(current).map_err(|e| format!("current: {e}"))?;

    for &key in IDENTITY_FIELDS {
        let (b, c) = (base.get(key), cur.get(key));
        if b != c {
            return Err(format!(
                "reports are not comparable: {key} is {} in the baseline but {} in the current run",
                b.map_or("missing".to_string(), |v| v.to_string()),
                c.map_or("missing".to_string(), |v| v.to_string()),
            ));
        }
    }

    let mut report = DiffReport::default();
    for &key in EXACT_FIELDS {
        let Some(b) = get_num(&base, key) else {
            continue; // baseline predates the field — nothing to gate
        };
        match get_num(&cur, key) {
            None => report
                .regressions
                .push(format!("{key}: present in baseline ({b}) but missing now")),
            // Printed decimals compared after a text round-trip: exact.
            Some(c) if c.to_bits() != b.to_bits() => report
                .regressions
                .push(format!("{key}: baseline {b}, now {c} (must match exactly)")),
            Some(_) => {}
        }
        report.compared += 1;
    }
    for &key in NON_INCREASING_FIELDS {
        let Some(b) = get_num(&base, key) else {
            continue;
        };
        match get_num(&cur, key) {
            None => report
                .regressions
                .push(format!("{key}: present in baseline ({b}) but missing now")),
            Some(c) if c > b => report
                .regressions
                .push(format!("{key}: rose from {b} to {c} (may not increase)")),
            Some(c) if c < b => report.warnings.push(format!(
                "{key}: fell from {b} to {c} — refresh the baseline"
            )),
            Some(_) => {}
        }
        report.compared += 1;
    }
    // Per-rule allow-creep gate over every `lint.by_rule.<rule>.suppressions`
    // key: the workspace total may hide a rise in one rule offset by a fall
    // in another, so each rule gates independently. A rule missing from the
    // baseline gates against zero — a new rule lands with its day-one
    // allows recorded in the baseline, not smuggled past the total. Only
    // active once the baseline carries any per-rule data (older baselines
    // predate the breakdown).
    const BY_RULE_PREFIX: &str = "lint.by_rule.";
    const SUPPRESSIONS_SUFFIX: &str = ".suppressions";
    if base.keys().any(|k| k.starts_with(BY_RULE_PREFIX)) {
        let per_rule_keys: std::collections::BTreeSet<&str> = base
            .keys()
            .chain(cur.keys())
            .filter(|k| k.starts_with(BY_RULE_PREFIX) && k.ends_with(SUPPRESSIONS_SUFFIX))
            .map(|k| k.as_str())
            .collect();
        for key in per_rule_keys {
            let b = get_num(&base, key).unwrap_or(0.0);
            match get_num(&cur, key) {
                None if b > 0.0 => report
                    .regressions
                    .push(format!("{key}: present in baseline ({b}) but missing now")),
                None => {}
                Some(c) if c > b => report.regressions.push(format!(
                    "{key}: rose from {b} to {c} (per-rule allows may not increase)"
                )),
                Some(c) if c < b => report.warnings.push(format!(
                    "{key}: fell from {b} to {c} — refresh the baseline"
                )),
                Some(_) => {}
            }
            report.compared += 1;
        }
    }
    for &key in THROUGHPUT_FIELDS {
        let Some(b) = get_num(&base, key) else {
            continue;
        };
        let Some(c) = get_num(&cur, key) else {
            report
                .regressions
                .push(format!("{key}: present in baseline ({b}) but missing now"));
            report.compared += 1;
            continue;
        };
        report.compared += 1;
        if b <= 0.0 {
            continue; // degenerate baseline (zero-duration run): nothing to gate
        }
        let floor = b * (1.0 - config.throughput_tolerance);
        if c < floor {
            let drop = 100.0 * (1.0 - c / b);
            let msg = format!(
                "{key}: baseline {b:.1}, now {c:.1} ({drop:.1}% drop exceeds the {:.0}% tolerance)",
                100.0 * config.throughput_tolerance
            );
            if config.warn_throughput {
                report.warnings.push(msg);
            } else {
                report.regressions.push(msg);
            }
        }
    }
    // The imbalance coefficient: lower is better, gated relatively like
    // throughput but in the other direction (a rise is the regression).
    if let Some(b) = get_num(&base, IMBALANCE_FIELD) {
        report.compared += 1;
        match get_num(&cur, IMBALANCE_FIELD) {
            None => report.regressions.push(format!(
                "{IMBALANCE_FIELD}: present in baseline ({b}) but missing now"
            )),
            Some(c) if b > 0.0 && c > b * (1.0 + config.imbalance_tolerance) => {
                let rise = 100.0 * (c / b - 1.0);
                let msg = format!(
                    "{IMBALANCE_FIELD}: baseline {b:.3}, now {c:.3} ({rise:.1}% rise exceeds \
                     the {:.0}% tolerance — one shard is soaking up the drain time)",
                    100.0 * config.imbalance_tolerance
                );
                if config.warn_imbalance {
                    report.warnings.push(msg);
                } else {
                    report.regressions.push(msg);
                }
            }
            Some(_) => {}
        }
    }
    if let Some(floor) = config.min_shard_speedup {
        report.compared += 1;
        match get_num(&cur, SPEEDUP_FIELD) {
            None => report.regressions.push(format!(
                "{SPEEDUP_FIELD}: missing but --min-shard-speedup {floor} was requested"
            )),
            Some(c) if c < floor => report.regressions.push(format!(
                "{SPEEDUP_FIELD}: {c:.3} is below the required floor {floor:.3} — \
                 sharded execution must actually be faster than 1 shard"
            )),
            Some(_) => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "benchmark": "adc_end_to_end_5_proxies",
  "smoke": false,
  "scale": "ci",
  "requests": 399000,
  "events": 2126120,
  "messages": 2126120,
  "peak_flows": 1,
  "hit_rate": 0.525434,
  "mean_hops": 4.857724,
  "replies_orphaned": 0,
  "trace_dropped": 0,
  "lint": { "rules": 11, "suppressions": 49 },
  "wall_seconds": 0.529920,
  "cpu_seconds": 0.526393,
  "requests_per_sec": 752943.2,
  "events_per_sec": 4012149.2,
  "shard": {
    "shards": 4,
    "requests": 399000,
    "events": 2525120,
    "messages": 2126120,
    "peak_flows": 212,
    "hit_rate": 0.525434,
    "baseline_wall_seconds": 0.810000,
    "wall_seconds": 0.270000,
    "baseline_events_per_sec": 3117432.1,
    "events_per_sec": 9352296.3,
    "speedup": 3.000
  },
  "shard_profile": {
    "shards": 4,
    "windows": 5120,
    "imbalance_coefficient": 1.3200,
    "barrier_wait_fraction": 0.4100,
    "drain_seconds_total": 0.210000,
    "coordinator_busy_seconds": 0.140000,
    "coordinator_wait_seconds": 0.098000,
    "window_occupancy_p50": 64,
    "window_occupancy_p99": 512,
    "outbox_depth_p50": 2,
    "outbox_depth_p99": 16,
    "slices": 9000,
    "per_shard": {
      "0": { "drain_seconds": 0.060000, "windows": 5120, "events": 660000 },
      "1": { "drain_seconds": 0.050000, "windows": 5120, "events": 630000 },
      "2": { "drain_seconds": 0.052000, "windows": 5120, "events": 620000 },
      "3": { "drain_seconds": 0.048000, "windows": 5120, "events": 615120 }
    }
  },
  "spans": {
    "flows": 399000,
    "total_us": 83120000,
    "attributed_us": 83120000,
    "sum_check_failures": 0,
    "segments": {
      "client_wait": { "total_us": 399000, "count": 399000 },
      "forward_hop": { "total_us": 31000000, "count": 1100000 },
      "loop_penalty": { "total_us": 1200000, "count": 41000 },
      "origin_fetch": { "total_us": 42000000, "count": 190000 },
      "reply_return": { "total_us": 8521000, "count": 209000 }
    },
    "slowest_us": 2150
  },
  "net_trace": {
    "requests": 600,
    "lanes": 6,
    "cross_node_traces": 580,
    "spans_dropped": 0,
    "clamped": 12,
    "requests_per_sec": 2900.0,
    "requests_per_sec_traced": 2750.0
  },
  "profile": {
    "workload_gen": { "wall_seconds": 0.089630, "cpu_seconds": 0.080885 },
    "simulate": { "wall_seconds": 0.529920, "cpu_seconds": 0.526393 },
    "report": { "wall_seconds": 0.000262, "cpu_seconds": 0.000253 },
    "total": { "wall_seconds": 0.619812, "cpu_seconds": 0.607532 }
  }
}"#;

    #[test]
    fn parses_the_real_report_shape() {
        let fields = parse_flat_json(BASELINE).unwrap();
        assert_eq!(fields.get("requests"), Some(&Scalar::Num(399000.0)));
        assert_eq!(fields.get("smoke"), Some(&Scalar::Bool(false)));
        assert_eq!(
            fields.get("benchmark"),
            Some(&Scalar::Str("adc_end_to_end_5_proxies".to_string()))
        );
        assert_eq!(fields.get("lint.rules"), Some(&Scalar::Num(11.0)));
        assert_eq!(fields.get("shard.shards"), Some(&Scalar::Num(4.0)));
        assert_eq!(fields.get("shard.events"), Some(&Scalar::Num(2525120.0)));
        assert_eq!(
            fields.get("profile.total.wall_seconds"),
            Some(&Scalar::Num(0.619812))
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_flat_json("").is_err());
        assert!(parse_flat_json("{").is_err());
        assert!(parse_flat_json(r#"{"a": [1]}"#).is_err());
        assert!(parse_flat_json(r#"{"a": 1} x"#).is_err());
        assert!(parse_flat_json(r#"{"a": nope}"#).is_err());
    }

    #[test]
    fn null_lint_section_is_tolerated() {
        let doctored = BASELINE.replace(
            r#""lint": { "rules": 11, "suppressions": 49 }"#,
            r#""lint": null"#,
        );
        // A baseline without a lint scan simply gates fewer fields.
        let report = diff_reports(&doctored, BASELINE, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn identical_reports_pass() {
        let report = diff_reports(BASELINE, BASELINE, &DiffConfig::default()).unwrap();
        assert!(report.passed());
        assert!(report.warnings.is_empty());
        // +1: the imbalance coefficient, present in this baseline.
        assert_eq!(
            report.compared,
            EXACT_FIELDS.len() + NON_INCREASING_FIELDS.len() + THROUGHPUT_FIELDS.len() + 1
        );
    }

    #[test]
    fn deterministic_drift_is_a_hard_failure() {
        let doctored = BASELINE.replace("\"hit_rate\": 0.525434", "\"hit_rate\": 0.525433");
        let report = diff_reports(BASELINE, &doctored, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions.iter().any(|r| r.contains("hit_rate")));
    }

    #[test]
    fn missing_gated_field_is_a_hard_failure() {
        let doctored = BASELINE.replace("  \"mean_hops\": 4.857724,\n", "");
        let report = diff_reports(BASELINE, &doctored, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.regressions.iter().any(|r| r.contains("mean_hops")));
    }

    #[test]
    fn suppression_creep_fails_but_reduction_warns() {
        let crept = BASELINE.replace("\"suppressions\": 49", "\"suppressions\": 50");
        let report = diff_reports(BASELINE, &crept, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        let reduced = BASELINE.replace("\"suppressions\": 49", "\"suppressions\": 40");
        let report = diff_reports(BASELINE, &reduced, &DiffConfig::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1);
    }

    #[test]
    fn per_rule_suppression_gate_catches_hidden_creep() {
        // A baseline carrying the per-rule breakdown activates the gate.
        let with_rules = BASELINE.replace(
            r#""lint": { "rules": 11, "suppressions": 49 }"#,
            r#""lint": { "rules": 11, "suppressions": 49, "by_rule": {
    "panic": { "findings": 0, "suppressions": 3, "wall_ms": 1.2 },
    "determinism": { "findings": 0, "suppressions": 5, "wall_ms": 2.4 }
  } }"#,
        );
        // The nested section flattens to three-level dotted keys.
        let fields = parse_flat_json(&with_rules).unwrap();
        assert_eq!(
            fields.get("lint.by_rule.panic.suppressions"),
            Some(&Scalar::Num(3.0))
        );
        // Identical reports pass, with one extra comparison per rule.
        let report = diff_reports(&with_rules, &with_rules, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(
            report.compared,
            EXACT_FIELDS.len() + NON_INCREASING_FIELDS.len() + THROUGHPUT_FIELDS.len() + 1 + 2
        );
        // One rule rising fails even though the workspace total did not
        // move (the creep is hidden by a fall elsewhere).
        let crept = with_rules.replace(
            r#""panic": { "findings": 0, "suppressions": 3"#,
            r#""panic": { "findings": 0, "suppressions": 4"#,
        );
        let report = diff_reports(&with_rules, &crept, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("lint.by_rule.panic.suppressions")));
        // A per-rule fall is a refresh warning, not a failure.
        let reduced = with_rules.replace(
            r#""determinism": { "findings": 0, "suppressions": 5"#,
            r#""determinism": { "findings": 0, "suppressions": 2"#,
        );
        let report = diff_reports(&with_rules, &reduced, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("lint.by_rule.determinism.suppressions")));
        // A rule absent from the baseline gates against zero: a new rule
        // may not land with unrecorded allows.
        let new_rule = with_rules.replace(
            r#""determinism": { "findings": 0, "suppressions": 5, "wall_ms": 2.4 }"#,
            r#""determinism": { "findings": 0, "suppressions": 5, "wall_ms": 2.4 },
    "float-eq": { "findings": 0, "suppressions": 1, "wall_ms": 0.3 }"#,
        );
        let report = diff_reports(&with_rules, &new_rule, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("lint.by_rule.float-eq.suppressions")));
        // A pre-breakdown baseline leaves the gate dormant entirely.
        let report = diff_reports(BASELINE, &with_rules, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn throughput_gate_respects_tolerance_and_warn_mode() {
        let slow = BASELINE.replace(
            "\"requests_per_sec\": 752943.2",
            "\"requests_per_sec\": 400000.0",
        );
        let config = DiffConfig::default();
        let report = diff_reports(BASELINE, &slow, &config).unwrap();
        assert!(!report.passed(), "47% drop must fail the 30% gate");
        let warn = DiffConfig {
            warn_throughput: true,
            ..config
        };
        let report = diff_reports(BASELINE, &slow, &warn).unwrap();
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1);
        // A 10% drop is inside the default tolerance either way.
        let mild = BASELINE.replace(
            "\"requests_per_sec\": 752943.2",
            "\"requests_per_sec\": 680000.0",
        );
        let report = diff_reports(BASELINE, &mild, &DiffConfig::default()).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn shard_invariance_drift_is_a_hard_failure() {
        let doctored = BASELINE.replace("\"events\": 2525120", "\"events\": 2525121");
        let report = diff_reports(BASELINE, &doctored, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("shard.events")));
        // The shard count itself is deliberately ungated: a report
        // produced with a different --shards value must still pass when
        // the (shard-count-invariant) counts match.
        let other_shards = BASELINE.replace("\"shards\": 4", "\"shards\": 8");
        let report = diff_reports(BASELINE, &other_shards, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn shard_throughput_drop_trips_the_gate() {
        let slow = BASELINE.replace(
            "\"events_per_sec\": 9352296.3",
            "\"events_per_sec\": 4000000.0",
        );
        let report = diff_reports(BASELINE, &slow, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("shard.events_per_sec")));
    }

    #[test]
    fn speedup_collapse_trips_the_relative_gate() {
        // 3.000 → 1.200 is a 60% drop: far outside the 30% tolerance.
        let collapsed = BASELINE.replace("\"speedup\": 3.000", "\"speedup\": 1.200");
        let report = diff_reports(BASELINE, &collapsed, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("shard.speedup")));
        // Warn mode demotes the relative check like any throughput field.
        let warn = DiffConfig {
            warn_throughput: true,
            ..DiffConfig::default()
        };
        let report = diff_reports(BASELINE, &collapsed, &warn).unwrap();
        assert!(report.passed());
        // A mild dip stays inside the tolerance.
        let mild = BASELINE.replace("\"speedup\": 3.000", "\"speedup\": 2.500");
        let report = diff_reports(BASELINE, &mild, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn speedup_floor_is_absolute_and_never_demoted() {
        let mild = BASELINE.replace("\"speedup\": 3.000", "\"speedup\": 2.500");
        let floored = DiffConfig {
            warn_throughput: true, // must NOT demote the floor
            min_shard_speedup: Some(2.8),
            ..DiffConfig::default()
        };
        let report = diff_reports(BASELINE, &mild, &floored).unwrap();
        assert!(!report.passed());
        assert!(report.regressions.iter().any(|r| r.contains("floor")));
        let passing = DiffConfig {
            min_shard_speedup: Some(2.0),
            ..DiffConfig::default()
        };
        let report = diff_reports(BASELINE, &mild, &passing).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        // Requesting a floor from a report that lacks the field at all
        // is a failure, not a silent pass.
        let gutted = BASELINE.replace("    \"speedup\": 3.000\n", "    \"speedup2\": 3.000\n");
        let report = diff_reports(BASELINE, &gutted, &passing).unwrap();
        assert!(!report.passed());
    }

    #[test]
    fn span_attribution_drift_is_a_hard_failure() {
        // A single unattributed microsecond means the recorder lost a
        // segment: exact-gated.
        let doctored =
            BASELINE.replace("\"attributed_us\": 83120000", "\"attributed_us\": 83119999");
        let report = diff_reports(BASELINE, &doctored, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("spans.attributed_us")));
        let failed = BASELINE.replace("\"sum_check_failures\": 0", "\"sum_check_failures\": 1");
        let report = diff_reports(BASELINE, &failed, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
    }

    #[test]
    fn net_trace_structure_is_exact_gated() {
        // A lost lane means a node died mid-replay: hard failure.
        let doctored = BASELINE.replace("\"lanes\": 6", "\"lanes\": 5");
        let report = diff_reports(BASELINE, &doctored, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("net_trace.lanes")));
        // A dropped span means the ring is undersized for the replay.
        let dropped = BASELINE.replace("\"spans_dropped\": 0", "\"spans_dropped\": 3");
        let report = diff_reports(BASELINE, &dropped, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("net_trace.spans_dropped")));
        // The clamp count and cross-node trace count wobble with clock
        // noise and routing randomness: deliberately ungated.
        let noisy = BASELINE
            .replace("\"clamped\": 12", "\"clamped\": 40")
            .replace("\"cross_node_traces\": 580", "\"cross_node_traces\": 565");
        let report = diff_reports(BASELINE, &noisy, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn traced_replay_slowdown_trips_the_throughput_gate() {
        // Traced throughput collapsing (say span recording grew a lock
        // convoy) fails even while the untraced leg holds.
        let slow = BASELINE.replace(
            "\"requests_per_sec_traced\": 2750.0",
            "\"requests_per_sec_traced\": 1200.0",
        );
        let report = diff_reports(BASELINE, &slow, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("net_trace.requests_per_sec_traced")));
        // A dip inside the 30% tolerance passes: live TCP replay on a
        // shared runner is noisy by nature.
        let mild = BASELINE.replace(
            "\"requests_per_sec_traced\": 2750.0",
            "\"requests_per_sec_traced\": 2200.0",
        );
        let report = diff_reports(BASELINE, &mild, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn imbalance_rise_trips_the_gate_and_warn_demotes() {
        // 1.32 → 2.30 is a 74% rise: outside the default 50% tolerance.
        let skewed = BASELINE.replace(
            "\"imbalance_coefficient\": 1.3200",
            "\"imbalance_coefficient\": 2.3000",
        );
        let report = diff_reports(BASELINE, &skewed, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("imbalance_coefficient")));
        let warn = DiffConfig {
            warn_imbalance: true,
            ..DiffConfig::default()
        };
        let report = diff_reports(BASELINE, &skewed, &warn).unwrap();
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1);
        // A mild wobble stays inside the tolerance; an improvement is
        // always fine.
        let mild = BASELINE.replace(
            "\"imbalance_coefficient\": 1.3200",
            "\"imbalance_coefficient\": 1.6000",
        );
        let report = diff_reports(BASELINE, &mild, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        let better = BASELINE.replace(
            "\"imbalance_coefficient\": 1.3200",
            "\"imbalance_coefficient\": 1.0100",
        );
        let report = diff_reports(BASELINE, &better, &DiffConfig::default()).unwrap();
        assert!(report.passed());
        // Dropping the field from the current run is a failure, not a
        // silent pass.
        let gutted = BASELINE.replace("    \"imbalance_coefficient\": 1.3200,\n", "");
        let report = diff_reports(BASELINE, &gutted, &DiffConfig::default()).unwrap();
        assert!(!report.passed());
        // A baseline that predates the profiler gates nothing.
        let report = diff_reports(&gutted, BASELINE, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn mismatched_experiments_are_not_comparable() {
        let smoke = BASELINE.replace("\"smoke\": false", "\"smoke\": true");
        assert!(diff_reports(BASELINE, &smoke, &DiffConfig::default()).is_err());
        let other = BASELINE.replace("\"scale\": \"ci\"", "\"scale\": \"full\"");
        assert!(diff_reports(BASELINE, &other, &DiffConfig::default()).is_err());
    }
}
