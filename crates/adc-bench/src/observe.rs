//! Observability wiring for the figure binaries: runs the main ADC
//! simulation with a probe attached when any of `--events`,
//! `--chrome-trace`, `--convergence` or `--metrics` was given, writes
//! the requested exports, and prints a capture summary. Without those
//! flags the run goes through the plain (probe-free) path, so default
//! invocations stay bit-for-bit identical to the pre-observability
//! harness.
//!
//! `--shards <n>` (n > 1) routes the main run through the sharded
//! executor instead; its reports are byte-identical to the
//! single-threaded runner's, so figure CSVs do not depend on the shard
//! count. Convergence sampling and the metrics exposition compose with
//! sharding; the typed event stream (`--events`) and the flow-span
//! recorder (`--spans`) are single-threaded captures and are rejected
//! in combination. `--chrome-trace` on a sharded run requires
//! `--profile-shards` and renders the executor's wall-clock shard lanes
//! (drain/wait slices, barrier instants) instead of the event timeline.

use crate::cli::BenchArgs;
use crate::experiment::Experiment;
use adc_obs::{self, ConvergenceConfig, EventLog, MetricsProbe, SpanProbe};
use adc_sim::SimReport;
use adc_sim::Simulation;
use std::io::BufWriter;
use std::io::Write;
use std::path::Path;

/// Whether any observability flag was given.
pub fn obs_enabled(args: &BenchArgs) -> bool {
    args.events.is_some()
        || args.chrome_trace.is_some()
        || args.convergence
        || args.metrics.is_some()
        || args.spans.is_some()
}

/// Event-log bound for one observed run: generous enough that a CI-scale
/// figure run captures everything (~a dozen events per request), capped
/// so a full-scale run cannot exhaust memory — overflow is *counted* and
/// reported, never silent.
fn log_capacity(total_requests: u64) -> usize {
    (total_requests as usize)
        .saturating_mul(12)
        .clamp(1 << 16, 1 << 23)
}

/// Runs the experiment's main ADC simulation, observed if any flag asks
/// for it. Exports are written immediately; capture and convergence
/// summaries go to stderr so figure stdout stays machine-readable.
pub fn run_adc_observed(experiment: &Experiment, args: &BenchArgs) -> SimReport {
    if args.shards > 1 || args.profile_shards {
        return run_adc_sharded_observed(experiment, args);
    }
    if !obs_enabled(args) {
        return experiment.run_adc();
    }

    let mut sim = experiment.sim.clone();
    if args.convergence {
        sim.convergence = Some(ConvergenceConfig {
            sample_every: sim.sample_every,
            ..ConvergenceConfig::default()
        });
    }
    // One observed run feeds every export: the bounded event log, the
    // metrics registry and the span recorder all ride the same probe
    // stack (each is a pure consumer, so the composition is free of
    // interference); files are only written for the flags given.
    let capacity = log_capacity(experiment.workload.total_requests());
    let mut probe = (
        (EventLog::with_capacity(capacity), MetricsProbe::new()),
        SpanProbe::new(),
    );
    let mut report = Simulation::new(experiment.adc_agents(), sim)
        .run_observed(experiment.workload.build(), &mut probe);
    let ((log, metrics), span_probe) = probe;
    if let Some(path) = &args.metrics {
        write_metrics_prom(path, &metrics);
        report.metrics = Some(metrics.report());
    }
    if let Some(path) = &args.spans {
        let spans = span_probe.into_report();
        eprintln!("{}", spans.summary());
        write_spans_json(path, &spans);
        report.spans = Some(spans);
    }

    eprintln!(
        "observability: captured {} events ({} dropped at the {}-event bound)",
        log.len(),
        log.dropped(),
        log.capacity()
    );
    if let Some(path) = &args.events {
        write_events_jsonl(path, &log);
    }
    if let Some(path) = &args.chrome_trace {
        write_chrome(path, &log);
    }
    print_convergence_summary(&report);
    report
}

/// The main ADC run on the sharded executor: convergence, metrics and
/// the execution profiler compose with sharding; the typed event stream
/// and the span recorder do not.
fn run_adc_sharded_observed(experiment: &Experiment, args: &BenchArgs) -> SimReport {
    if args.events.is_some() || args.spans.is_some() {
        eprintln!(
            "--events/--spans capture the single-threaded runner's \
             event stream and cannot be combined with --shards > 1 \
             or --profile-shards"
        );
        std::process::exit(2);
    }
    if args.chrome_trace.is_some() && !args.profile_shards {
        eprintln!(
            "--chrome-trace on a sharded run renders the executor's \
             wall-clock shard lanes and requires --profile-shards \
             (single-threaded runs render the event timeline instead)"
        );
        std::process::exit(2);
    }
    let mut sim = experiment.sim.clone();
    if args.convergence {
        sim.convergence = Some(ConvergenceConfig {
            sample_every: sim.sample_every,
            ..ConvergenceConfig::default()
        });
    }
    sim.shard.profile = args.profile_shards;
    eprintln!("sharded executor: {} worker shards", args.shards);
    let simulation = Simulation::new(experiment.adc_agents(), sim);
    let report = if let Some(path) = &args.metrics {
        let report = simulation.run_sharded_with_metrics(experiment.workload.build(), args.shards);
        let metrics = report.metrics.as_ref().expect("metrics probe was on");
        write_prom_text(path, &metrics.snapshot.to_prometheus());
        report
    } else {
        simulation.run_sharded(experiment.workload.build(), args.shards)
    };
    if let Some(profile) = &report.shard_profile {
        eprintln!("shard profile: {}", profile.summary());
        if let Some(path) = &args.chrome_trace {
            write_shard_lanes_trace(path, profile);
        }
    }
    print_convergence_summary(&report);
    report
}

fn print_convergence_summary(report: &SimReport) {
    if let Some(conv) = &report.convergence {
        eprintln!(
            "convergence: {} samples, final agreement {:.4}, {} remaps, {} churn",
            conv.samples,
            conv.final_agreement().unwrap_or(0.0),
            conv.total_remaps,
            conv.total_churn
        );
    }
}

/// For the sweep-driven binaries (fig13–15, ablations), which never run
/// a single "main" simulation: when any observability flag is set, runs
/// one extra default-configuration ADC simulation with the probe
/// attached so event/convergence exports are still available. The sweep
/// itself is untouched. No-op without flags.
pub fn observe_default_run(args: &BenchArgs) {
    if !obs_enabled(args) {
        return;
    }
    eprintln!("observability: running one default-config ADC simulation for export...");
    let experiment = crate::output::apply_args(Experiment::at_scale(args.scale), args);
    let _ = run_adc_observed(&experiment, args);
}

fn create_export_file(path: &Path) -> std::fs::File {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create export directory");
        }
    }
    std::fs::File::create(path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()))
}

fn write_events_jsonl(path: &Path, log: &EventLog) {
    let mut out = BufWriter::new(create_export_file(path));
    adc_obs::write_jsonl(&mut out, log.events()).expect("write event JSONL");
    eprintln!("wrote {} ({} events)", path.display(), log.len());
}

fn write_metrics_prom(path: &Path, metrics: &MetricsProbe) {
    write_prom_text(path, &metrics.snapshot().to_prometheus());
}

fn write_prom_text(path: &Path, text: &str) {
    let mut out = BufWriter::new(create_export_file(path));
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .expect("write metrics exposition");
    eprintln!(
        "wrote {} ({} bytes of Prometheus text)",
        path.display(),
        text.len()
    );
}

fn write_chrome(path: &Path, log: &EventLog) {
    let mut out = BufWriter::new(create_export_file(path));
    adc_obs::write_chrome_trace(&mut out, log.events()).expect("write chrome trace");
    eprintln!(
        "wrote {} (open via chrome://tracing or https://ui.perfetto.dev)",
        path.display()
    );
}

fn write_spans_json(path: &Path, spans: &adc_obs::SpanReport) {
    let text = spans.to_json();
    let mut out = BufWriter::new(create_export_file(path));
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .expect("write span report");
    eprintln!(
        "wrote {} ({} flows, {} slowest-flow entries)",
        path.display(),
        spans.flows,
        spans.slowest.len()
    );
}

fn write_shard_lanes_trace(path: &Path, profile: &adc_sim::ShardProfile) {
    let mut out = BufWriter::new(create_export_file(path));
    adc_obs::write_shard_lanes(
        &mut out,
        profile.shards,
        &profile.slices,
        &profile.barriers_us,
    )
    .expect("write shard-lane trace");
    eprintln!(
        "wrote {} ({} slices across {} shard lanes; open via chrome://tracing)",
        path.display(),
        profile.slices.len(),
        profile.shards
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn disabled_flags_take_the_plain_path() {
        let args = BenchArgs::default();
        assert!(!obs_enabled(&args));
        let experiment = Experiment::at_scale(Scale::Custom(0.001));
        let plain = experiment.run_adc();
        let observed = run_adc_observed(&experiment, &args);
        assert_eq!(plain.completed, observed.completed);
        assert_eq!(plain.hits, observed.hits);
        assert!(observed.convergence.is_none());
    }

    #[test]
    fn capacity_is_clamped_both_ways() {
        assert_eq!(log_capacity(0), 1 << 16);
        assert_eq!(log_capacity(u64::MAX), 1 << 23);
        assert_eq!(log_capacity(100_000), 1_200_000);
    }

    #[test]
    fn metrics_flag_writes_exposition_and_fills_report() {
        let path = std::env::temp_dir().join(format!(
            "adc_bench_metrics_test_{}.prom",
            std::process::id()
        ));
        let args = BenchArgs {
            metrics: Some(path.clone()),
            ..BenchArgs::default()
        };
        assert!(obs_enabled(&args));
        let experiment = Experiment::at_scale(Scale::Custom(0.002));
        let plain = experiment.run_adc();
        let observed = run_adc_observed(&experiment, &args);
        // The metrics probe must not perturb the simulation.
        assert_eq!(plain.completed, observed.completed);
        assert_eq!(plain.hits, observed.hits);
        let metrics = observed.metrics.expect("metrics probe was on");
        assert!(!metrics.per_proxy.is_empty());
        let text = std::fs::read_to_string(&path).expect("exposition file written");
        std::fs::remove_file(&path).ok();
        adc_metrics::validate_prometheus(&text).expect("exposition must parse");
        assert_eq!(text, metrics.snapshot.to_prometheus());
    }

    #[test]
    fn sharded_observed_run_is_byte_identical_to_the_single_threaded_path() {
        let experiment = Experiment::at_scale(Scale::Custom(0.002));
        let single = BenchArgs {
            convergence: true,
            ..BenchArgs::default()
        };
        let sharded = BenchArgs {
            convergence: true,
            shards: 4,
            ..BenchArgs::default()
        };
        let a = run_adc_observed(&experiment, &single);
        let b = run_adc_observed(&experiment, &sharded);
        assert_eq!(a.to_deterministic_json(), b.to_deterministic_json());
    }

    #[test]
    fn spans_flag_writes_report_and_fills_it() {
        let path =
            std::env::temp_dir().join(format!("adc_bench_spans_test_{}.json", std::process::id()));
        let args = BenchArgs {
            spans: Some(path.clone()),
            ..BenchArgs::default()
        };
        assert!(obs_enabled(&args));
        let experiment = Experiment::at_scale(Scale::Custom(0.002));
        let plain = experiment.run_adc();
        let observed = run_adc_observed(&experiment, &args);
        // The span recorder must not perturb the simulation.
        assert_eq!(
            plain.to_deterministic_json(),
            observed.to_deterministic_json()
        );
        let spans = observed.spans.expect("span recorder was on");
        assert_eq!(spans.flows, observed.completed);
        assert_eq!(spans.sum_check_failures, 0);
        let text = std::fs::read_to_string(&path).expect("span file written");
        std::fs::remove_file(&path).ok();
        adc_obs::validate_json(&text).expect("span report must be valid JSON");
        assert_eq!(text, spans.to_json());
    }

    #[test]
    fn profiled_sharded_run_writes_shard_lane_trace() {
        let path = std::env::temp_dir().join(format!(
            "adc_bench_shard_trace_test_{}.json",
            std::process::id()
        ));
        let args = BenchArgs {
            shards: 4,
            profile_shards: true,
            chrome_trace: Some(path.clone()),
            ..BenchArgs::default()
        };
        let experiment = Experiment::at_scale(Scale::Custom(0.002));
        let plain = experiment.run_adc();
        let observed = run_adc_observed(&experiment, &args);
        assert_eq!(
            plain.to_deterministic_json(),
            observed.to_deterministic_json()
        );
        let profile = observed.shard_profile.expect("profiler was on");
        assert_eq!(profile.shards, 4);
        assert!(profile.total_drain_ns() > 0);
        let text = std::fs::read_to_string(&path).expect("trace file written");
        std::fs::remove_file(&path).ok();
        adc_obs::validate_json(&text).expect("shard-lane trace must be valid JSON");
        for shard in 0..4 {
            assert!(text.contains(&format!("\"shard {shard}\"")), "lane {shard}");
        }
        assert!(text.contains("\"coordinator\""));
    }

    #[test]
    fn profile_flag_alone_routes_through_the_sharded_executor() {
        let args = BenchArgs {
            profile_shards: true,
            ..BenchArgs::default()
        };
        let experiment = Experiment::at_scale(Scale::Custom(0.002));
        let observed = run_adc_observed(&experiment, &args);
        let profile = observed.shard_profile.expect("profiler was on");
        assert_eq!(profile.shards, 1);
    }

    #[test]
    fn convergence_flag_populates_the_report() {
        let args = BenchArgs {
            convergence: true,
            ..BenchArgs::default()
        };
        assert!(obs_enabled(&args));
        let experiment = Experiment::at_scale(Scale::Custom(0.002));
        let report = run_adc_observed(&experiment, &args);
        let conv = report.convergence.expect("convergence sampling was on");
        assert!(conv.samples > 0);
        assert_eq!(conv.agreement.len(), conv.samples);
    }
}
