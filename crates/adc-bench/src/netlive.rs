//! Live TCP cluster replay shared by the `net_trace` binary and the
//! `bench_report` `net_trace` section.
//!
//! Both callers need the same thing: spawn a real [`Cluster`] of ADC
//! proxies on loopback, replay a deterministic request stream through
//! it, and — when tracing is on — scrape every node's span ring and
//! merge the scrapes onto the collector timeline. Keeping the replay
//! here means the overhead numbers in the report and the artifact the
//! CI leg uploads come from the identical code path.

use crate::netmerge::{merge_node_traces, MergedTrace, NodeTrace};
use adc_core::{AdcConfig, ClientId, ObjectId};
use adc_net::{drive_workload, drive_workload_traced, Cluster};
use adc_workload::{Phase, RequestRecord};
use std::io;
use std::time::{Duration, Instant};

/// Entry proxies in the standard live replay (one client lane plus
/// `proxy-0..=3` plus `origin` in the merged trace).
pub const LIVE_PROXIES: u32 = 4;

/// Outcome of one live replay.
#[derive(Debug)]
pub struct LiveReplay {
    /// Requests in the replayed stream.
    pub requests: u64,
    /// Requests completed (the rest timed out).
    pub completed: u64,
    /// Requests served from some proxy cache.
    pub hits: u64,
    /// Wall-clock time of the replay itself (cluster spawn and trace
    /// scraping excluded).
    pub wall: Duration,
    /// Spans dropped by full rings across every scraped node, plus the
    /// client ring. Zero unless the ring capacity is undersized.
    pub spans_dropped: u64,
    /// The clock-aligned cross-node merge; `None` for untraced replays.
    pub merged: Option<MergedTrace>,
}

impl LiveReplay {
    /// Requests per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.wall.as_secs_f64()
        }
    }
}

/// A deterministic request stream that exercises every span segment:
/// two thirds of requests revisit a 16-object hot set (local hits and
/// proxy-to-proxy forwards once the mapping tables learn), one third
/// are cold misses that must reach the origin. Clients rotate through
/// the entry proxies so traces enter the cluster everywhere.
pub fn live_workload(requests: u64) -> Vec<RequestRecord> {
    (0..requests)
        .map(|i| {
            let object = if i % 3 < 2 { 100 + i % 16 } else { 10_000 + i };
            RequestRecord {
                seq: i,
                client: ClientId::new((i % u64::from(LIVE_PROXIES)) as u32),
                object: ObjectId::new(object),
                size: 1024,
                phase: Phase::Fill,
            }
        })
        .collect()
}

fn live_config() -> AdcConfig {
    AdcConfig::builder()
        .single_capacity(256)
        .multiple_capacity(256)
        .cache_capacity(64)
        .max_hops(8)
        .build()
}

/// Spawns a fresh [`LIVE_PROXIES`]-proxy ADC cluster on loopback and
/// replays `workload` through it. With `trace_capacity` set, tracing is
/// on: every node records spans, the replay ends with a full scrape,
/// and the result carries the clock-aligned merge.
///
/// # Errors
///
/// Propagates socket and scrape errors, and lane parse errors as
/// [`io::ErrorKind::InvalidData`].
pub fn replay_live(
    workload: Vec<RequestRecord>,
    trace_capacity: Option<usize>,
) -> io::Result<LiveReplay> {
    tokio::runtime::block_on(async move {
        let requests = workload.len() as u64;
        let timeout = Duration::from_secs(5);
        match trace_capacity {
            None => {
                let cluster = Cluster::spawn_adc(LIVE_PROXIES, live_config()).await?;
                let start = Instant::now();
                let report = drive_workload(&cluster, workload, timeout).await?;
                let wall = start.elapsed();
                Ok(LiveReplay {
                    requests,
                    completed: report.completed,
                    hits: report.hits,
                    wall,
                    spans_dropped: 0,
                    merged: None,
                })
            }
            Some(capacity) => {
                let cluster =
                    Cluster::spawn_adc_traced(LIVE_PROXIES, live_config(), capacity).await?;
                let start = Instant::now();
                let traced = drive_workload_traced(&cluster, workload, timeout, None).await?;
                let wall = start.elapsed();

                let mut scrapes = cluster.collect_traces().await?;
                if let Some(client) = traced.client_trace {
                    scrapes.insert(0, ("client".to_string(), client));
                }
                let mut spans_dropped = 0;
                let mut nodes = Vec::with_capacity(scrapes.len());
                for (name, scrape) in &scrapes {
                    spans_dropped += scrape.dropped;
                    nodes.push(
                        NodeTrace::from_scrape(name, scrape)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                    );
                }
                Ok(LiveReplay {
                    requests,
                    completed: traced.report.completed,
                    hits: traced.report.hits,
                    wall,
                    spans_dropped,
                    merged: Some(merge_node_traces(&nodes)),
                })
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_mixes_hot_and_cold_across_entry_proxies() {
        let w = live_workload(60);
        assert_eq!(w.len(), 60);
        let hot = w.iter().filter(|r| r.object.raw() < 10_000).count();
        assert_eq!(hot, 40, "two thirds revisit the hot set");
        let clients: std::collections::HashSet<u32> = w.iter().map(|r| r.client.raw()).collect();
        assert_eq!(clients.len(), LIVE_PROXIES as usize);
    }

    #[test]
    fn traced_replay_merges_every_lane() {
        let replay = replay_live(live_workload(60), Some(4096)).expect("live replay");
        assert_eq!(replay.completed, 60);
        assert_eq!(replay.spans_dropped, 0);
        let merged = replay.merged.as_ref().expect("traced replay merges");
        // client + four proxies + origin.
        assert_eq!(merged.lanes.len(), LIVE_PROXIES as usize + 2);
        assert!(merged.cross_node_traces >= 1, "cold misses cross nodes");
        assert!(replay.requests_per_sec() > 0.0);
    }

    #[test]
    fn untraced_replay_reports_throughput_only() {
        let replay = replay_live(live_workload(30), None).expect("live replay");
        assert_eq!(replay.completed, 30);
        assert!(replay.merged.is_none());
        assert_eq!(replay.spans_dropped, 0);
    }
}
