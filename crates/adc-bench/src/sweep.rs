//! The table-size parameter sweep behind Figures 13, 14 and 15.
//!
//! "Our experiments with different table sizes were focused on the size
//! of 5k to 30k for the Caching, Multiple and Single-table. [...] The
//! static settings for all simulations were 10k for the caching table and
//! 20k for the single and multiple-table." One sweep produces the data
//! for all three figures (hits, hops, processing time by table size), so
//! the sweep result is cached on disk and shared between the figure
//! binaries.

use crate::experiment::Experiment;
use crate::scale::Scale;
use adc_core::AdcConfig;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Which of the three tables a sweep point varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweptTable {
    /// Vary the caching table, keep single/multiple at their defaults.
    Caching,
    /// Vary the multiple-table.
    Multiple,
    /// Vary the single-table.
    Single,
}

impl SweptTable {
    /// All three tables, in the paper's plotting order.
    pub const ALL: [SweptTable; 3] = [SweptTable::Caching, SweptTable::Multiple, SweptTable::Single];
}

impl fmt::Display for SweptTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SweptTable::Caching => "caching",
            SweptTable::Multiple => "multiple",
            SweptTable::Single => "single",
        };
        f.write_str(s)
    }
}

impl FromStr for SweptTable {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "caching" => Ok(SweptTable::Caching),
            "multiple" => Ok(SweptTable::Multiple),
            "single" => Ok(SweptTable::Single),
            other => Err(format!("unknown table {other:?}")),
        }
    }
}

/// One measured sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The table being varied.
    pub table: SweptTable,
    /// The varied table's capacity, in *paper-scale* entries (i.e. the
    /// nominal 5000..30000 axis, before scaling).
    pub nominal_size: usize,
    /// The actual capacity used after scaling.
    pub actual_size: usize,
    /// Overall hit rate of the run (Figure 13's y axis).
    pub hit_rate: f64,
    /// Mean hops per request (Figure 14's y axis).
    pub mean_hops: f64,
    /// Wall-clock seconds the simulation took (Figure 15's y axis).
    pub wall_secs: f64,
    /// Hit rate over the two request phases only (excludes the fill
    /// phase's compulsory misses).
    pub steady_hit_rate: f64,
}

/// The paper's sweep axis: 5k to 30k in steps of 5k.
pub const NOMINAL_SIZES: [usize; 6] = [5_000, 10_000, 15_000, 20_000, 25_000, 30_000];

/// Runs the full 3-table × 6-size sweep at the given scale.
///
/// This is 18 complete simulations; at `Scale::Full` expect tens of
/// minutes, at `Scale::Ci` a couple of minutes in release mode.
pub fn run_sweep(scale: Scale) -> Vec<SweepPoint> {
    let base = Experiment::at_scale(scale);
    let mut out = Vec::with_capacity(SweptTable::ALL.len() * NOMINAL_SIZES.len());
    for table in SweptTable::ALL {
        for nominal in NOMINAL_SIZES {
            let actual = scale.size(nominal);
            let adc = config_with(&base.adc, table, actual);
            let report = base.run_adc_with(adc);
            let steady = {
                let p1 = report.phases[1];
                let p2 = report.phases[2];
                let reqs = p1.requests + p2.requests;
                if reqs == 0 {
                    0.0
                } else {
                    (p1.hits + p2.hits) as f64 / reqs as f64
                }
            };
            out.push(SweepPoint {
                table,
                nominal_size: nominal,
                actual_size: actual,
                hit_rate: report.hit_rate(),
                mean_hops: report.mean_hops(),
                wall_secs: report.wall_time.as_secs_f64(),
                steady_hit_rate: steady,
            });
        }
    }
    out
}

/// Derives an [`AdcConfig`] with one table capacity overridden.
pub fn config_with(base: &AdcConfig, table: SweptTable, size: usize) -> AdcConfig {
    let mut adc = base.clone();
    match table {
        SweptTable::Caching => adc.cache_capacity = size,
        SweptTable::Multiple => adc.multiple_capacity = size,
        SweptTable::Single => adc.single_capacity = size,
    }
    adc
}

/// Where the sweep cache for `scale` lives under `out_dir`.
pub fn sweep_cache_path(out_dir: &Path, scale: Scale) -> PathBuf {
    out_dir.join(format!("sweep_{}.csv", scale.tag()))
}

/// Loads the cached sweep for `scale` if present, otherwise runs it and
/// caches the result. Figures 13–15 all call this, so the 18 simulations
/// run once.
///
/// # Errors
///
/// Returns I/O or parse errors from the cache file; a missing cache is
/// not an error (it triggers the run).
pub fn load_or_run_sweep(out_dir: &Path, scale: Scale) -> std::io::Result<Vec<SweepPoint>> {
    let path = sweep_cache_path(out_dir, scale);
    if path.exists() {
        let points = read_sweep(&path)?;
        if !points.is_empty() {
            eprintln!("using cached sweep {}", path.display());
            return Ok(points);
        }
    }
    eprintln!("running 18-point table-size sweep at scale {scale} ...");
    let points = run_sweep(scale);
    write_sweep(&path, &points)?;
    Ok(points)
}

/// Writes sweep points as CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_sweep(path: &Path, points: &[SweepPoint]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "table,nominal_size,actual_size,hit_rate,mean_hops,wall_secs,steady_hit_rate"
    )?;
    for p in points {
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            p.table, p.nominal_size, p.actual_size, p.hit_rate, p.mean_hops, p.wall_secs,
            p.steady_hit_rate
        )?;
    }
    Ok(())
}

/// Reads sweep points written by [`write_sweep`].
///
/// # Errors
///
/// Returns `InvalidData` on malformed content.
pub fn read_sweep(path: &Path) -> std::io::Result<Vec<SweepPoint>> {
    let f = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let bad =
            || std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad line: {line}"));
        if fields.len() != 7 {
            return Err(bad());
        }
        out.push(SweepPoint {
            table: fields[0].parse().map_err(|_| bad())?,
            nominal_size: fields[1].parse().map_err(|_| bad())?,
            actual_size: fields[2].parse().map_err(|_| bad())?,
            hit_rate: fields[3].parse().map_err(|_| bad())?,
            mean_hops: fields[4].parse().map_err(|_| bad())?,
            wall_secs: fields[5].parse().map_err(|_| bad())?,
            steady_hit_rate: fields[6].parse().map_err(|_| bad())?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_with_overrides_one_table() {
        let base = AdcConfig::default();
        let c = config_with(&base, SweptTable::Caching, 7);
        assert_eq!(c.cache_capacity, 7);
        assert_eq!(c.single_capacity, base.single_capacity);
        let c = config_with(&base, SweptTable::Single, 9);
        assert_eq!(c.single_capacity, 9);
        let c = config_with(&base, SweptTable::Multiple, 11);
        assert_eq!(c.multiple_capacity, 11);
    }

    #[test]
    fn sweep_csv_round_trip() {
        let points = vec![
            SweepPoint {
                table: SweptTable::Caching,
                nominal_size: 5_000,
                actual_size: 500,
                hit_rate: 0.62,
                mean_hops: 6.9,
                wall_secs: 1.25,
                steady_hit_rate: 0.7,
            },
            SweepPoint {
                table: SweptTable::Single,
                nominal_size: 30_000,
                actual_size: 3_000,
                hit_rate: 0.66,
                mean_hops: 6.5,
                wall_secs: 1.5,
                steady_hit_rate: 0.74,
            },
        ];
        let dir = std::env::temp_dir().join("adc-sweep-test");
        let path = dir.join("sweep.csv");
        write_sweep(&path, &points).unwrap();
        let back = read_sweep(&path).unwrap();
        assert_eq!(back, points);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_parse_round_trip() {
        for t in SweptTable::ALL {
            assert_eq!(t.to_string().parse::<SweptTable>().unwrap(), t);
        }
        assert!("bogus".parse::<SweptTable>().is_err());
    }

    #[test]
    fn tiny_sweep_runs() {
        // Not the cached path — a direct micro-scale sweep.
        let points = run_sweep(Scale::Custom(0.0005));
        assert_eq!(points.len(), 18);
        for p in &points {
            assert!(p.hit_rate >= 0.0 && p.hit_rate <= 1.0);
            assert!(p.mean_hops >= 2.0, "mean hops {}", p.mean_hops);
        }
    }
}
