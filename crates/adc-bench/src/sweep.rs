//! The table-size parameter sweep behind Figures 13, 14 and 15.
//!
//! "Our experiments with different table sizes were focused on the size
//! of 5k to 30k for the Caching, Multiple and Single-table. [...] The
//! static settings for all simulations were 10k for the caching table and
//! 20k for the single and multiple-table." One sweep produces the data
//! for all three figures (hits, hops, processing time by table size), so
//! the sweep result is cached on disk and shared between the figure
//! binaries.
//!
//! The 18 simulations are independent, so [`run_sweep_with`] fans them
//! out over [`crate::parallel::run_jobs`] against one shared,
//! pre-materialized trace. Results are collected into per-point slots,
//! making every field except the timing ones byte-identical to a serial
//! sweep. Because Figure 15 plots time, [`SweepOptions::serial_timing`]
//! optionally re-runs the sweep serially afterwards just to refresh
//! `wall_secs`/`cpu_secs` without core-sharing inflation.

use crate::experiment::Experiment;
use crate::parallel::{run_jobs, ExperimentJob};
use crate::scale::Scale;
use adc_core::AdcConfig;
use adc_sim::SimReport;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Which of the three tables a sweep point varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweptTable {
    /// Vary the caching table, keep single/multiple at their defaults.
    Caching,
    /// Vary the multiple-table.
    Multiple,
    /// Vary the single-table.
    Single,
}

impl SweptTable {
    /// All three tables, in the paper's plotting order.
    pub const ALL: [SweptTable; 3] = [
        SweptTable::Caching,
        SweptTable::Multiple,
        SweptTable::Single,
    ];
}

impl fmt::Display for SweptTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SweptTable::Caching => "caching",
            SweptTable::Multiple => "multiple",
            SweptTable::Single => "single",
        };
        f.write_str(s)
    }
}

impl FromStr for SweptTable {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "caching" => Ok(SweptTable::Caching),
            "multiple" => Ok(SweptTable::Multiple),
            "single" => Ok(SweptTable::Single),
            other => Err(format!("unknown table {other:?}")),
        }
    }
}

/// One measured sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The table being varied.
    pub table: SweptTable,
    /// The varied table's capacity, in *paper-scale* entries (i.e. the
    /// nominal 5000..30000 axis, before scaling).
    pub nominal_size: usize,
    /// The actual capacity used after scaling.
    pub actual_size: usize,
    /// Overall hit rate of the run (Figure 13's y axis).
    pub hit_rate: f64,
    /// Mean hops per request (Figure 14's y axis).
    pub mean_hops: f64,
    /// Wall-clock seconds the simulation took (Figure 15's y axis).
    /// Inflated by core sharing when the sweep ran with `jobs > 1`; see
    /// [`SweepOptions::serial_timing`].
    pub wall_secs: f64,
    /// CPU seconds the simulating thread consumed — comparable across
    /// parallel runs, unlike `wall_secs`. Zero on platforms without a
    /// per-thread CPU clock.
    pub cpu_secs: f64,
    /// Hit rate over the two request phases only (excludes the fill
    /// phase's compulsory misses).
    pub steady_hit_rate: f64,
}

/// The paper's sweep axis: 5k to 30k in steps of 5k.
pub const NOMINAL_SIZES: [usize; 6] = [5_000, 10_000, 15_000, 20_000, 25_000, 30_000];

/// How a sweep executes: worker-thread count and timing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// After a parallel sweep, re-run every point serially and keep only
    /// the serial timings, so `wall_secs` stays meaningful for Figure 15.
    pub serial_timing: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: crate::parallel::default_jobs(),
            serial_timing: false,
        }
    }
}

impl SweepOptions {
    /// Strictly serial execution — the reference the parallel path must
    /// reproduce.
    pub fn serial() -> Self {
        SweepOptions {
            jobs: 1,
            serial_timing: false,
        }
    }
}

impl From<&crate::cli::BenchArgs> for SweepOptions {
    fn from(args: &crate::cli::BenchArgs) -> Self {
        SweepOptions {
            jobs: args.jobs,
            serial_timing: args.serial_timing,
        }
    }
}

fn steady_hit_rate(report: &SimReport) -> f64 {
    let p1 = report.phases[1];
    let p2 = report.phases[2];
    let reqs = p1.requests + p2.requests;
    if reqs == 0 {
        0.0
    } else {
        (p1.hits + p2.hits) as f64 / reqs as f64
    }
}

fn point_from_report(
    table: SweptTable,
    nominal: usize,
    actual: usize,
    report: &SimReport,
) -> SweepPoint {
    SweepPoint {
        table,
        nominal_size: nominal,
        actual_size: actual,
        hit_rate: report.hit_rate(),
        mean_hops: report.mean_hops(),
        wall_secs: report.wall_time.as_secs_f64(),
        cpu_secs: report.cpu_time.as_secs_f64(),
        steady_hit_rate: steady_hit_rate(report),
    }
}

/// The sweep's 18 `(table, nominal, actual)` coordinates in output order.
fn sweep_grid(scale: Scale) -> Vec<(SweptTable, usize, usize)> {
    let mut grid = Vec::with_capacity(SweptTable::ALL.len() * NOMINAL_SIZES.len());
    for table in SweptTable::ALL {
        for nominal in NOMINAL_SIZES {
            grid.push((table, nominal, scale.size(nominal)));
        }
    }
    grid
}

/// Runs the full 3-table × 6-size sweep at the given scale, serially.
///
/// This is 18 complete simulations; at `Scale::Full` expect tens of
/// minutes, at `Scale::Ci` a couple of minutes in release mode. Use
/// [`run_sweep_with`] to spread the runs over worker threads.
pub fn run_sweep(scale: Scale) -> Vec<SweepPoint> {
    run_sweep_with(scale, SweepOptions::serial())
}

/// Runs the sweep with explicit execution options.
///
/// The workload trace is generated once and shared immutably across all
/// runs. Every run seeds its own RNGs, so the resulting points are
/// identical (excluding `wall_secs`/`cpu_secs`) for any `jobs` count;
/// the output order is always the grid order of
/// [`SweptTable::ALL`] × [`NOMINAL_SIZES`].
pub fn run_sweep_with(scale: Scale, options: SweepOptions) -> Vec<SweepPoint> {
    let mut base = Experiment::at_scale(scale);
    // Sweep points never read occupancy series; skip the per-completion
    // sampling of every proxy. Occupancy does not feed the RNG or event
    // order, so the measured fields are unchanged.
    base.sim.sample_occupancy = false;
    let trace = base.trace();
    let grid = sweep_grid(scale);

    // Each job also carries its run's orphaned-reply and trace-drop
    // counts, aggregated below — the sweep CSV schema itself is pinned
    // by golden files and stays unchanged.
    let jobs: Vec<ExperimentJob<(SweepPoint, u64, u64)>> = grid
        .iter()
        .map(|&(table, nominal, actual)| {
            let base = base.clone();
            let trace = trace.clone();
            ExperimentJob::new(format!("{table}@{nominal}"), move || {
                let adc = config_with(&base.adc, table, actual);
                let report = base.run_adc_with_on(adc, &trace);
                let orphaned = report.cluster_stats().replies_orphaned;
                (
                    point_from_report(table, nominal, actual, &report),
                    orphaned,
                    report.trace_dropped(),
                )
            })
        })
        .collect();
    let mut orphaned_total: u64 = 0;
    let mut dropped_total: u64 = 0;
    let mut points: Vec<SweepPoint> = run_jobs(jobs, options.jobs)
        .into_iter()
        .map(|(point, orphaned, dropped)| {
            orphaned_total += orphaned;
            dropped_total += dropped;
            point
        })
        .collect();
    if orphaned_total > 0 || dropped_total > 0 {
        eprintln!(
            "sweep observability: {orphaned_total} orphaned replies, \
             {dropped_total} trace-log drops across {} runs",
            points.len()
        );
    }

    if options.serial_timing && options.jobs > 1 {
        // Timing re-pass: identical runs, one at a time, keeping only the
        // uncontended timings. All other fields are already equal by
        // determinism (asserted here as a cheap regression tripwire).
        for (point, &(table, nominal, actual)) in points.iter_mut().zip(&grid) {
            let adc = config_with(&base.adc, table, actual);
            let report = base.run_adc_with_on(adc, &trace);
            let serial = point_from_report(table, nominal, actual, &report);
            assert_eq!(
                (point.hit_rate, point.mean_hops, point.steady_hit_rate),
                (serial.hit_rate, serial.mean_hops, serial.steady_hit_rate),
                "serial timing re-run diverged from the parallel run"
            );
            point.wall_secs = serial.wall_secs;
            point.cpu_secs = serial.cpu_secs;
        }
    }
    points
}

/// Derives an [`AdcConfig`] with one table capacity overridden.
pub fn config_with(base: &AdcConfig, table: SweptTable, size: usize) -> AdcConfig {
    let mut adc = base.clone();
    match table {
        SweptTable::Caching => adc.cache_capacity = size,
        SweptTable::Multiple => adc.multiple_capacity = size,
        SweptTable::Single => adc.single_capacity = size,
    }
    adc
}

/// Where the sweep cache for `scale` lives under `out_dir`.
pub fn sweep_cache_path(out_dir: &Path, scale: Scale) -> PathBuf {
    out_dir.join(format!("sweep_{}.csv", scale.tag()))
}

/// Loads the cached sweep for `scale` if present, otherwise runs it
/// serially and caches the result. Figures 13–15 all call this, so the
/// 18 simulations run once.
///
/// # Errors
///
/// Returns I/O or parse errors from the cache file; a missing cache is
/// not an error (it triggers the run).
pub fn load_or_run_sweep(out_dir: &Path, scale: Scale) -> std::io::Result<Vec<SweepPoint>> {
    load_or_run_sweep_with(out_dir, scale, SweepOptions::serial())
}

/// [`load_or_run_sweep`] with explicit execution options for the
/// cache-miss path.
///
/// # Errors
///
/// Returns I/O or parse errors from the cache file; a missing cache is
/// not an error (it triggers the run).
pub fn load_or_run_sweep_with(
    out_dir: &Path,
    scale: Scale,
    options: SweepOptions,
) -> std::io::Result<Vec<SweepPoint>> {
    let path = sweep_cache_path(out_dir, scale);
    if path.exists() {
        let points = read_sweep(&path)?;
        if !points.is_empty() {
            eprintln!("using cached sweep {}", path.display());
            return Ok(points);
        }
    }
    eprintln!(
        "running 18-point table-size sweep at scale {scale} ({} worker{}) ...",
        options.jobs,
        if options.jobs == 1 { "" } else { "s" }
    );
    let points = run_sweep_with(scale, options);
    write_sweep(&path, &points)?;
    Ok(points)
}

fn non_finite_error(context: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("non-finite value in sweep data: {context}"),
    )
}

/// Checks that every float field of `point` is finite.
///
/// # Errors
///
/// Returns `InvalidData` naming the first offending field.
fn validate_point(point: &SweepPoint) -> std::io::Result<()> {
    let fields = [
        ("hit_rate", point.hit_rate),
        ("mean_hops", point.mean_hops),
        ("wall_secs", point.wall_secs),
        ("cpu_secs", point.cpu_secs),
        ("steady_hit_rate", point.steady_hit_rate),
    ];
    for (name, value) in fields {
        if !value.is_finite() {
            return Err(non_finite_error(&format!(
                "{name}={value} ({} nominal {})",
                point.table, point.nominal_size
            )));
        }
    }
    Ok(())
}

/// Writes sweep points as CSV.
///
/// # Errors
///
/// Propagates I/O errors; rejects points containing non-finite floats
/// with `InvalidData` (NaN/inf would not round-trip through the reader).
pub fn write_sweep(path: &Path, points: &[SweepPoint]) -> std::io::Result<()> {
    for p in points {
        validate_point(p)?;
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "table,nominal_size,actual_size,hit_rate,mean_hops,wall_secs,cpu_secs,steady_hit_rate"
    )?;
    for p in points {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{}",
            p.table,
            p.nominal_size,
            p.actual_size,
            p.hit_rate,
            p.mean_hops,
            p.wall_secs,
            p.cpu_secs,
            p.steady_hit_rate
        )?;
    }
    f.flush()
}

/// Reads sweep points written by [`write_sweep`].
///
/// # Errors
///
/// Returns `InvalidData` on malformed content, including any non-finite
/// float field.
pub fn read_sweep(path: &Path) -> std::io::Result<Vec<SweepPoint>> {
    let f = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let bad =
            || std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad line: {line}"));
        if fields.len() != 8 {
            return Err(bad());
        }
        let point = SweepPoint {
            table: fields[0].parse().map_err(|_| bad())?,
            nominal_size: fields[1].parse().map_err(|_| bad())?,
            actual_size: fields[2].parse().map_err(|_| bad())?,
            hit_rate: fields[3].parse().map_err(|_| bad())?,
            mean_hops: fields[4].parse().map_err(|_| bad())?,
            wall_secs: fields[5].parse().map_err(|_| bad())?,
            cpu_secs: fields[6].parse().map_err(|_| bad())?,
            steady_hit_rate: fields[7].parse().map_err(|_| bad())?,
        };
        validate_point(&point)?;
        out.push(point);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A per-test unique directory, so concurrently running tests (and
    /// concurrent invocations of the whole suite) never share paths.
    fn unique_temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("adc-sweep-{tag}-{}-{n}", std::process::id()))
    }

    fn sample_points() -> Vec<SweepPoint> {
        vec![
            SweepPoint {
                table: SweptTable::Caching,
                nominal_size: 5_000,
                actual_size: 500,
                hit_rate: 0.62,
                mean_hops: 6.9,
                wall_secs: 1.25,
                cpu_secs: 1.2,
                steady_hit_rate: 0.7,
            },
            SweepPoint {
                table: SweptTable::Single,
                nominal_size: 30_000,
                actual_size: 3_000,
                hit_rate: 0.66,
                mean_hops: 6.5,
                wall_secs: 1.5,
                cpu_secs: 1.4,
                steady_hit_rate: 0.74,
            },
        ]
    }

    #[test]
    fn config_with_overrides_one_table() {
        let base = AdcConfig::default();
        let c = config_with(&base, SweptTable::Caching, 7);
        assert_eq!(c.cache_capacity, 7);
        assert_eq!(c.single_capacity, base.single_capacity);
        let c = config_with(&base, SweptTable::Single, 9);
        assert_eq!(c.single_capacity, 9);
        let c = config_with(&base, SweptTable::Multiple, 11);
        assert_eq!(c.multiple_capacity, 11);
    }

    #[test]
    fn sweep_csv_round_trip() {
        let points = sample_points();
        let dir = unique_temp_dir("round-trip");
        let path = dir.join("sweep.csv");
        write_sweep(&path, &points).unwrap();
        let back = read_sweep(&path).unwrap();
        assert_eq!(back, points);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_rejects_non_finite() {
        let dir = unique_temp_dir("write-nonfinite");
        let path = dir.join("sweep.csv");
        for (field, value) in [("nan", f64::NAN), ("inf", f64::INFINITY)] {
            let mut points = sample_points();
            points[0].mean_hops = value;
            let err = write_sweep(&path, &points).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{field}");
            assert!(!path.exists(), "rejected write must not create the file");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_rejects_non_finite() {
        let dir = unique_temp_dir("read-nonfinite");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.csv");
        for bad in ["NaN", "inf", "-inf"] {
            let csv = format!(
                "table,nominal_size,actual_size,hit_rate,mean_hops,wall_secs,cpu_secs,steady_hit_rate\n\
                 caching,5000,500,0.6,{bad},1.0,0.9,0.7\n"
            );
            std::fs::write(&path, csv).unwrap();
            let err = read_sweep(&path).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{bad}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_rejects_wrong_arity() {
        let dir = unique_temp_dir("read-arity");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.csv");
        // The pre-cpu_secs 7-column layout must be rejected, not
        // silently misparsed.
        std::fs::write(
            &path,
            "table,nominal_size,actual_size,hit_rate,mean_hops,wall_secs,steady_hit_rate\n\
             caching,5000,500,0.6,6.9,1.0,0.7\n",
        )
        .unwrap();
        let err = read_sweep(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_parse_round_trip() {
        for t in SweptTable::ALL {
            assert_eq!(t.to_string().parse::<SweptTable>().unwrap(), t);
        }
        assert!("bogus".parse::<SweptTable>().is_err());
    }

    #[test]
    fn tiny_sweep_runs() {
        // Not the cached path — a direct micro-scale sweep.
        let points = run_sweep(Scale::Custom(0.0005));
        assert_eq!(points.len(), 18);
        for p in &points {
            assert!(p.hit_rate >= 0.0 && p.hit_rate <= 1.0);
            assert!(p.mean_hops >= 2.0, "mean hops {}", p.mean_hops);
        }
    }
}
