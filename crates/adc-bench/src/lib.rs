//! # adc-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation section, plus Criterion micro-benchmarks.
//!
//! | Paper figure | Binary | Output |
//! |--------------|--------|--------|
//! | Fig. 11 (hit rate, ADC vs hashing) | `fig11_hit_rate` | `results/fig11_hit_rate_<scale>.csv` |
//! | Fig. 12 (hops, ADC vs hashing) | `fig12_hops` | `results/fig12_hops_<scale>.csv` |
//! | Fig. 13 (hits by table size) | `fig13_hits_by_size` | `results/fig13_hits_by_size_<scale>.csv` |
//! | Fig. 14 (hops by table size) | `fig14_hops_by_size` | `results/fig14_hops_by_size_<scale>.csv` |
//! | Fig. 15 (time by table size) | `fig15_time_by_size` | `results/fig15_time_by_size_<scale>.csv` |
//! | ablations (ours) | `ablation_policy`, `ablation_aging`, `ablation_max_hops` | `results/ablation_*.csv` |
//!
//! Run, for example:
//!
//! ```text
//! cargo run -p adc-bench --release --bin fig11_hit_rate -- --scale ci
//! ```
//!
//! Figures 13–15 share one 18-simulation sweep; its result is cached in
//! `results/sweep_<scale>.csv` so the three binaries compute it once.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod diff;
pub mod experiment;
pub mod netlive;
pub mod netmerge;
pub mod observe;
pub mod output;
pub mod parallel;
pub mod scale;
pub mod sweep;

pub use cli::BenchArgs;
pub use diff::{diff_reports, parse_flat_json, DiffConfig, DiffReport, Scalar};
pub use experiment::Experiment;
pub use netlive::{live_workload, replay_live, LiveReplay, LIVE_PROXIES};
pub use netmerge::{clock_offset_us, merge_node_traces, MergedTrace, NodeTrace, SegmentTotal};
pub use observe::{obs_enabled, observe_default_run, run_adc_observed};
pub use parallel::{default_jobs, run_jobs, ExperimentJob};
pub use scale::Scale;
pub use sweep::{
    load_or_run_sweep, load_or_run_sweep_with, run_sweep, run_sweep_with, SweepOptions, SweepPoint,
    SweptTable, NOMINAL_SIZES,
};
