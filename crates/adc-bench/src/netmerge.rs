//! Cross-node merge of live-cluster trace scrapes: clock alignment,
//! parent/child clamping, per-node chrome lanes and a per-segment
//! latency table.
//!
//! Every cluster node stamps its spans on its own monotonic clock
//! (microseconds since the node spawned), so raw scrapes from different
//! nodes are mutually unordered. The collector samples its own clock on
//! both sides of each in-band scrape ([`TraceScrapeResult`]'s `sent_us`
//! / `recv_us`) and the node reports its clock (`node_now_us`) while
//! answering; the classic NTP midpoint estimate
//! `offset = (sent + recv) / 2 − node_now` then maps every node clock
//! onto the collector's timeline to within half the scrape round-trip.
//!
//! Residual error (and genuine clock drift during the run) can still
//! make a child span poke outside its parent — a forward hop apparently
//! starting before the request arrived. The merge walks each trace's
//! parent/child tree and clamps children into their parent's bounds, so
//! the rendered chrome trace never shows a causal inversion; the number
//! of clamped spans is reported, because a large count means the offset
//! estimates are bad, not that causality broke.

use adc_net::TraceScrapeResult;
use adc_obs::netspan::{net_lanes_to_chrome_trace, parse_net_spans_jsonl, NetLane, NetSpan};
use adc_obs::netspan::{CLIENT_LANE, ORIGIN_LANE};
use adc_obs::SegmentKind;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One node's scraped spans plus the clock-offset estimate that maps
/// them onto the collector timeline.
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// Lane name (`client`, `proxy-<p>`, `origin`).
    pub name: String,
    /// The node's spans, still on the node's own clock.
    pub spans: Vec<NetSpan>,
    /// Estimated node-clock offset: add this to a node timestamp to get
    /// collector time.
    pub offset_us: i64,
}

/// The NTP-style midpoint estimate of a node's clock offset from the
/// collector, in microseconds: `(sent + recv) / 2 − node_now`. Accurate
/// to within half the scrape round-trip.
pub fn clock_offset_us(scrape: &TraceScrapeResult) -> i64 {
    let midpoint = scrape.sent_us / 2 + scrape.recv_us / 2;
    midpoint as i64 - scrape.node_now_us as i64
}

impl NodeTrace {
    /// Parses one scrape into a merge input, estimating the offset from
    /// its clock samples.
    ///
    /// # Errors
    ///
    /// Propagates JSONL parse errors, prefixed with the lane name.
    pub fn from_scrape(name: &str, scrape: &TraceScrapeResult) -> Result<NodeTrace, String> {
        let spans =
            parse_net_spans_jsonl(&scrape.jsonl).map_err(|e| format!("lane {name}: {e}"))?;
        Ok(NodeTrace {
            name: name.to_string(),
            spans,
            offset_us: clock_offset_us(scrape),
        })
    }
}

/// Totals for one segment kind across the merged spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentTotal {
    /// The segment kind (named by the shared `segment_names` consts).
    pub kind: SegmentKind,
    /// Spans of this kind.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
}

/// The result of merging every node's scrape onto one timeline.
#[derive(Debug, Clone)]
pub struct MergedTrace {
    /// Aligned spans grouped per node lane, each lane sorted by start
    /// time. Lane order: client, proxies ascending, origin.
    pub lanes: Vec<NetLane>,
    /// Distinct trace ids seen.
    pub traces: usize,
    /// Trace ids whose spans touch two or more distinct nodes.
    pub cross_node_traces: usize,
    /// Spans clamped into their parent's bounds to repair residual
    /// clock-alignment error.
    pub clamped: usize,
    /// Per-segment latency totals, in [`SegmentKind::ALL`] order, with
    /// zero-count kinds retained so the table shape is stable.
    pub segments: Vec<SegmentTotal>,
}

impl MergedTrace {
    /// Renders the merged lanes as a chrome `trace_event` JSON document
    /// (cluster nodes under one process, one thread lane per node).
    pub fn to_chrome_trace(&self) -> String {
        net_lanes_to_chrome_trace(&self.lanes)
    }

    /// The per-segment table as aligned text, for logs.
    pub fn segment_table(&self) -> String {
        let mut out = String::from("segment        count    total_us     mean_us\n");
        for seg in &self.segments {
            let mean = if seg.count > 0 {
                seg.total_us as f64 / seg.count as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<12} {:>8} {:>11} {:>11.1}\n",
                seg.kind.name(),
                seg.count,
                seg.total_us,
                mean
            ));
        }
        out
    }
}

/// Sort key giving the conventional lane order: client first, proxies
/// ascending, origin last.
fn lane_rank(node: u32) -> u64 {
    match node {
        CLIENT_LANE => 0,
        ORIGIN_LANE => u64::from(u32::MAX) + 2,
        p => u64::from(p) + 1,
    }
}

fn lane_name(node: u32) -> String {
    match node {
        CLIENT_LANE => "client".to_string(),
        ORIGIN_LANE => "origin".to_string(),
        p => format!("proxy-{p}"),
    }
}

/// Merges every node's scraped spans onto the collector timeline:
/// applies each node's clock offset, clamps children into their
/// parent's bounds trace by trace, and groups the result into per-node
/// lanes plus a per-segment latency table.
pub fn merge_node_traces(nodes: &[NodeTrace]) -> MergedTrace {
    // Align every span onto the collector clock.
    let mut spans: Vec<NetSpan> = Vec::with_capacity(nodes.iter().map(|n| n.spans.len()).sum());
    for node in nodes {
        for span in &node.spans {
            let mut s = *span;
            s.start_us = (s.start_us as i64 + node.offset_us).max(0) as u64;
            spans.push(s);
        }
    }

    // Clamp children into their parents, one trace at a time, walking
    // down from the roots so bounds propagate through chains.
    let mut by_trace: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_trace.entry(s.trace_id).or_default().push(i);
    }
    let mut clamped = 0usize;
    let mut cross_node_traces = 0usize;
    for members in by_trace.values() {
        let nodes_touched: HashSet<u32> = members.iter().map(|&i| spans[i].node).collect();
        if nodes_touched.len() >= 2 {
            cross_node_traces += 1;
        }
        let by_span: HashMap<u64, usize> = members.iter().map(|&i| (spans[i].span_id, i)).collect();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for &i in members {
            let parent = spans[i].parent_span;
            if parent != 0 && by_span.contains_key(&parent) {
                children.entry(parent).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        let mut stack = roots;
        while let Some(i) = stack.pop() {
            let (p_start, p_end) = (spans[i].start_us, spans[i].end_us());
            if let Some(kids) = children.get(&spans[i].span_id) {
                for &k in kids {
                    let start = spans[k].start_us.clamp(p_start, p_end);
                    let end = spans[k].end_us().clamp(start, p_end);
                    if start != spans[k].start_us || end != spans[k].end_us() {
                        clamped += 1;
                    }
                    spans[k].start_us = start;
                    spans[k].dur_us = end - start;
                    stack.push(k);
                }
            }
        }
    }
    let traces = by_trace.len();

    // Per-node lanes in conventional order, sorted within each lane.
    let mut by_lane: BTreeMap<u64, (u32, Vec<NetSpan>)> = BTreeMap::new();
    for s in spans {
        by_lane
            .entry(lane_rank(s.node))
            .or_insert_with(|| (s.node, Vec::new()))
            .1
            .push(s);
    }
    let lanes: Vec<NetLane> = by_lane
        .into_values()
        .map(|(node, mut spans)| {
            spans.sort_by_key(|s| (s.start_us, s.span_id));
            NetLane {
                name: lane_name(node),
                spans,
            }
        })
        .collect();

    let mut segments: Vec<SegmentTotal> = SegmentKind::ALL
        .into_iter()
        .map(|kind| SegmentTotal {
            kind,
            count: 0,
            total_us: 0,
        })
        .collect();
    for lane in &lanes {
        for s in &lane.spans {
            let seg = segments
                .iter_mut()
                .find(|seg| seg.kind == s.kind)
                .expect("SegmentKind::ALL covers every kind");
            seg.count += 1;
            seg.total_us += s.dur_us;
        }
    }

    MergedTrace {
        lanes,
        traces,
        cross_node_traces,
        clamped,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_obs::netspan::net_spans_to_jsonl;
    use adc_obs::validate_json;

    fn span(
        trace: u64,
        span_id: u64,
        parent: u64,
        node: u32,
        kind: SegmentKind,
        start_us: u64,
        dur_us: u64,
    ) -> NetSpan {
        NetSpan {
            trace_id: trace,
            span_id,
            parent_span: parent,
            node,
            kind,
            start_us,
            dur_us,
            object: 9,
            hop: 0,
        }
    }

    /// Packages spans as a scrape whose node clock is `true + skew`,
    /// scraped at collector time `scrape_at`.
    fn scrape(spans: &[NetSpan], skew: i64, scrape_at: u64) -> TraceScrapeResult {
        let shifted: Vec<NetSpan> = spans
            .iter()
            .map(|s| {
                let mut s = *s;
                s.start_us = (s.start_us as i64 + skew) as u64;
                s
            })
            .collect();
        TraceScrapeResult {
            node_now_us: (scrape_at as i64 + skew) as u64,
            dropped: 0,
            jsonl: net_spans_to_jsonl(&shifted),
            sent_us: scrape_at,
            recv_us: scrape_at,
        }
    }

    /// Three-node flow on the true timeline: the client waits 1000–9000,
    /// proxy 2 forwards 2000–8000 under it, the origin serves 3000–7000
    /// under that.
    fn true_flow() -> (Vec<NetSpan>, Vec<NetSpan>, Vec<NetSpan>) {
        let client = vec![span(
            7,
            100,
            0,
            CLIENT_LANE,
            SegmentKind::ClientWait,
            1000,
            8000,
        )];
        let proxy = vec![span(7, 200, 100, 2, SegmentKind::ForwardHop, 2000, 6000)];
        let origin = vec![span(
            7,
            300,
            200,
            ORIGIN_LANE,
            SegmentKind::OriginFetch,
            3000,
            4000,
        )];
        (client, proxy, origin)
    }

    fn assert_no_inversion(merged: &MergedTrace) {
        let all: Vec<&NetSpan> = merged.lanes.iter().flat_map(|l| &l.spans).collect();
        for s in &all {
            if s.parent_span == 0 {
                continue;
            }
            let parent = all
                .iter()
                .find(|p| p.span_id == s.parent_span)
                .expect("parent present");
            assert!(
                s.start_us >= parent.start_us && s.end_us() <= parent.end_us(),
                "span {} [{}, {}] pokes outside parent {} [{}, {}]",
                s.span_id,
                s.start_us,
                s.end_us(),
                parent.span_id,
                parent.start_us,
                parent.end_us()
            );
        }
        for lane in &merged.lanes {
            for pair in lane.spans.windows(2) {
                assert!(pair[0].start_us <= pair[1].start_us, "lane not monotone");
            }
        }
    }

    #[test]
    fn fixed_skew_realigns_exactly() {
        let (client, proxy, origin) = true_flow();
        // The proxy clock runs 500ms ahead, the origin 300ms behind.
        let nodes = vec![
            NodeTrace::from_scrape("client", &scrape(&client, 0, 100_000)).unwrap(),
            NodeTrace::from_scrape("proxy-2", &scrape(&proxy, 500_000, 100_000)).unwrap(),
            NodeTrace::from_scrape("origin", &scrape(&origin, -300_000, 100_000)).unwrap(),
        ];
        assert_eq!(nodes[1].offset_us, -500_000);
        assert_eq!(nodes[2].offset_us, 300_000);
        let merged = merge_node_traces(&nodes);
        assert_eq!(merged.traces, 1);
        assert_eq!(merged.cross_node_traces, 1);
        assert_eq!(merged.clamped, 0, "perfect offsets need no clamping");
        assert_eq!(merged.lanes.len(), 3);
        assert_eq!(merged.lanes[0].name, "client");
        assert_eq!(merged.lanes[1].name, "proxy-2");
        assert_eq!(merged.lanes[2].name, "origin");
        // Back on the true timeline.
        assert_eq!(merged.lanes[1].spans[0].start_us, 2000);
        assert_eq!(merged.lanes[2].spans[0].start_us, 3000);
        assert_no_inversion(&merged);
        validate_json(&merged.to_chrome_trace()).expect("chrome trace is valid JSON");
    }

    #[test]
    fn drifting_skew_is_clamped_into_causal_order() {
        let (client, proxy, origin) = true_flow();
        // The proxy's clock drifts: it gained 1500us between recording
        // the span and answering the scrape, so the scrape-time offset
        // over-corrects the span into the past — before its parent.
        let mut drifted = scrape(&proxy, 500_000, 100_000);
        drifted.node_now_us += 1500;
        let nodes = vec![
            NodeTrace::from_scrape("client", &scrape(&client, 0, 100_000)).unwrap(),
            NodeTrace::from_scrape("proxy-2", &drifted).unwrap(),
            NodeTrace::from_scrape("origin", &scrape(&origin, 0, 100_000)).unwrap(),
        ];
        let merged = merge_node_traces(&nodes);
        assert!(merged.clamped >= 1, "drift must force a clamp");
        assert_no_inversion(&merged);
        validate_json(&merged.to_chrome_trace()).unwrap();
    }

    #[test]
    fn asymmetric_scrape_window_still_bounds_the_offset() {
        let (client, _, _) = true_flow();
        let s = TraceScrapeResult {
            node_now_us: 61_000,
            dropped: 0,
            jsonl: net_spans_to_jsonl(&client),
            sent_us: 50_000,
            recv_us: 70_000,
        };
        // midpoint 60_000 − 61_000 = −1_000.
        assert_eq!(clock_offset_us(&s), -1_000);
    }

    #[test]
    fn segment_table_covers_every_kind_with_stable_shape() {
        let (client, proxy, origin) = true_flow();
        let nodes = vec![
            NodeTrace::from_scrape("client", &scrape(&client, 0, 100_000)).unwrap(),
            NodeTrace::from_scrape("proxy-2", &scrape(&proxy, 0, 100_000)).unwrap(),
            NodeTrace::from_scrape("origin", &scrape(&origin, 0, 100_000)).unwrap(),
        ];
        let merged = merge_node_traces(&nodes);
        assert_eq!(merged.segments.len(), SegmentKind::COUNT);
        let wait = &merged.segments[0];
        assert_eq!(wait.kind, SegmentKind::ClientWait);
        assert_eq!(wait.count, 1);
        assert_eq!(wait.total_us, 8000);
        let table = merged.segment_table();
        for kind in SegmentKind::ALL {
            assert!(table.contains(kind.name()), "table missing {kind:?}");
        }
    }

    #[test]
    fn orphan_spans_survive_as_roots() {
        // A span whose parent was dropped from a full ring merges as a
        // root rather than disappearing.
        let orphan = vec![span(9, 500, 12345, 1, SegmentKind::ReplyReturn, 50, 10)];
        let nodes = vec![NodeTrace::from_scrape("proxy-1", &scrape(&orphan, 0, 100)).unwrap()];
        let merged = merge_node_traces(&nodes);
        assert_eq!(merged.lanes.len(), 1);
        assert_eq!(merged.lanes[0].spans.len(), 1);
        assert_eq!(merged.cross_node_traces, 0);
        validate_json(&merged.to_chrome_trace()).unwrap();
    }
}
