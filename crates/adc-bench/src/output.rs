//! Console/CSV output helpers for the figure binaries.

use crate::cli::BenchArgs;
use crate::experiment::Experiment;
use adc_metrics::Series;
use adc_sim::SimReport;
use adc_workload::Phase;

/// Applies the CLI seed override to an experiment.
pub fn apply_args(mut experiment: Experiment, args: &BenchArgs) -> Experiment {
    if let Some(seed) = args.seed {
        experiment.workload.seed = seed;
        experiment.sim.seed = seed ^ 0x51D3;
    }
    experiment
}

/// Prints aligned series columns to stdout, thinned to at most
/// `max_rows` evenly spaced rows so full-scale runs stay readable.
pub fn print_series_table(x_label: &str, series: &[&Series], max_rows: usize) {
    print!("{x_label:>12}");
    for s in series {
        print!(" {:>12}", s.name);
    }
    println!();
    let longest = series.iter().map(|s| s.len()).max().unwrap_or(0);
    if longest == 0 {
        println!("{:>12}", "(no data)");
        return;
    }
    let step = longest.div_ceil(max_rows.max(1)).max(1);
    for i in (0..longest).step_by(step) {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|&(x, _)| x))
            .unwrap_or(i as f64);
        print!("{x:>12.0}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => print!(" {y:>12.4}"),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
}

/// Prints the standard per-run summary block.
pub fn print_run_summary(name: &str, report: &SimReport) {
    println!("--- {name} ---");
    println!("  completed requests : {}", report.completed);
    println!("  overall hit rate   : {:.4}", report.hit_rate());
    for (phase, label) in [
        (Phase::Fill, "fill phase hit rate"),
        (Phase::RequestI, "phase I hit rate   "),
        (Phase::RequestII, "phase II hit rate  "),
    ] {
        let p = report.phase(phase);
        println!("  {label}: {:.4} ({} requests)", p.hit_rate(), p.requests);
    }
    println!("  mean hops          : {:.3}", report.mean_hops());
    println!(
        "  mean latency       : {:.2} ms",
        report.latency_us.mean().unwrap_or(0.0) / 1000.0
    );
    println!("  messages delivered : {}", report.messages_delivered);
    println!("  wall time          : {:.3?}", report.wall_time);
    let stats = report.cluster_stats();
    println!(
        "  origin fetches     : {} (loops {}, max-hops {}, this-miss {})",
        stats.origin_forwards(),
        stats.origin_loops,
        stats.origin_max_hops,
        stats.origin_this_miss
    );
    println!(
        "  replies orphaned   : {} (trace-log drops: {})",
        stats.replies_orphaned,
        report.trace_dropped()
    );
    if let Some(conv) = &report.convergence {
        println!(
            "  convergence        : agreement {:.4} after {} samples ({} remaps, {} churn)",
            conv.final_agreement().unwrap_or(0.0),
            conv.samples,
            conv.total_remaps,
            conv.total_churn
        );
    }
}

/// Renames a series (builder-style convenience for figure output).
pub fn named(series: &Series, name: &str) -> Series {
    Series {
        name: name.to_string(),
        points: series.points.clone(),
    }
}
