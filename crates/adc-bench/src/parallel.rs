//! A small parallel executor for experiment runs.
//!
//! Every figure binary boils down to "run N independent simulations and
//! collect their reports in a fixed order". [`run_jobs`] does exactly
//! that: jobs are claimed from a shared queue by scoped worker threads
//! and each result lands in the slot matching the job's position, so the
//! output order — and therefore every downstream CSV — is identical no
//! matter how the scheduler interleaves the workers. Determinism of the
//! results themselves comes from the simulator: each run seeds its own
//! RNGs from its config, so concurrency cannot perturb anything but
//! timing.
//!
//! Timing is the one observable that *does* change under parallelism:
//! wall-clock time inflates when runs share cores. Callers that chart
//! time (Figure 15) should prefer [`SimReport::cpu_time`] or re-run the
//! timing-sensitive points serially (`--serial-timing`).
//!
//! [`SimReport::cpu_time`]: adc_sim::SimReport::cpu_time

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of work: a label (for progress reporting) plus a closure
/// producing the run's result.
pub struct ExperimentJob<T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'static>,
}

impl<T> ExperimentJob<T> {
    /// Wraps a closure as a job.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> Self {
        ExperimentJob {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The job's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<T> fmt::Debug for ExperimentJob<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentJob")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `jobs` across up to `threads` worker threads and returns their
/// results **in job order**, independent of scheduling.
///
/// With `threads <= 1` (or a single job) the jobs run serially on the
/// calling thread — the fast path the determinism tests compare against.
/// Worker panics propagate to the caller when the scope joins.
///
/// # Examples
///
/// ```
/// use adc_bench::parallel::{run_jobs, ExperimentJob};
///
/// let jobs: Vec<ExperimentJob<u64>> = (0..8)
///     .map(|i| ExperimentJob::new(format!("square {i}"), move || i * i))
///     .collect();
/// assert_eq!(run_jobs(jobs, 4), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_jobs<T: Send>(jobs: Vec<ExperimentJob<T>>, threads: usize) -> Vec<T> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| (job.run)()).collect();
    }

    let total = jobs.len();
    let queue: Vec<Mutex<Option<ExperimentJob<T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(total);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    return;
                }
                let job = queue[index]
                    .lock()
                    .expect("job queue poisoned")
                    .take()
                    .expect("job claimed twice");
                let result = (job.run)();
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: u64) -> Vec<ExperimentJob<u64>> {
        (0..n)
            .map(|i| ExperimentJob::new(format!("sq{i}"), move || i * i))
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let expected: Vec<u64> = (0..32).map(|i| i * i).collect();
        assert_eq!(run_jobs(squares(32), 1), expected);
        assert_eq!(run_jobs(squares(32), 4), expected);
        assert_eq!(run_jobs(squares(32), 64), expected);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(
            run_jobs(Vec::<ExperimentJob<u64>>::new(), 4),
            Vec::<u64>::new()
        );
        assert_eq!(run_jobs(squares(1), 4), vec![0]);
    }

    #[test]
    fn results_keep_job_order_under_skewed_run_times() {
        // Early jobs sleep longest; without pre-indexed slots the fast
        // late jobs would finish (and be collected) first.
        let jobs: Vec<ExperimentJob<usize>> = (0..8)
            .map(|i| {
                ExperimentJob::new(format!("job{i}"), move || {
                    std::thread::sleep(std::time::Duration::from_millis((8 - i as u64) * 3));
                    i
                })
            })
            .collect();
        assert_eq!(run_jobs(jobs, 4), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn labels_are_preserved() {
        let job = ExperimentJob::new("table=5000", || 42u8);
        assert_eq!(job.label(), "table=5000");
        assert!(format!("{job:?}").contains("table=5000"));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let jobs = vec![
            ExperimentJob::new("ok", || 1u8),
            ExperimentJob::new("boom", || panic!("job failure")),
        ];
        let _ = run_jobs(jobs, 2);
    }
}
