//! # adc-workload
//!
//! Synthetic request workloads for the ADC reproduction.
//!
//! The paper evaluated against a ~3.99-million-request file produced by
//! the Web Polygraph benchmarking tool; [`PolygraphConfig`] generates a
//! deterministic stream with the same three-phase shape (fill → request
//! phase I → replayed request phase II), Zipf-like popularity and
//! heavy-tailed object sizes. [`StationaryZipf`], [`UniformWorkload`] and
//! [`FlashCrowd`] provide additional scenarios, and [`trace`] reads and
//! writes request traces as CSV.
//!
//! # Examples
//!
//! ```
//! use adc_workload::PolygraphConfig;
//!
//! // A 1/1000-scale version of the paper's workload.
//! let config = PolygraphConfig::scaled(0.001);
//! let requests: Vec<_> = config.build().collect();
//! assert_eq!(requests.len() as u64, config.total_requests());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod polygraph;
mod shared;
mod sizes;
mod synthetic;
pub mod trace;
mod zipf;

pub use polygraph::{Polygraph, PolygraphConfig};
pub use shared::{SharedTrace, SharedTraceIter};
pub use sizes::SizeModel;
pub use synthetic::{FlashCrowd, LruStackWorkload, ShiftingZipf, StationaryZipf, UniformWorkload};
pub use trace::{Phase, RequestRecord, TraceParseError};
pub use zipf::Zipf;
