//! Trace analysis: the statistics the paper (and the web-caching
//! literature it cites) uses to characterize request streams.
//!
//! These run over any `IntoIterator<Item = RequestRecord>`, so they apply
//! equally to generated workloads and traces read back from disk.

use crate::trace::RequestRecord;
use adc_core::ObjectId;
// Ordered maps throughout: these aggregates are iterated, and ties in
// the sorted outputs must not depend on a randomized hasher.
use std::collections::BTreeMap;

/// Aggregate statistics of a request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total requests.
    pub requests: u64,
    /// Distinct objects.
    pub distinct_objects: u64,
    /// Fraction of requests that repeat an earlier object — the upper
    /// bound on any cache hierarchy's hit rate ("offered hit ratio").
    pub recurrence_ratio: f64,
    /// Requests to the single most popular object.
    pub top_object_requests: u64,
    /// Mean requests per distinct object.
    pub mean_requests_per_object: f64,
    /// Estimated Zipf exponent of the popularity distribution (see
    /// [`zipf_alpha_estimate`]); `None` for degenerate streams.
    pub zipf_alpha: Option<f64>,
    /// Total bytes across all requests.
    pub total_bytes: u64,
}

/// Computes [`TraceStats`] over a stream.
pub fn trace_stats(records: impl IntoIterator<Item = RequestRecord>) -> TraceStats {
    let mut counts: BTreeMap<ObjectId, u64> = BTreeMap::new();
    let mut requests = 0u64;
    let mut total_bytes = 0u64;
    for r in records {
        *counts.entry(r.object).or_default() += 1;
        requests += 1;
        total_bytes += u64::from(r.size);
    }
    let distinct = counts.len() as u64;
    let repeats = requests.saturating_sub(distinct);
    let top = counts.values().copied().max().unwrap_or(0);
    let freqs: Vec<u64> = counts.into_values().collect();
    TraceStats {
        requests,
        distinct_objects: distinct,
        recurrence_ratio: if requests == 0 {
            0.0
        } else {
            repeats as f64 / requests as f64
        },
        top_object_requests: top,
        mean_requests_per_object: if distinct == 0 {
            0.0
        } else {
            requests as f64 / distinct as f64
        },
        zipf_alpha: zipf_alpha_estimate(&freqs),
        total_bytes,
    }
}

/// Estimates the Zipf exponent by least-squares regression of
/// `log(frequency)` on `log(rank)` over objects requested at least
/// twice. Returns `None` when fewer than three such objects exist.
///
/// # Examples
///
/// ```
/// use adc_workload::analysis::zipf_alpha_estimate;
///
/// // A perfect Zipf(1.0) profile: freq ∝ 1/rank.
/// let freqs: Vec<u64> = (1..=100u64).map(|rank| 10_000 / rank).collect();
/// let alpha = zipf_alpha_estimate(&freqs).unwrap();
/// assert!((alpha - 1.0).abs() < 0.1, "estimated {alpha}");
/// ```
pub fn zipf_alpha_estimate(frequencies: &[u64]) -> Option<f64> {
    let mut freqs: Vec<u64> = frequencies.iter().copied().filter(|&f| f >= 2).collect();
    if freqs.len() < 3 {
        return None;
    }
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let points: Vec<(f64, f64)> = freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| (((i + 1) as f64).ln(), (f as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

/// Per-object inter-request gap statistics: the quantity ADC's tables
/// measure. Returns `(object, mean_gap)` for every object with at least
/// two requests, where the gap is in stream positions.
pub fn mean_inter_request_gaps(
    records: impl IntoIterator<Item = RequestRecord>,
) -> Vec<(ObjectId, f64)> {
    let mut last_seen: BTreeMap<ObjectId, (u64, f64, u64)> = BTreeMap::new(); // (last, sum, gaps)
    for (pos, r) in records.into_iter().enumerate() {
        let pos = pos as u64;
        match last_seen.get_mut(&r.object) {
            Some((last, sum, gaps)) => {
                *sum += (pos - *last) as f64;
                *gaps += 1;
                *last = pos;
            }
            None => {
                last_seen.insert(r.object, (pos, 0.0, 0));
            }
        }
    }
    let mut out: Vec<(ObjectId, f64)> = last_seen
        .into_iter()
        .filter(|(_, (_, _, gaps))| *gaps > 0)
        .map(|(o, (_, sum, gaps))| (o, sum / gaps as f64))
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

/// The popularity histogram: how many objects were requested exactly
/// `k` times, as `(k, object_count)` sorted by `k`.
pub fn popularity_histogram(records: impl IntoIterator<Item = RequestRecord>) -> Vec<(u64, u64)> {
    let mut counts: BTreeMap<ObjectId, u64> = BTreeMap::new();
    for r in records {
        *counts.entry(r.object).or_default() += 1;
    }
    let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
    for c in counts.into_values() {
        *hist.entry(c).or_default() += 1;
    }
    let mut out: Vec<(u64, u64)> = hist.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Phase;
    use adc_core::ClientId;

    fn stream(objects: &[u64]) -> Vec<RequestRecord> {
        objects
            .iter()
            .enumerate()
            .map(|(i, &o)| RequestRecord {
                seq: i as u64,
                client: ClientId::new(0),
                object: ObjectId::new(o),
                size: 100,
                phase: Phase::RequestI,
            })
            .collect()
    }

    #[test]
    fn stats_on_simple_stream() {
        let s = trace_stats(stream(&[1, 2, 1, 3, 1, 2]));
        assert_eq!(s.requests, 6);
        assert_eq!(s.distinct_objects, 3);
        assert!((s.recurrence_ratio - 0.5).abs() < 1e-12);
        assert_eq!(s.top_object_requests, 3);
        assert!((s.mean_requests_per_object - 2.0).abs() < 1e-12);
        assert_eq!(s.total_bytes, 600);
    }

    #[test]
    fn empty_stream() {
        let s = trace_stats(stream(&[]));
        assert_eq!(s.requests, 0);
        assert_eq!(s.recurrence_ratio, 0.0);
        assert_eq!(s.zipf_alpha, None);
    }

    #[test]
    fn alpha_estimate_recovers_generated_alpha() {
        // Generate a real Zipf stream and check the estimator lands near
        // the generating exponent.
        let workload: Vec<_> = crate::StationaryZipf::new(500, 0.9, 4, 3)
            .take(100_000)
            .collect();
        let s = trace_stats(workload);
        let alpha = s.zipf_alpha.expect("enough data");
        assert!(
            (alpha - 0.9).abs() < 0.15,
            "estimated {alpha}, generated 0.9"
        );
    }

    #[test]
    fn gaps_identify_hot_objects() {
        // Object 1 appears every 2 positions, object 2 every 4.
        let s = stream(&[1, 2, 1, 9, 1, 2, 1, 8, 1]);
        let gaps = mean_inter_request_gaps(s);
        let gap_of = |o: u64| {
            gaps.iter()
                .find(|(obj, _)| obj.raw() == o)
                .map(|&(_, g)| g)
                .unwrap()
        };
        assert_eq!(gap_of(1), 2.0);
        assert_eq!(gap_of(2), 4.0);
        // Sorted ascending: hottest (smallest gap) first.
        assert_eq!(gaps[0].0.raw(), 1);
        // One-timers excluded.
        assert!(gaps.iter().all(|(o, _)| o.raw() != 9));
    }

    #[test]
    fn histogram_counts_objects_by_frequency() {
        let h = popularity_histogram(stream(&[1, 1, 1, 2, 2, 3]));
        assert_eq!(h, vec![(1, 1), (2, 1), (3, 1)]);
        let h = popularity_histogram(stream(&[1, 2, 3, 4]));
        assert_eq!(h, vec![(1, 4)]);
    }

    #[test]
    fn alpha_none_for_degenerate() {
        assert_eq!(zipf_alpha_estimate(&[1, 1, 1]), None);
        assert_eq!(zipf_alpha_estimate(&[5, 5]), None);
        // All-equal frequencies give slope 0 → alpha ≈ 0.
        let alpha = zipf_alpha_estimate(&[5, 5, 5, 5]).unwrap();
        assert!(alpha.abs() < 1e-9);
    }
}
