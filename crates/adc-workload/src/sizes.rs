//! Deterministic per-object size assignment.
//!
//! Web object sizes are heavy-tailed; Polygraph's content model mixes
//! small HTML pages and images with a long tail of large downloads. We
//! assign each object a size drawn from a lognormal-like distribution,
//! *derived deterministically from the object ID*, so the same object
//! always has the same size in every run and every crate.

use adc_core::ObjectId;

/// Deterministic lognormal-ish size model.
///
/// # Examples
///
/// ```
/// use adc_workload::SizeModel;
/// use adc_core::ObjectId;
///
/// let model = SizeModel::default();
/// let a = model.size_of(ObjectId::new(42));
/// assert_eq!(a, model.size_of(ObjectId::new(42))); // stable
/// assert!(a >= 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeModel {
    /// Mean of the underlying normal (log of bytes).
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
    /// Lower clamp in bytes.
    pub min_bytes: u32,
    /// Upper clamp in bytes.
    pub max_bytes: u32,
}

impl Default for SizeModel {
    /// Median ≈ 6 KiB with a tail out to 1 MiB — close to the classic
    /// proxy-trace mix.
    fn default() -> Self {
        SizeModel {
            mu: 8.7, // e^8.7 ≈ 6 KiB
            sigma: 1.2,
            min_bytes: 128,
            max_bytes: 1 << 20,
        }
    }
}

impl SizeModel {
    /// Returns the size in bytes for `object`, stable across calls.
    pub fn size_of(&self, object: ObjectId) -> u32 {
        // Two independent uniforms from the object ID via splitmix64.
        let u1 = to_unit(splitmix64(object.raw() ^ 0x9e37_79b9_7f4a_7c15));
        let u2 = to_unit(splitmix64(object.raw().wrapping_add(0x85eb_ca6b_27d4_eb4f)));
        // Box–Muller.
        let r = (-2.0 * u1.max(1e-12).ln()).sqrt();
        let z = r * (2.0 * std::f64::consts::PI * u2).cos();
        let bytes = (self.mu + self.sigma * z).exp();
        let clamped = bytes.clamp(self.min_bytes as f64, self.max_bytes as f64);
        clamped as u32
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn to_unit(x: u64) -> f64 {
    // 53 high bits → [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_stable() {
        let m = SizeModel::default();
        for i in 0..100 {
            assert_eq!(m.size_of(ObjectId::new(i)), m.size_of(ObjectId::new(i)));
        }
    }

    #[test]
    fn sizes_respect_clamps() {
        let m = SizeModel::default();
        for i in 0..10_000 {
            let s = m.size_of(ObjectId::new(i));
            assert!(s >= m.min_bytes && s <= m.max_bytes, "size {s}");
        }
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let m = SizeModel::default();
        let sizes: Vec<u32> = (0..50_000).map(|i| m.size_of(ObjectId::new(i))).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        // Lognormal: mean well above median.
        assert!(mean > 1.3 * median, "mean {mean}, median {median}");
        // Median in a plausible web-object band (2–20 KiB).
        assert!((2_000.0..20_000.0).contains(&median), "median {median}");
    }

    #[test]
    fn different_objects_get_varied_sizes() {
        let m = SizeModel::default();
        let distinct: std::collections::HashSet<u32> =
            (0..1000).map(|i| m.size_of(ObjectId::new(i))).collect();
        assert!(distinct.len() > 500);
    }
}
