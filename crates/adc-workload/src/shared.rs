//! Immutable, cheaply cloneable materialized traces.
//!
//! Parameter sweeps run the *same* workload through many simulator
//! configurations. Regenerating the request stream for every run wastes
//! time and — worse — makes it easy to accidentally perturb the stream
//! between runs. [`SharedTrace`] materializes a workload once into an
//! `Arc<[RequestRecord]>` that every run iterates over by value: clones
//! are O(1), the records are immutable, and all consumers observe the
//! byte-identical request sequence regardless of which thread runs them.

use crate::trace::RequestRecord;
use std::sync::Arc;

/// A materialized request trace, shared immutably between simulation runs.
///
/// Cloning is O(1) (an `Arc` bump); iteration yields [`RequestRecord`]s by
/// value in trace order.
///
/// # Examples
///
/// ```
/// use adc_workload::{PolygraphConfig, SharedTrace};
///
/// let config = PolygraphConfig::scaled(0.001);
/// let trace: SharedTrace = config.build().collect();
/// assert_eq!(trace.len() as u64, config.total_requests());
/// // Two iterations over clones observe identical records.
/// let a: Vec<_> = trace.clone().into_iter().collect();
/// let b: Vec<_> = trace.iter().collect();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SharedTrace {
    records: Arc<[RequestRecord]>,
}

impl SharedTrace {
    /// Wraps already-materialized records.
    pub fn new(records: impl Into<Arc<[RequestRecord]>>) -> SharedTrace {
        SharedTrace {
            records: records.into(),
        }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The underlying records.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// An owning iterator over the records (by value, in order) that keeps
    /// the shared storage alive — usable wherever a workload iterator is
    /// expected.
    pub fn iter(&self) -> SharedTraceIter {
        SharedTraceIter {
            records: Arc::clone(&self.records),
            pos: 0,
        }
    }
}

impl From<Vec<RequestRecord>> for SharedTrace {
    fn from(records: Vec<RequestRecord>) -> SharedTrace {
        SharedTrace {
            records: records.into(),
        }
    }
}

impl FromIterator<RequestRecord> for SharedTrace {
    fn from_iter<I: IntoIterator<Item = RequestRecord>>(iter: I) -> SharedTrace {
        SharedTrace {
            records: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for SharedTrace {
    type Item = RequestRecord;
    type IntoIter = SharedTraceIter;

    fn into_iter(self) -> SharedTraceIter {
        SharedTraceIter {
            records: self.records,
            pos: 0,
        }
    }
}

impl IntoIterator for &SharedTrace {
    type Item = RequestRecord;
    type IntoIter = SharedTraceIter;

    fn into_iter(self) -> SharedTraceIter {
        self.iter()
    }
}

/// Owning cursor over a [`SharedTrace`].
#[derive(Debug, Clone)]
pub struct SharedTraceIter {
    records: Arc<[RequestRecord]>,
    pos: usize,
}

impl Iterator for SharedTraceIter {
    type Item = RequestRecord;

    fn next(&mut self) -> Option<RequestRecord> {
        let record = self.records.get(self.pos).copied()?;
        self.pos += 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.records.len() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for SharedTraceIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolygraphConfig;

    #[test]
    fn materialization_matches_regeneration() {
        let config = PolygraphConfig::scaled(0.0005);
        let shared: SharedTrace = config.build().collect();
        let regenerated: Vec<RequestRecord> = config.build().collect();
        assert_eq!(shared.records(), regenerated.as_slice());
        assert_eq!(shared.len() as u64, config.total_requests());
    }

    #[test]
    fn clones_iterate_identically() {
        let config = PolygraphConfig::scaled(0.0005);
        let shared: SharedTrace = config.build().collect();
        let a: Vec<_> = shared.clone().into_iter().collect();
        let b: Vec<_> = shared.iter().collect();
        let c: Vec<_> = (&shared).into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(shared.iter().len(), shared.len());
    }
}
