//! Zipf-like popularity sampling.
//!
//! Web request popularity famously follows a Zipf-like distribution
//! (Breslau et al., cited by the paper as [2]): the probability of a
//! request hitting the rank-`i` object is proportional to `1 / i^alpha`
//! with `alpha` typically between 0.6 and 1.0.
//!
//! [`Zipf`] is an exact inverse-CDF sampler over a finite rank set; build
//! cost is O(n), sampling is O(log n) and allocation-free.

use rand::Rng;
use rand::RngCore;

/// Exact sampler for a Zipf-like distribution over ranks `0..n`.
///
/// # Examples
///
/// ```
/// use adc_workload::Zipf;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1000, 0.8);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// // Rank 0 is the most popular object.
/// assert!(zipf.pmf(0) > zipf.pmf(999));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[i]` = P(rank <= i); `cdf[n-1] == 1.0`.
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `alpha >= 0`.
    ///
    /// `alpha == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative or not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "rank set must be non-empty");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut cum = 0.0;
        for i in 0..n {
            cum += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(cum);
        }
        let total = cum;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point residue at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` for an (impossible) empty sampler; kept for API
    /// symmetry with collections.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of drawing `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point returns the first index with cdf[i] >= u is not
        // directly expressible; we want the first i with cdf[i] > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8);
        let sum: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > 0.1);
        assert!(z.pmf(0) > 100.0 * z.pmf(999));
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.pmf(r) * n as f64;
            let got = count as f64;
            // 5-sigma binomial tolerance.
            let sigma = (expected * (1.0 - z.pmf(r))).sqrt();
            assert!(
                (got - expected).abs() < 5.0 * sigma + 5.0,
                "rank {r}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn matches_rand_distr_reference() {
        // Cross-check the PMF against the independent rand_distr
        // implementation by comparing empirical histograms drawn from
        // each at moderate sample size.
        use rand_distr::Distribution;
        let n = 40;
        let alpha = 0.8;
        let ours = Zipf::new(n, alpha);
        let reference = rand_distr::Zipf::new(n as u64, alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = 100_000;
        let mut ours_counts = vec![0f64; n];
        let mut ref_counts = vec![0f64; n];
        for _ in 0..samples {
            ours_counts[ours.sample(&mut rng)] += 1.0;
            let r: f64 = reference.sample(&mut rng);
            ref_counts[r as usize - 1] += 1.0;
        }
        for r in 0..n {
            let diff = (ours_counts[r] - ref_counts[r]).abs() / samples as f64;
            assert!(diff < 0.01, "rank {r} diverges: {diff}");
        }
    }

    #[test]
    fn sample_never_out_of_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "rank set must be non-empty")]
    fn empty_rank_set_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn negative_alpha_rejected() {
        let _ = Zipf::new(10, -1.0);
    }
}
