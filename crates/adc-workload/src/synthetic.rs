//! Additional synthetic workloads beyond the Polygraph-like stream:
//! stationary Zipf traffic, uniform traffic, and a flash-crowd scenario.
//!
//! These exercise the same [`RequestRecord`] interface, so any of them can
//! drive the simulator, the examples or the benchmarks.

use crate::sizes::SizeModel;
use crate::trace::{Phase, RequestRecord};
use crate::zipf::Zipf;
use adc_core::{ClientId, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stationary Zipf traffic over a fixed object universe.
///
/// # Examples
///
/// ```
/// use adc_workload::StationaryZipf;
///
/// let reqs: Vec<_> = StationaryZipf::new(1_000, 0.9, 4, 42).take(100).collect();
/// assert_eq!(reqs.len(), 100);
/// assert!(reqs.iter().all(|r| r.object.raw() < 1_000));
/// ```
#[derive(Debug, Clone)]
pub struct StationaryZipf {
    zipf: Zipf,
    rng: StdRng,
    clients: u32,
    seq: u64,
    size_model: SizeModel,
}

impl StationaryZipf {
    /// Creates an infinite Zipf stream over `universe` objects.
    ///
    /// # Panics
    ///
    /// Panics if `universe` or `clients` is zero, or `alpha` is invalid.
    pub fn new(universe: usize, alpha: f64, clients: u32, seed: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        StationaryZipf {
            zipf: Zipf::new(universe, alpha),
            rng: StdRng::seed_from_u64(seed),
            clients,
            seq: 0,
            size_model: SizeModel::default(),
        }
    }
}

impl Iterator for StationaryZipf {
    type Item = RequestRecord;

    fn next(&mut self) -> Option<RequestRecord> {
        let object = ObjectId::new(self.zipf.sample(&mut self.rng) as u64);
        let record = RequestRecord {
            seq: self.seq,
            client: ClientId::new(self.rng.gen_range(0..self.clients)),
            object,
            size: self.size_model.size_of(object),
            phase: Phase::RequestI,
        };
        self.seq += 1;
        Some(record)
    }
}

/// Uniform traffic over a fixed object universe (the worst case for any
/// cache: no popularity signal at all).
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    universe: u64,
    rng: StdRng,
    clients: u32,
    seq: u64,
    size_model: SizeModel,
}

impl UniformWorkload {
    /// Creates an infinite uniform stream over `universe` objects.
    ///
    /// # Panics
    ///
    /// Panics if `universe` or `clients` is zero.
    pub fn new(universe: u64, clients: u32, seed: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(clients > 0, "need at least one client");
        UniformWorkload {
            universe,
            rng: StdRng::seed_from_u64(seed),
            clients,
            seq: 0,
            size_model: SizeModel::default(),
        }
    }
}

impl Iterator for UniformWorkload {
    type Item = RequestRecord;

    fn next(&mut self) -> Option<RequestRecord> {
        let object = ObjectId::new(self.rng.gen_range(0..self.universe));
        let record = RequestRecord {
            seq: self.seq,
            client: ClientId::new(self.rng.gen_range(0..self.clients)),
            object,
            size: self.size_model.size_of(object),
            phase: Phase::RequestI,
        };
        self.seq += 1;
        Some(record)
    }
}

/// A flash-crowd scenario: stationary Zipf background traffic, except that
/// during `[burst_start, burst_end)` a fraction `burst_intensity` of all
/// requests target one single object (a breaking-news page).
///
/// This is the bottleneck situation the paper's earlier SOAP design could
/// not handle and that motivated selective caching.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    background: StationaryZipf,
    /// The suddenly popular object (outside the background universe).
    pub hot_object: ObjectId,
    burst_start: u64,
    burst_end: u64,
    burst_intensity: f64,
    rng: StdRng,
}

impl FlashCrowd {
    /// Creates a flash-crowd stream.
    ///
    /// # Panics
    ///
    /// Panics if `burst_intensity` is outside `[0, 1]` or the burst window
    /// is inverted.
    pub fn new(
        universe: usize,
        alpha: f64,
        clients: u32,
        seed: u64,
        burst_start: u64,
        burst_end: u64,
        burst_intensity: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&burst_intensity),
            "burst intensity in [0,1]"
        );
        assert!(burst_start <= burst_end, "burst window inverted");
        FlashCrowd {
            background: StationaryZipf::new(universe, alpha, clients, seed),
            hot_object: ObjectId::new(u64::MAX - 1),
            burst_start,
            burst_end,
            burst_intensity,
            rng: StdRng::seed_from_u64(seed ^ 0xB00B_5EED),
        }
    }

    /// Returns `true` while `seq` lies inside the burst window.
    pub fn in_burst(&self, seq: u64) -> bool {
        (self.burst_start..self.burst_end).contains(&seq)
    }
}

impl Iterator for FlashCrowd {
    type Item = RequestRecord;

    fn next(&mut self) -> Option<RequestRecord> {
        let mut record = self.background.next()?;
        let seq = record.seq;
        if self.in_burst(seq) && self.rng.gen_bool(self.burst_intensity) {
            record.object = self.hot_object;
            record.size = self.background.size_model.size_of(self.hot_object);
        }
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_zipf_is_deterministic() {
        let a: Vec<_> = StationaryZipf::new(100, 0.8, 4, 1).take(50).collect();
        let b: Vec<_> = StationaryZipf::new(100, 0.8, 4, 1).take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_covers_universe() {
        let objects: std::collections::HashSet<u64> = UniformWorkload::new(10, 2, 3)
            .take(1000)
            .map(|r| r.object.raw())
            .collect();
        assert_eq!(objects.len(), 10);
    }

    #[test]
    fn flash_crowd_spikes_inside_window() {
        let fc = FlashCrowd::new(1000, 0.8, 4, 9, 100, 200, 0.9);
        let hot = fc.hot_object;
        let records: Vec<_> = fc.take(300).collect();
        let in_burst = records[100..200].iter().filter(|r| r.object == hot).count();
        let outside = records[..100]
            .iter()
            .chain(&records[200..])
            .filter(|r| r.object == hot)
            .count();
        assert!(in_burst > 70, "burst too weak: {in_burst}");
        assert_eq!(outside, 0);
    }

    #[test]
    fn flash_crowd_window_helper() {
        let fc = FlashCrowd::new(10, 0.5, 1, 0, 5, 10, 0.5);
        assert!(!fc.in_burst(4));
        assert!(fc.in_burst(5));
        assert!(fc.in_burst(9));
        assert!(!fc.in_burst(10));
    }

    #[test]
    fn sequences_are_consecutive() {
        for (i, r) in StationaryZipf::new(10, 0.5, 1, 0).take(20).enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }
}

/// Zipf traffic whose hot set *rotates*: every `shift_every` requests the
/// popularity ranking moves to a fresh window of the object space, so
/// yesterday's hot objects go cold.
///
/// This is the scenario the paper's aging rule (Figure 4) exists for:
/// without aging, objects that were hot once keep their small recorded
/// average forever and can squat in the caching table.
#[derive(Debug, Clone)]
pub struct ShiftingZipf {
    zipf: Zipf,
    rng: StdRng,
    clients: u32,
    seq: u64,
    shift_every: u64,
    window: u64,
    size_model: SizeModel,
}

impl ShiftingZipf {
    /// Creates a stream over windows of `window_size` objects with Zipf
    /// popularity, shifting to a disjoint window every `shift_every`
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics if `window_size`, `clients` or `shift_every` is zero, or
    /// `alpha` is invalid.
    pub fn new(window_size: usize, alpha: f64, clients: u32, seed: u64, shift_every: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(shift_every > 0, "shift interval must be positive");
        ShiftingZipf {
            zipf: Zipf::new(window_size, alpha),
            rng: StdRng::seed_from_u64(seed),
            clients,
            seq: 0,
            shift_every,
            window: window_size as u64,
            size_model: SizeModel::default(),
        }
    }

    /// The index of the popularity window active at `seq`.
    pub fn window_of(&self, seq: u64) -> u64 {
        seq / self.shift_every
    }
}

impl Iterator for ShiftingZipf {
    type Item = RequestRecord;

    fn next(&mut self) -> Option<RequestRecord> {
        let rank = self.zipf.sample(&mut self.rng) as u64;
        let base = self.window_of(self.seq) * self.window;
        let object = ObjectId::new(base + rank);
        let record = RequestRecord {
            seq: self.seq,
            client: ClientId::new(self.rng.gen_range(0..self.clients)),
            object,
            size: self.size_model.size_of(object),
            phase: Phase::RequestI,
        };
        self.seq += 1;
        Some(record)
    }
}

#[cfg(test)]
mod shifting_tests {
    use super::*;

    #[test]
    fn windows_are_disjoint() {
        let s = ShiftingZipf::new(100, 0.9, 4, 1, 500);
        let records: Vec<_> = s.take(1500).collect();
        let w0: std::collections::HashSet<u64> =
            records[..500].iter().map(|r| r.object.raw()).collect();
        let w1: std::collections::HashSet<u64> =
            records[500..1000].iter().map(|r| r.object.raw()).collect();
        let w2: std::collections::HashSet<u64> =
            records[1000..].iter().map(|r| r.object.raw()).collect();
        assert!(w0.is_disjoint(&w1));
        assert!(w1.is_disjoint(&w2));
        assert!(w0.iter().all(|&o| o < 100));
        assert!(w1.iter().all(|&o| (100..200).contains(&o)));
    }

    #[test]
    fn window_of_boundaries() {
        let s = ShiftingZipf::new(10, 0.5, 1, 0, 100);
        assert_eq!(s.window_of(0), 0);
        assert_eq!(s.window_of(99), 0);
        assert_eq!(s.window_of(100), 1);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = ShiftingZipf::new(50, 0.8, 3, 9, 200).take(400).collect();
        let b: Vec<_> = ShiftingZipf::new(50, 0.8, 3, 9, 200).take(400).collect();
        assert_eq!(a, b);
    }
}

/// An LRU-stack-model (LRUSM) workload: temporal locality without a
/// fixed popularity ranking, in the style of the Wisconsin Proxy
/// Benchmark the paper names as a future evaluation target.
///
/// With probability `recurrence` the next request re-references an
/// object already on the LRU stack, at a Zipf-distributed depth (so
/// recently used objects are the most likely to recur); otherwise it
/// introduces a brand-new object. Re-referenced objects move back to the
/// top of the stack.
#[derive(Debug, Clone)]
pub struct LruStackWorkload {
    stack: std::collections::VecDeque<ObjectId>,
    max_stack: usize,
    recurrence: f64,
    depth: Zipf,
    next_id: u64,
    rng: StdRng,
    clients: u32,
    seq: u64,
    size_model: SizeModel,
}

impl LruStackWorkload {
    /// Creates an LRU-stack stream.
    ///
    /// * `stack_depth` — how far back re-references can reach;
    /// * `recurrence` — fraction of requests that are re-references;
    /// * `depth_alpha` — Zipf exponent of the re-reference depth (larger
    ///   = more concentrated on the most recent objects).
    ///
    /// # Panics
    ///
    /// Panics if `stack_depth` or `clients` is zero, or `recurrence` is
    /// outside `[0, 1]`.
    pub fn new(
        stack_depth: usize,
        recurrence: f64,
        depth_alpha: f64,
        clients: u32,
        seed: u64,
    ) -> Self {
        assert!(stack_depth > 0, "stack depth must be positive");
        assert!((0.0..=1.0).contains(&recurrence), "recurrence in [0,1]");
        assert!(clients > 0, "need at least one client");
        LruStackWorkload {
            stack: std::collections::VecDeque::with_capacity(stack_depth),
            max_stack: stack_depth,
            recurrence,
            depth: Zipf::new(stack_depth, depth_alpha),
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            clients,
            seq: 0,
            size_model: SizeModel::default(),
        }
    }

    /// Objects currently on the stack.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }
}

impl Iterator for LruStackWorkload {
    type Item = RequestRecord;

    fn next(&mut self) -> Option<RequestRecord> {
        let recur = !self.stack.is_empty() && self.rng.gen_bool(self.recurrence);
        let object = if recur {
            let depth = self.depth.sample(&mut self.rng).min(self.stack.len() - 1);
            // Invariant: depth ≤ len - 1 by the min() above (stack is
            // non-empty when recur is true). adc-lint: allow(panic)
            let object = self.stack.remove(depth).expect("depth is in range");
            self.stack.push_front(object);
            object
        } else {
            let object = ObjectId::new(self.next_id);
            self.next_id += 1;
            self.stack.push_front(object);
            if self.stack.len() > self.max_stack {
                self.stack.pop_back();
            }
            object
        };
        let record = RequestRecord {
            seq: self.seq,
            client: ClientId::new(self.rng.gen_range(0..self.clients)),
            object,
            size: self.size_model.size_of(object),
            phase: Phase::RequestI,
        };
        self.seq += 1;
        Some(record)
    }
}

#[cfg(test)]
mod lru_stack_tests {
    use super::*;

    #[test]
    fn recurrence_ratio_matches_parameter() {
        let records: Vec<_> = LruStackWorkload::new(200, 0.6, 0.8, 4, 3)
            .take(20_000)
            .collect();
        let distinct: std::collections::HashSet<_> = records.iter().map(|r| r.object).collect();
        let measured = 1.0 - distinct.len() as f64 / records.len() as f64;
        assert!(
            (measured - 0.6).abs() < 0.03,
            "measured recurrence {measured}"
        );
    }

    #[test]
    fn recent_objects_recur_most() {
        // With a strong depth skew, re-references concentrate on the most
        // recently used objects: consecutive duplicates must exist.
        let records: Vec<_> = LruStackWorkload::new(100, 0.8, 1.5, 1, 9)
            .take(5_000)
            .collect();
        let immediate_repeats = records
            .windows(2)
            .filter(|w| w[0].object == w[1].object)
            .count();
        assert!(immediate_repeats > 100, "got {immediate_repeats}");
    }

    #[test]
    fn stack_is_bounded() {
        let mut w = LruStackWorkload::new(50, 0.3, 0.8, 2, 4);
        for _ in 0..5_000 {
            w.next();
            assert!(w.stack_len() <= 50);
        }
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = LruStackWorkload::new(50, 0.5, 1.0, 2, 7)
            .take(500)
            .collect();
        let b: Vec<_> = LruStackWorkload::new(50, 0.5, 1.0, 2, 7)
            .take(500)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "recurrence in [0,1]")]
    fn bad_recurrence_rejected() {
        let _ = LruStackWorkload::new(10, 1.5, 1.0, 1, 0);
    }
}
