//! A Web-Polygraph-like synthetic request stream (the paper's §V.1.6).
//!
//! The paper drove its experiments with a ~3.99-million-request file
//! created by the Polygraph benchmarking tool, "divided into three
//! phases. Phase 1 with around 1.0 million requests covers a simple fill
//! phase with almost no request repetitions. Phase 2 with around 1.5
//! million requests offers requests and repeats itself in Phase 3."
//!
//! Polygraph itself is a live client/server benchmarking rig that cannot
//! be pointed at a simulator, so this module reproduces the *shape* of its
//! stream instead:
//!
//! * **Fill** — (almost) every request introduces a brand-new object;
//!   a small configurable recurrence fraction re-requests a uniform
//!   earlier object.
//! * **Request phase I** — with probability `recurrence` the request
//!   draws from a fixed *hot set* with Zipf-like popularity (per Breslau
//!   et al.); otherwise it introduces a new one-timer object.
//! * **Request phase II** — an exact replay of phase I's object sequence
//!   (the generator re-runs the identical RNG stream), mirroring
//!   "repeats itself in Phase 3".
//!
//! Everything is deterministic in `seed`.

use crate::sizes::SizeModel;
use crate::trace::{Phase, RequestRecord};
use crate::zipf::Zipf;
use adc_core::{ClientId, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Polygraph-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PolygraphConfig {
    /// Requests in the fill phase (paper: ~1.0 M).
    pub fill_requests: u64,
    /// Requests in each of the two request phases (paper: ~1.5 M).
    pub phase_requests: u64,
    /// Number of distinct popular objects the request phases draw from.
    pub hot_set: usize,
    /// Fraction of request-phase requests that hit the hot set; the rest
    /// are one-timer objects (this bounds the achievable hit rate).
    pub recurrence: f64,
    /// Fraction of fill-phase requests that repeat an earlier object
    /// ("almost no request repetitions").
    pub fill_recurrence: f64,
    /// Zipf exponent for hot-set popularity.
    pub zipf_alpha: f64,
    /// Number of distinct clients issuing requests.
    pub clients: u32,
    /// Master seed; a run is a pure function of this configuration.
    pub seed: u64,
    /// When `true` (the paper's shape), phase II replays phase I's object
    /// sequence exactly; when `false` it re-samples the same process.
    pub exact_replay: bool,
    /// Size assignment for generated objects.
    pub size_model: SizeModel,
}

impl Default for PolygraphConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl PolygraphConfig {
    /// The paper's full scale: 1.0 M fill + 2 × 1.495 M request phases =
    /// 3.99 M requests.
    ///
    /// The hot set matches the paper's default caching-table size (10 k):
    /// calibration against the paper's Figure 13 shows that is the regime
    /// it reports — the hit rate plateaus at ≈ 0.7 once the caching table
    /// reaches 10 k entries and gains nothing beyond, which requires the
    /// recurrent working set to be ≈ one caching table.
    pub fn paper_scale() -> Self {
        PolygraphConfig {
            fill_requests: 1_000_000,
            phase_requests: 1_495_000,
            hot_set: 10_000,
            recurrence: 0.72,
            fill_recurrence: 0.02,
            zipf_alpha: 0.8,
            clients: 100,
            seed: 0x5EED_ADC0,
            exact_replay: true,
            size_model: SizeModel::default(),
        }
    }

    /// A proportionally shrunken workload: request counts and the hot set
    /// scale by `factor`, everything else is untouched. Useful for tests
    /// and CI-scale benchmark runs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let base = Self::paper_scale();
        PolygraphConfig {
            fill_requests: ((base.fill_requests as f64 * factor) as u64).max(1),
            phase_requests: ((base.phase_requests as f64 * factor) as u64).max(1),
            hot_set: ((base.hot_set as f64 * factor) as usize).max(1),
            ..base
        }
    }

    /// Total requests the generator will produce.
    pub fn total_requests(&self) -> u64 {
        self.fill_requests + 2 * self.phase_requests
    }

    /// Generates the whole stream once into a [`crate::SharedTrace`] that
    /// many simulation runs can iterate over without regenerating it.
    pub fn materialize(&self) -> crate::SharedTrace {
        self.build().collect()
    }

    /// The phase a given global sequence number falls into.
    pub fn phase_of(&self, seq: u64) -> Phase {
        if seq < self.fill_requests {
            Phase::Fill
        } else if seq < self.fill_requests + self.phase_requests {
            Phase::RequestI
        } else {
            Phase::RequestII
        }
    }

    /// Builds the request iterator.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are outside `[0, 1]`, `clients` is zero or
    /// `hot_set` is zero.
    pub fn build(&self) -> Polygraph {
        assert!(
            (0.0..=1.0).contains(&self.recurrence),
            "recurrence in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.fill_recurrence),
            "fill_recurrence in [0,1]"
        );
        assert!(self.clients > 0, "need at least one client");
        assert!(self.hot_set > 0, "need a non-empty hot set");
        Polygraph {
            zipf: Zipf::new(self.hot_set, self.zipf_alpha),
            rng_fill: StdRng::seed_from_u64(self.seed ^ FILL_SALT),
            rng_phase: StdRng::seed_from_u64(self.seed ^ PHASE_SALT),
            rng_client: StdRng::seed_from_u64(self.seed ^ CLIENT_SALT),
            seq: 0,
            next_id: 0,
            phase_start_id: 0,
            config: self.clone(),
        }
    }
}

const FILL_SALT: u64 = 0x1656_67b1_9e37_79f9;
const PHASE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const CLIENT_SALT: u64 = 0xc2b2_ae35_07a1_663d;

/// The Polygraph-like request iterator; see [`PolygraphConfig::build`].
#[derive(Debug, Clone)]
pub struct Polygraph {
    config: PolygraphConfig,
    zipf: Zipf,
    rng_fill: StdRng,
    rng_phase: StdRng,
    rng_client: StdRng,
    seq: u64,
    next_id: u64,
    phase_start_id: u64,
}

impl Polygraph {
    /// Total number of requests this iterator will yield.
    pub fn total_requests(&self) -> u64 {
        self.config.total_requests()
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &PolygraphConfig {
        &self.config
    }

    fn next_object(&mut self, phase: Phase) -> ObjectId {
        match phase {
            Phase::Fill => {
                let repeat =
                    self.next_id > 0 && self.rng_fill.gen_bool(self.config.fill_recurrence);
                if repeat {
                    ObjectId::new(self.rng_fill.gen_range(0..self.next_id))
                } else {
                    let id = self.next_id;
                    self.next_id += 1;
                    ObjectId::new(id)
                }
            }
            Phase::RequestI | Phase::RequestII => {
                if self.rng_phase.gen_bool(self.config.recurrence) {
                    ObjectId::new(self.zipf.sample(&mut self.rng_phase) as u64)
                } else {
                    let id = self.next_id;
                    self.next_id += 1;
                    ObjectId::new(id)
                }
            }
        }
    }
}

impl Iterator for Polygraph {
    type Item = RequestRecord;

    fn next(&mut self) -> Option<RequestRecord> {
        if self.seq >= self.config.total_requests() {
            return None;
        }
        let phase = self.config.phase_of(self.seq);

        // Phase transitions.
        if self.seq == self.config.fill_requests {
            // Entering request phase I: keep new-object IDs clear of the
            // hot-set ID range and remember the state for the replay.
            self.next_id = self.next_id.max(self.config.hot_set as u64);
            self.phase_start_id = self.next_id;
        } else if self.seq == self.config.fill_requests + self.config.phase_requests
            && self.config.exact_replay
        {
            // Entering request phase II: rewind the phase RNG and the
            // object counter so the object sequence replays exactly.
            self.rng_phase = StdRng::seed_from_u64(self.config.seed ^ PHASE_SALT);
            self.next_id = self.phase_start_id;
        }

        let object = self.next_object(phase);
        let client = ClientId::new(self.rng_client.gen_range(0..self.config.clients));
        let record = RequestRecord {
            seq: self.seq,
            client,
            object,
            size: self.config.size_model.size_of(object),
            phase,
        };
        self.seq += 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.config.total_requests() - self.seq) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Polygraph {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny() -> PolygraphConfig {
        PolygraphConfig {
            fill_requests: 1_000,
            phase_requests: 2_000,
            hot_set: 100,
            recurrence: 0.7,
            fill_recurrence: 0.02,
            zipf_alpha: 0.8,
            clients: 10,
            seed: 7,
            exact_replay: true,
            size_model: SizeModel::default(),
        }
    }

    #[test]
    fn produces_exactly_total_requests() {
        let cfg = tiny();
        let records: Vec<_> = cfg.build().collect();
        assert_eq!(records.len() as u64, cfg.total_requests());
        assert_eq!(records.len(), cfg.build().len());
        // Sequence numbers are consecutive.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn phases_are_tagged_correctly() {
        let cfg = tiny();
        let records: Vec<_> = cfg.build().collect();
        assert!(records[..1000].iter().all(|r| r.phase == Phase::Fill));
        assert!(records[1000..3000]
            .iter()
            .all(|r| r.phase == Phase::RequestI));
        assert!(records[3000..].iter().all(|r| r.phase == Phase::RequestII));
    }

    #[test]
    fn fill_phase_has_few_repetitions() {
        let cfg = tiny();
        let fill: Vec<_> = cfg.build().take(1000).collect();
        let distinct: std::collections::HashSet<_> = fill.iter().map(|r| r.object).collect();
        assert!(
            distinct.len() >= 950,
            "fill should be nearly all unique, got {}",
            distinct.len()
        );
    }

    #[test]
    fn request_phase_recurrence_matches_config() {
        let cfg = tiny();
        let records: Vec<_> = cfg.build().collect();
        let phase1 = &records[1000..3000];
        let hot = phase1
            .iter()
            .filter(|r| r.object.raw() < cfg.hot_set as u64)
            .count();
        let frac = hot as f64 / phase1.len() as f64;
        assert!(
            (frac - cfg.recurrence).abs() < 0.05,
            "hot fraction {frac} vs configured {}",
            cfg.recurrence
        );
    }

    #[test]
    fn phase_two_replays_phase_one_objects() {
        let cfg = tiny();
        let records: Vec<_> = cfg.build().collect();
        let p1: Vec<_> = records[1000..3000].iter().map(|r| r.object).collect();
        let p2: Vec<_> = records[3000..5000].iter().map(|r| r.object).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn without_replay_phases_differ_but_share_hot_set() {
        let cfg = PolygraphConfig {
            exact_replay: false,
            ..tiny()
        };
        let records: Vec<_> = cfg.build().collect();
        let p1: Vec<_> = records[1000..3000].iter().map(|r| r.object).collect();
        let p2: Vec<_> = records[3000..5000].iter().map(|r| r.object).collect();
        assert_ne!(p1, p2);
        // New objects in phase II must not collide with phase I's.
        let news1: std::collections::HashSet<_> = p1
            .iter()
            .filter(|o| o.raw() >= cfg.hot_set as u64)
            .collect();
        let news2: std::collections::HashSet<_> = p2
            .iter()
            .filter(|o| o.raw() >= cfg.hot_set as u64)
            .collect();
        assert!(news1.is_disjoint(&news2));
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = tiny();
        let a: Vec<_> = cfg.build().collect();
        let b: Vec<_> = cfg.build().collect();
        assert_eq!(a, b);
        let c: Vec<_> = PolygraphConfig { seed: 8, ..tiny() }.build().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let cfg = tiny();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in cfg.build().skip(1000) {
            if r.object.raw() < cfg.hot_set as u64 {
                *counts.entry(r.object.raw()).or_default() += 1;
            }
        }
        let top = counts.get(&0).copied().unwrap_or(0);
        let median_rank = counts.get(&50).copied().unwrap_or(0);
        assert!(
            top > 3 * median_rank.max(1),
            "rank 0 ({top}) should dominate rank 50 ({median_rank})"
        );
    }

    #[test]
    fn clients_span_the_configured_range() {
        let cfg = tiny();
        let clients: std::collections::HashSet<u32> = cfg.build().map(|r| r.client.raw()).collect();
        assert_eq!(clients.len(), cfg.clients as usize);
        assert!(clients.iter().all(|&c| c < cfg.clients));
    }

    #[test]
    fn scaled_preserves_structure() {
        let cfg = PolygraphConfig::scaled(0.001);
        assert_eq!(cfg.fill_requests, 1_000);
        assert_eq!(cfg.phase_requests, 1_495);
        assert_eq!(cfg.hot_set, 10);
        let n = cfg.build().count() as u64;
        assert_eq!(n, cfg.total_requests());
    }

    #[test]
    fn paper_scale_totals_399_million() {
        let cfg = PolygraphConfig::paper_scale();
        assert_eq!(cfg.total_requests(), 3_990_000);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = PolygraphConfig::scaled(0.0);
    }
}
