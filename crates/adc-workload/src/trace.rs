//! Request records and trace files.

use adc_core::{ClientId, ObjectId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::str::FromStr;

/// Which of the paper's three workload phases a request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Phase 1: the fill phase, "almost no request repetitions".
    Fill,
    /// Phase 2: request phase I.
    RequestI,
    /// Phase 3: request phase II, which "repeats" phase I.
    RequestII,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Fill => "fill",
            Phase::RequestI => "request1",
            Phase::RequestII => "request2",
        };
        f.write_str(s)
    }
}

impl FromStr for Phase {
    type Err = TraceParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fill" => Ok(Phase::Fill),
            "request1" => Ok(Phase::RequestI),
            "request2" => Ok(Phase::RequestII),
            other => Err(TraceParseError::BadPhase(other.to_string())),
        }
    }
}

/// One request in a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Global position in the trace (0-based).
    pub seq: u64,
    /// The client issuing the request.
    pub client: ClientId,
    /// The requested object.
    pub object: ObjectId,
    /// Object size in bytes.
    pub size: u32,
    /// The workload phase this request belongs to.
    pub phase: Phase,
}

/// Error parsing a trace file.
#[derive(Debug)]
pub enum TraceParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not have the expected five fields.
    BadLine(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// An unknown phase tag.
    BadPhase(String),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Io(e) => write!(f, "trace io error: {e}"),
            TraceParseError::BadLine(l) => write!(f, "malformed trace line: {l:?}"),
            TraceParseError::BadNumber(t) => write!(f, "bad number in trace: {t:?}"),
            TraceParseError::BadPhase(p) => write!(f, "unknown phase tag: {p:?}"),
        }
    }
}

impl std::error::Error for TraceParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceParseError {
    fn from(e: io::Error) -> Self {
        TraceParseError::Io(e)
    }
}

/// Writes records as `seq,client,object,size,phase` lines.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(
    w: W,
    records: impl IntoIterator<Item = RequestRecord>,
) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "seq,client,object,size,phase")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.seq,
            r.client.raw(),
            r.object.raw(),
            r.size,
            r.phase
        )?;
    }
    w.flush()
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`TraceParseError`] on I/O failure or malformed content.
pub fn read_trace<R: Read>(r: R) -> Result<Vec<RequestRecord>, TraceParseError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 {
            // Header row.
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut next = || {
            parts
                .next()
                .ok_or_else(|| TraceParseError::BadLine(line.clone()))
        };
        let seq: u64 = parse_num(next()?)?;
        let client: u32 = parse_num(next()?)?;
        let object: u64 = parse_num(next()?)?;
        let size: u32 = parse_num(next()?)?;
        let phase: Phase = next()?.parse()?;
        out.push(RequestRecord {
            seq,
            client: ClientId::new(client),
            object: ObjectId::new(object),
            size,
            phase,
        });
    }
    Ok(out)
}

fn parse_num<T: FromStr>(s: &str) -> Result<T, TraceParseError> {
    s.trim()
        .parse()
        .map_err(|_| TraceParseError::BadNumber(s.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, object: u64, phase: Phase) -> RequestRecord {
        RequestRecord {
            seq,
            client: ClientId::new((seq % 7) as u32),
            object: ObjectId::new(object),
            size: 1024,
            phase,
        }
    }

    #[test]
    fn round_trip() {
        let records = vec![
            record(0, 10, Phase::Fill),
            record(1, 11, Phase::RequestI),
            record(2, 10, Phase::RequestII),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, records.clone()).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn rejects_bad_phase() {
        let text = "seq,client,object,size,phase\n0,0,1,10,banana\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceParseError::BadPhase(_)));
    }

    #[test]
    fn rejects_short_line() {
        let text = "seq,client,object,size,phase\n0,0,1\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceParseError::BadLine(_)));
    }

    #[test]
    fn rejects_bad_number() {
        let text = "seq,client,object,size,phase\nx,0,1,10,fill\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceParseError::BadNumber(_)));
    }

    #[test]
    fn skips_blank_lines() {
        let text = "seq,client,object,size,phase\n0,0,1,10,fill\n\n";
        assert_eq!(read_trace(text.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn phase_display_round_trip() {
        for p in [Phase::Fill, Phase::RequestI, Phase::RequestII] {
            assert_eq!(p.to_string().parse::<Phase>().unwrap(), p);
        }
    }
}
