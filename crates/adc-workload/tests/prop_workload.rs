//! Property-based tests of the workload generators.

use adc_workload::{Phase, PolygraphConfig, SizeModel, StationaryZipf, Zipf};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = PolygraphConfig> {
    (
        10u64..500,
        10u64..500,
        1usize..100,
        0.0f64..1.0,
        0.0f64..0.2,
        0.0f64..1.5,
        1u32..20,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(fill, phase, hot, rec, fill_rec, alpha, clients, seed, replay)| PolygraphConfig {
                fill_requests: fill,
                phase_requests: phase,
                hot_set: hot,
                recurrence: rec,
                fill_recurrence: fill_rec,
                zipf_alpha: alpha,
                clients,
                seed,
                exact_replay: replay,
                size_model: SizeModel::default(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator yields exactly `total_requests` records with
    /// consecutive sequence numbers, correct phase tags and in-range
    /// clients, for any configuration.
    #[test]
    fn polygraph_structure(config in arb_config()) {
        let records: Vec<_> = config.build().collect();
        prop_assert_eq!(records.len() as u64, config.total_requests());
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64);
            prop_assert_eq!(r.phase, config.phase_of(r.seq));
            prop_assert!(r.client.raw() < config.clients);
            prop_assert!(r.size >= 1);
        }
    }

    /// Exact replay: phase II's object sequence equals phase I's.
    #[test]
    fn polygraph_replay(config in arb_config()) {
        let config = PolygraphConfig { exact_replay: true, ..config };
        let records: Vec<_> = config.build().collect();
        let f = config.fill_requests as usize;
        let p = config.phase_requests as usize;
        let phase1: Vec<_> = records[f..f + p].iter().map(|r| r.object).collect();
        let phase2: Vec<_> = records[f + p..].iter().map(|r| r.object).collect();
        prop_assert_eq!(phase1, phase2);
    }

    /// Determinism: the same config yields the same stream; a different
    /// seed yields a different one (overwhelmingly likely for non-trivial
    /// streams).
    #[test]
    fn polygraph_deterministic(config in arb_config()) {
        let a: Vec<_> = config.build().collect();
        let b: Vec<_> = config.build().collect();
        prop_assert_eq!(a, b);
    }

    /// Zipf samples stay in range and rank popularity is monotone in the
    /// PMF for any alpha.
    #[test]
    fn zipf_pmf_monotone(n in 2usize..200, alpha in 0.0f64..2.0) {
        let z = Zipf::new(n, alpha);
        let mut last = f64::INFINITY;
        let mut total = 0.0;
        for r in 0..n {
            let p = z.pmf(r);
            prop_assert!(p <= last + 1e-12);
            prop_assert!(p >= 0.0);
            last = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// StationaryZipf only emits objects inside the universe.
    #[test]
    fn stationary_zipf_in_universe(universe in 1usize..100, seed in any::<u64>()) {
        for r in StationaryZipf::new(universe, 0.8, 3, seed).take(200) {
            prop_assert!(r.object.raw() < universe as u64);
            prop_assert_eq!(r.phase, Phase::RequestI);
        }
    }

    /// Size model is deterministic and respects its clamps for arbitrary
    /// object IDs.
    #[test]
    fn size_model_clamped(ids in prop::collection::vec(any::<u64>(), 1..100)) {
        let m = SizeModel::default();
        for id in ids {
            let s = m.size_of(adc_core::ObjectId::new(id));
            prop_assert!(s >= m.min_bytes && s <= m.max_bytes);
            prop_assert_eq!(s, m.size_of(adc_core::ObjectId::new(id)));
        }
    }
}
