//! Error types for the core crate.

use std::error::Error;
use std::fmt;

/// An invalid [`AdcConfig`](crate::AdcConfig) parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `single_capacity` was zero.
    ZeroSingleCapacity,
    /// `multiple_capacity` was zero.
    ZeroMultipleCapacity,
    /// `cache_capacity` was zero.
    ZeroCacheCapacity,
    /// `max_hops` was zero.
    ZeroMaxHops,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            ConfigError::ZeroSingleCapacity => "single_capacity",
            ConfigError::ZeroMultipleCapacity => "multiple_capacity",
            ConfigError::ZeroCacheCapacity => "cache_capacity",
            ConfigError::ZeroMaxHops => "max_hops",
        };
        write!(f, "{what} must be positive")
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        assert_eq!(
            ConfigError::ZeroSingleCapacity.to_string(),
            "single_capacity must be positive"
        );
        assert_eq!(
            ConfigError::ZeroMaxHops.to_string(),
            "max_hops must be positive"
        );
    }

    #[test]
    fn is_an_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
