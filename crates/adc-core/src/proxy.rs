//! The ADC proxy agent (§IV of the paper): `Receive_Request`,
//! `Receive_Reply`, `Forward_Addr` and the pending/backwarding store.

use crate::agent::{ActionSink, CacheAgent, CacheEvent};
use crate::config::{AdcConfig, CachePolicy};
use crate::entry::Tick;
use crate::ids::{Location, NodeId, ObjectId, ProxyId, RequestId};
use crate::message::{Reply, Request};
use crate::stats::ProxyStats;
use crate::tables::{LruList, MappingTables};
use adc_obs::{Probe, SimEvent, TableLevel};
use rand::Rng;
use rand::RngCore;
// Pending-request map on the ADC hot path: keyed access only, never
// iterated, so hasher order cannot leak into results.
use std::collections::HashMap; // adc-lint: allow(default-hasher)

/// Default size reported for objects when the runtime does not supply one.
pub const DEFAULT_OBJECT_SIZE: u32 = 8 * 1024;

/// One self-organizing ADC proxy.
///
/// The agent is sans-IO: it consumes [`Request`]/[`Reply`] messages and
/// pushes [`Action`](crate::Action)s into an [`ActionSink`]. Drive it
/// through the [`CacheAgent`] trait.
///
/// # Examples
///
/// ```
/// use adc_core::{Action, AdcConfig, AdcProxy, CacheAgent, NodeId};
/// use adc_core::{ClientId, ObjectId, ProxyId, Request, RequestId};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut proxy = AdcProxy::new(ProxyId::new(0), 1, AdcConfig::default());
/// let mut rng = StdRng::seed_from_u64(7);
/// let req = Request::new(
///     RequestId::new(ClientId::new(0), 0),
///     ObjectId::new(1),
///     ClientId::new(0),
/// );
/// // Nothing cached yet, a single proxy: the request goes somewhere
/// // (to itself — detected as a loop next hop — or to the origin).
/// let Action::Send { to, .. } = proxy.request_action(req, &mut rng);
/// assert!(matches!(to, NodeId::Proxy(_) | NodeId::Origin));
/// ```
#[derive(Debug)]
pub struct AdcProxy {
    id: ProxyId,
    /// All proxies in the system, including this one; random forwarding
    /// selects uniformly over this set ("including itself").
    peers: Vec<ProxyId>,
    config: AdcConfig,
    tables: MappingTables,
    /// LRU store used only under [`CachePolicy::LruAll`].
    lru_store: Option<LruList<ObjectId, ()>>,
    /// Backwarding information: for every pending request ID, the stack of
    /// previous hops (a stack because a looping request can traverse the
    /// same proxy twice).
    pending: HashMap<RequestId, Vec<NodeId>>, // adc-lint: allow(default-hasher)
    local_time: Tick,
    stats: ProxyStats,
    cache_events: Vec<CacheEvent>,
}

impl AdcProxy {
    /// Creates a proxy that knows about `num_proxies` peers with IDs
    /// `0..num_proxies` (the usual dense deployment).
    ///
    /// # Panics
    ///
    /// Panics if `num_proxies` is zero, `id` is out of range, or the
    /// configuration is invalid.
    pub fn new(id: ProxyId, num_proxies: u32, config: AdcConfig) -> Self {
        assert!(num_proxies > 0, "need at least one proxy");
        assert!(id.raw() < num_proxies, "proxy id out of range");
        let peers = (0..num_proxies).map(ProxyId::new).collect();
        Self::with_peers(id, peers, config)
    }

    /// Creates a proxy with an explicit peer set (must contain `id`).
    ///
    /// # Panics
    ///
    /// Panics if `peers` does not contain `id` or the configuration is
    /// invalid.
    pub fn with_peers(id: ProxyId, peers: Vec<ProxyId>, config: AdcConfig) -> Self {
        assert!(peers.contains(&id), "peer set must include the proxy");
        // Documented panic above; callers wanting fallibility validate first.
        config.validate().expect("invalid ADC configuration"); // adc-lint: allow(panic)
        let (tables, lru_store) = match config.policy {
            CachePolicy::Selective => (
                MappingTables::new(
                    config.single_capacity,
                    config.multiple_capacity,
                    config.cache_capacity,
                    config.aging,
                ),
                None,
            ),
            CachePolicy::LruAll => (
                MappingTables::mapping_only(
                    config.single_capacity,
                    config.multiple_capacity,
                    config.aging,
                ),
                Some(LruList::with_capacity(config.cache_capacity.min(1 << 20))),
            ),
        };
        AdcProxy {
            id,
            peers,
            config,
            tables,
            lru_store,
            // Keyed access only, never iterated: hasher can't leak order.
            pending: HashMap::new(), // adc-lint: allow(default-hasher, determinism-purity)
            local_time: 0,
            stats: ProxyStats::default(),
            cache_events: Vec::new(),
        }
    }

    /// This proxy's identity (also available via
    /// [`CacheAgent::proxy_id`]).
    pub fn proxy_id_value(&self) -> ProxyId {
        self.id
    }

    /// Size of the peer set this proxy forwards over (including itself).
    pub fn num_proxies(&self) -> u32 {
        self.peers.len() as u32
    }

    /// The proxy's local request-count clock.
    pub fn local_time(&self) -> Tick {
        self.local_time
    }

    /// Rebuilds a warm proxy from restored tables (see
    /// [`ProxySnapshot`](crate::ProxySnapshot)). Only the selective
    /// policy is restorable; counters start from zero.
    pub(crate) fn from_restored(
        id: ProxyId,
        num_proxies: u32,
        config: AdcConfig,
        tables: MappingTables,
        local_time: Tick,
    ) -> Self {
        let mut proxy = AdcProxy::new(id, num_proxies, config);
        proxy.tables = tables;
        proxy.local_time = local_time;
        proxy
    }

    /// Borrows the mapping tables (single/multiple/caching).
    pub fn tables(&self) -> &MappingTables {
        &self.tables
    }

    /// The configuration this proxy runs with.
    pub fn config(&self) -> &AdcConfig {
        &self.config
    }

    /// Number of requests currently awaiting a reply.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// The paper's `Forward_Addr(Object)`: the learned location if any
    /// table has an entry, otherwise a uniformly random peer (including
    /// this proxy itself). An entry marked `THIS` means this proxy is
    /// responsible but does not hold the data, so the request must go to
    /// the origin server.
    fn forward_addr<P: Probe>(
        &mut self,
        object: ObjectId,
        rng: &mut dyn RngCore,
        probe: &mut P,
    ) -> NodeId {
        match self.tables.lookup(object).map(|e| e.location) {
            Some(Location::Remote(p)) => {
                self.stats.forwards_learned += 1;
                if P::ENABLED {
                    probe.emit(SimEvent::ForwardLearned {
                        proxy: self.id.raw(),
                        object: object.raw(),
                        to: p.raw(),
                    });
                }
                NodeId::Proxy(p)
            }
            Some(Location::This) => {
                self.stats.origin_this_miss += 1;
                if P::ENABLED {
                    probe.emit(SimEvent::OriginThisMiss {
                        proxy: self.id.raw(),
                        object: object.raw(),
                    });
                }
                NodeId::Origin
            }
            None => {
                self.stats.forwards_random += 1;
                let i = rng.gen_range(0..self.peers.len());
                let to = self.peers[i]; // i < peers.len() by gen_range
                if P::ENABLED {
                    probe.emit(SimEvent::ForwardRandom {
                        proxy: self.id.raw(),
                        object: object.raw(),
                        to: to.raw(),
                    });
                }
                NodeId::Proxy(to)
            }
        }
    }

    /// Whether `object`'s data is stored locally under the active policy.
    fn locally_cached(&self, object: ObjectId) -> bool {
        match &self.lru_store {
            Some(lru) => lru.contains(&object),
            None => self.tables.is_cached(object),
        }
    }

    /// Runs `Update_Entry` and mirrors the outcome into the object store
    /// (selective policy) or refreshes the LRU store (ablation policy).
    fn update_entry<P: Probe>(&mut self, object: ObjectId, location: Location, probe: &mut P) {
        let outcome = self.tables.update_entry(object, location, self.local_time);
        if P::ENABLED {
            let proxy = self.id.raw();
            if outcome.promoted_to_multiple {
                probe.emit(SimEvent::TableMigration {
                    proxy,
                    object: object.raw(),
                    from: TableLevel::Single,
                    to: TableLevel::Multiple,
                });
            }
            if let Some(demoted) = outcome.demoted_to_single {
                probe.emit(SimEvent::TableMigration {
                    proxy,
                    object: demoted.raw(),
                    from: TableLevel::Multiple,
                    to: TableLevel::Single,
                });
            }
            if outcome.admitted_to_cache {
                probe.emit(SimEvent::TableMigration {
                    proxy,
                    object: object.raw(),
                    from: TableLevel::Multiple,
                    to: TableLevel::Caching,
                });
            }
            if let Some(evicted) = outcome.evicted_from_cache {
                probe.emit(SimEvent::TableMigration {
                    proxy,
                    object: evicted.raw(),
                    from: TableLevel::Caching,
                    to: TableLevel::Multiple,
                });
            }
            if let Some(forgotten) = outcome.forgotten {
                probe.emit(SimEvent::TableMigration {
                    proxy,
                    object: forgotten.raw(),
                    from: TableLevel::Single,
                    to: TableLevel::Out,
                });
            }
        }
        if self.lru_store.is_none() {
            if outcome.admitted_to_cache {
                self.stats.cache_insertions += 1;
                self.cache_events.push(CacheEvent::Store(object));
                if P::ENABLED {
                    probe.emit(SimEvent::CacheInsert {
                        proxy: self.id.raw(),
                        object: object.raw(),
                    });
                }
            }
            if let Some(evicted) = outcome.evicted_from_cache {
                self.stats.cache_evictions += 1;
                self.cache_events.push(CacheEvent::Evict(evicted));
                if P::ENABLED {
                    probe.emit(SimEvent::CacheEvict {
                        proxy: self.id.raw(),
                        object: evicted.raw(),
                    });
                }
            }
        }
    }

    /// Stores `object` in the LRU store (ablation policy only), evicting
    /// the least recently used entry when full.
    fn lru_admit<P: Probe>(&mut self, object: ObjectId, probe: &mut P) {
        let capacity = self.config.cache_capacity;
        let Some(lru) = self.lru_store.as_mut() else {
            return;
        };
        if lru.contains(&object) {
            lru.get_refresh(&object);
            return;
        }
        lru.push_front(object, ());
        self.stats.cache_insertions += 1;
        self.cache_events.push(CacheEvent::Store(object));
        if P::ENABLED {
            probe.emit(SimEvent::CacheInsert {
                proxy: self.id.raw(),
                object: object.raw(),
            });
        }
        if lru.len() > capacity {
            if let Some((evicted, ())) = lru.pop_back() {
                self.stats.cache_evictions += 1;
                self.cache_events.push(CacheEvent::Evict(evicted));
                if P::ENABLED {
                    probe.emit(SimEvent::CacheEvict {
                        proxy: self.id.raw(),
                        object: evicted.raw(),
                    });
                }
            }
        }
    }
}

impl CacheAgent for AdcProxy {
    fn proxy_id(&self) -> ProxyId {
        self.id
    }

    /// The paper's `Receive_Request()` (Figure 5).
    fn on_request<P: Probe>(
        &mut self,
        request: Request,
        rng: &mut dyn RngCore,
        probe: &mut P,
        out: &mut ActionSink,
    ) {
        self.local_time += 1;
        self.stats.requests_received += 1;
        let object = request.object;

        if self.locally_cached(object) {
            // Local hit: refresh the entry with ourselves as location and
            // return the data to the sender.
            self.stats.local_hits += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LocalHit {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            self.update_entry(object, Location::This, probe);
            if self.lru_store.is_some() {
                self.lru_admit(object, probe);
            }
            let reply = Reply::from_cache(&request, self.id, DEFAULT_OBJECT_SIZE);
            out.send(request.sender, reply);
            return;
        }

        // Miss: remember the backwarding hop, then forward.
        let loop_detected = self.pending.contains_key(&request.id);
        self.pending
            .entry(request.id)
            .or_default()
            .push(request.sender);

        let mut forwarded = request;
        forwarded.sender = NodeId::Proxy(self.id);
        forwarded.hops += 1;

        let to = if loop_detected {
            self.stats.origin_loops += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LoopDetected {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            NodeId::Origin
        } else if request.hops >= self.config.max_hops {
            self.stats.origin_max_hops += 1;
            if P::ENABLED {
                probe.emit(SimEvent::HopLimitHit {
                    proxy: self.id.raw(),
                    object: object.raw(),
                    hops: request.hops,
                });
            }
            NodeId::Origin
        } else {
            self.forward_addr(object, rng, probe)
        };
        out.send(to, forwarded);
    }

    /// The paper's `Receive_Reply()` (Figure 7).
    fn on_reply<P: Probe>(&mut self, reply: Reply, probe: &mut P, out: &mut ActionSink) {
        let prev_hop = {
            let stack = match self.pending.get_mut(&reply.id) {
                Some(s) => s,
                None => {
                    self.stats.replies_orphaned += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::ReplyOrphaned {
                            proxy: self.id.raw(),
                            object: reply.object.raw(),
                        });
                    }
                    return;
                }
            };
            // Invariant: empty stacks are removed from `pending` as soon
            // as the last hop pops (below). adc-lint: allow(panic)
            let hop = stack.pop().expect("pending stacks are never empty");
            if stack.is_empty() {
                self.pending.remove(&reply.id);
            }
            hop
        };
        self.stats.replies_processed += 1;

        let mut reply = reply;
        // NULL resolver means the data came from the origin server; this
        // proxy becomes the official resolver.
        if reply.resolver.is_none() {
            reply.resolver = Some(self.id);
        }
        // Invariant: a None resolver was replaced just above. adc-lint: allow(panic)
        let resolver = reply.resolver.expect("resolver was just set");
        if P::ENABLED && resolver != self.id {
            // Backwarding taught us a remote owner for this object.
            probe.emit(SimEvent::BackwardAdoption {
                proxy: self.id.raw(),
                object: reply.object.raw(),
                owner: resolver.raw(),
            });
        }
        self.update_entry(reply.object, Location::from_proxy(resolver, self.id), probe);
        if self.lru_store.is_some() {
            // Cache-everything ablation: every passing object is stored.
            self.lru_admit(reply.object, probe);
        }

        // Claim the caching location if we hold the data and nobody else
        // on the path has cached it ("focus on only one caching location").
        if self.locally_cached(reply.object) && reply.cached_by.is_none() {
            reply.resolver = Some(self.id);
            reply.cached_by = Some(self.id);
        }

        out.send(prev_hop, reply);
    }

    fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    fn drain_cache_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.cache_events)
    }

    fn cached_objects(&self) -> usize {
        match &self.lru_store {
            Some(lru) => lru.len(),
            None => self.tables.cached().len(),
        }
    }

    fn is_cached(&self, object: ObjectId) -> bool {
        self.locally_cached(object)
    }

    fn owner_hint(&self, object: ObjectId) -> Option<ProxyId> {
        self.tables
            .lookup(object)
            .map(|e| e.location.resolve(self.id))
    }

    fn reset(&mut self) {
        self.tables.clear();
        if let Some(lru) = self.lru_store.as_mut() {
            lru.clear();
        }
        self.pending.clear();
        self.cache_events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Action;
    use crate::config::AgingMode;
    use crate::ids::ClientId;
    use crate::message::ServedFrom;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn req(seq: u64, object: u64) -> Request {
        Request::new(
            RequestId::new(ClientId::new(0), seq),
            ObjectId::new(object),
            ClientId::new(0),
        )
    }

    fn small_config() -> AdcConfig {
        AdcConfig::builder()
            .single_capacity(16)
            .multiple_capacity(16)
            .cache_capacity(8)
            .max_hops(8)
            .build()
    }

    fn proxy(id: u32, n: u32) -> AdcProxy {
        AdcProxy::new(ProxyId::new(id), n, small_config())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Drives a full miss-resolve-backward cycle through one proxy.
    fn resolve_via_origin(p: &mut AdcProxy, r: Request, rng: &mut StdRng) -> Reply {
        let Action::Send { message, .. } = p.request_action(r, rng);
        let forwarded = match message {
            crate::message::Message::Request(f) => f,
            _ => panic!("miss must forward"),
        };
        let origin_reply = Reply::from_origin(&forwarded, 100);
        let Action::Send { to, message } = p.reply_action(origin_reply).expect("pending reply");
        assert_eq!(to, NodeId::Client(ClientId::new(0)));
        match message {
            crate::message::Message::Reply(rep) => rep,
            _ => panic!("backwarding carries a reply"),
        }
    }

    #[test]
    fn miss_forwards_and_stores_backwarding_info() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        let Action::Send { to, message } = p.request_action(req(1, 10), &mut r);
        assert!(matches!(to, NodeId::Proxy(_)));
        match message {
            crate::message::Message::Request(f) => {
                assert_eq!(f.sender, NodeId::Proxy(ProxyId::new(0)));
                assert_eq!(f.hops, 1);
            }
            _ => panic!("expected forwarded request"),
        }
        assert_eq!(p.pending_requests(), 1);
    }

    #[test]
    fn reply_from_origin_sets_this_proxy_as_resolver() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        let rep = resolve_via_origin(&mut p, req(1, 10), &mut r);
        assert_eq!(rep.resolver, Some(ProxyId::new(0)));
        assert_eq!(rep.served_from, ServedFrom::Origin);
        assert_eq!(p.pending_requests(), 0);
        // First sighting: entry in the single-table with location THIS.
        let e = p.tables().lookup(ObjectId::new(10)).unwrap();
        assert_eq!(e.location, Location::This);
    }

    #[test]
    fn loop_detection_sends_second_visit_to_origin() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        // First visit: miss, forwarded somewhere, pending stored.
        let _ = p.request_action(req(1, 10), &mut r);
        // The same request comes back (loop).
        let mut looped = req(1, 10);
        looped.sender = NodeId::Proxy(ProxyId::new(2));
        looped.hops = 3;
        let Action::Send { to, .. } = p.request_action(looped, &mut r);
        assert_eq!(to, NodeId::Origin);
        assert_eq!(p.stats().origin_loops, 1);
        // Two pending hops now (stacked).
        assert_eq!(p.pending_requests(), 1);
        assert_eq!(p.pending.get(&req(1, 10).id).unwrap().len(), 2);
    }

    #[test]
    fn looped_reply_unwinds_both_pending_hops_in_lifo_order() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        let _ = p.request_action(req(1, 10), &mut r); // prev hop: client
        let mut looped = req(1, 10);
        looped.sender = NodeId::Proxy(ProxyId::new(2));
        let _ = p.request_action(looped, &mut r); // prev hop: proxy 2

        let forwarded = {
            let mut f = req(1, 10);
            f.sender = NodeId::Proxy(ProxyId::new(0));
            f.hops = 2;
            f
        };
        let rep = Reply::from_origin(&forwarded, 100);
        // First unwind goes to the most recent hop (proxy 2).
        let Action::Send { to, message } = p.reply_action(rep).unwrap();
        assert_eq!(to, NodeId::Proxy(ProxyId::new(2)));
        let rep2 = match message {
            crate::message::Message::Reply(r) => r,
            _ => panic!(),
        };
        // Second unwind (after the loop traverses back) goes to the client.
        let Action::Send { to, .. } = p.reply_action(rep2).unwrap();
        assert_eq!(to, NodeId::Client(ClientId::new(0)));
        assert_eq!(p.pending_requests(), 0);
    }

    #[test]
    fn max_hops_sends_to_origin() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        let mut exhausted = req(1, 10);
        exhausted.hops = 8; // == max_hops
        exhausted.sender = NodeId::Proxy(ProxyId::new(1));
        let Action::Send { to, .. } = p.request_action(exhausted, &mut r);
        assert_eq!(to, NodeId::Origin);
        assert_eq!(p.stats().origin_max_hops, 1);
    }

    #[test]
    fn repeated_requests_promote_and_eventually_cache() {
        let mut p = proxy(0, 1);
        let mut r = rng();
        // Resolve the same object three times; with a 1-proxy system every
        // miss goes through this proxy.
        for seq in 0..3 {
            let rep = resolve_via_origin(&mut p, req(seq, 10), &mut r);
            let _ = rep;
        }
        assert!(p.is_cached(ObjectId::new(10)), "object should be cached");
        // Fourth request: local hit.
        let Action::Send { to, message } = p.request_action(req(3, 10), &mut r);
        assert_eq!(to, NodeId::Client(ClientId::new(0)));
        match message {
            crate::message::Message::Reply(rep) => {
                assert_eq!(rep.served_from, ServedFrom::Cache(ProxyId::new(0)));
                assert_eq!(rep.resolver, Some(ProxyId::new(0)));
            }
            _ => panic!("hit must reply"),
        }
        assert_eq!(p.stats().local_hits, 1);
    }

    #[test]
    fn backwarding_adopts_resolver_location() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        let _ = p.request_action(req(1, 10), &mut r);
        // Reply comes back already resolved by proxy 3.
        let mut rep = Reply::from_origin(
            &{
                let mut f = req(1, 10);
                f.sender = NodeId::Proxy(ProxyId::new(0));
                f
            },
            100,
        );
        rep.resolver = Some(ProxyId::new(3));
        rep.cached_by = Some(ProxyId::new(3));
        rep.served_from = ServedFrom::Cache(ProxyId::new(3));
        let _ = p.reply_action(rep).unwrap();
        let e = p.tables().lookup(ObjectId::new(10)).unwrap();
        assert_eq!(e.location, Location::Remote(ProxyId::new(3)));
    }

    #[test]
    fn this_location_without_data_goes_to_origin() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        // Learn THIS for object 10 (resolved once from origin).
        let _ = resolve_via_origin(&mut p, req(1, 10), &mut r);
        assert_eq!(
            p.tables().lookup(ObjectId::new(10)).unwrap().location,
            Location::This
        );
        assert!(!p.is_cached(ObjectId::new(10)));
        // Next request for it: responsible but not cached → origin.
        let Action::Send { to, .. } = p.request_action(req(2, 10), &mut r);
        assert_eq!(to, NodeId::Origin);
        assert_eq!(p.stats().origin_this_miss, 1);
    }

    #[test]
    fn orphan_reply_is_counted_and_dropped() {
        let mut p = proxy(0, 4);
        let rep = Reply::from_origin(&req(9, 9), 10);
        assert!(p.reply_action(rep).is_none());
        assert_eq!(p.stats().replies_orphaned, 1);
    }

    #[test]
    fn second_cacher_does_not_reclaim() {
        let mut p = proxy(0, 4);
        let mut r = rng();
        // Make object 10 cached locally via three origin resolutions.
        let mut p1 = proxy(0, 1);
        for seq in 0..3 {
            let _ = resolve_via_origin(&mut p1, req(seq, 10), &mut r);
        }
        // p holds data for object 10 as well: simulate by driving p alone.
        for seq in 0..3 {
            let _ = resolve_via_origin(&mut p, req(seq, 10), &mut r);
        }
        assert!(p.is_cached(ObjectId::new(10)));
        // A reply already marked as cached elsewhere passes through p.
        let _ = p.request_action(req(7, 10), &mut r); // shouldn't happen for cached, but force pending
                                                      // Actually cached objects reply immediately; craft pending manually
                                                      // via a different object to exercise the claim rule instead.
        let _ = p.request_action(req(8, 11), &mut r);
        let mut rep = Reply::from_origin(
            &{
                let mut f = req(8, 11);
                f.sender = NodeId::Proxy(ProxyId::new(0));
                f
            },
            100,
        );
        rep.resolver = Some(ProxyId::new(2));
        rep.cached_by = Some(ProxyId::new(2));
        let Action::Send { message, .. } = p.reply_action(rep).unwrap();
        match message {
            crate::message::Message::Reply(out) => {
                // Object 11 is not cached at p, and even if it were, the
                // cached_by marker from proxy 2 must survive.
                assert_eq!(out.cached_by, Some(ProxyId::new(2)));
                assert_eq!(out.resolver, Some(ProxyId::new(2)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn lru_policy_caches_every_passing_object() {
        let config = AdcConfig::builder()
            .single_capacity(16)
            .multiple_capacity(16)
            .cache_capacity(2)
            .max_hops(8)
            .policy(CachePolicy::LruAll)
            .aging(AgingMode::Off)
            .build();
        let mut p = AdcProxy::new(ProxyId::new(0), 1, config);
        let mut r = rng();
        // One pass each: LRU caches immediately (selective would not).
        let _ = resolve_via_origin(&mut p, req(0, 1), &mut r);
        assert!(p.is_cached(ObjectId::new(1)));
        let _ = resolve_via_origin(&mut p, req(1, 2), &mut r);
        let _ = resolve_via_origin(&mut p, req(2, 3), &mut r);
        // Capacity 2: object 1 evicted.
        assert!(!p.is_cached(ObjectId::new(1)));
        assert!(p.is_cached(ObjectId::new(2)));
        assert!(p.is_cached(ObjectId::new(3)));
        assert_eq!(p.cached_objects(), 2);
    }

    #[test]
    fn cache_events_mirror_store_changes() {
        let mut p = proxy(0, 1);
        let mut r = rng();
        for seq in 0..3 {
            let _ = resolve_via_origin(&mut p, req(seq, 10), &mut r);
        }
        let events = p.drain_cache_events();
        assert!(events.contains(&CacheEvent::Store(ObjectId::new(10))));
        // Draining empties the buffer.
        assert!(p.drain_cache_events().is_empty());
    }

    #[test]
    fn random_forwarding_is_uniform_over_peers() {
        let mut counts = [0usize; 4];
        let mut r = rng();
        for seq in 0..4000 {
            let mut p = proxy(0, 4);
            let Action::Send { to, .. } = p.request_action(req(seq, seq + 100), &mut r);
            if let NodeId::Proxy(pid) = to {
                counts[pid.raw() as usize] += 1;
            }
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "counts not uniform: {counts:?}");
        }
    }
}
