//! Persistence of learned proxy state.
//!
//! The paper's future work: "Further tests, with a repetition of the
//! request pattern and a system with pre-learned information shall be
//! shown in the future." Snapshots make that experiment possible: run a
//! workload, save every proxy's mapping tables, and restart the cluster
//! warm.
//!
//! The format is a plain line-oriented text format (one entry per line),
//! readable with any tool and stable across versions:
//!
//! ```text
//! adc-snapshot v1
//! proxy 3 of 5
//! config <single> <multiple> <cache> <max_hops> <aging> <policy>
//! clock <local_time>
//! single <object> <location> <last> <avg> <hits>
//! ...
//! multiple <object> <location> <last> <avg> <hits>
//! ...
//! cached <object> <location> <last> <avg> <hits>
//! ```

// Line-parser idiom: every `parts[i]` access is immediately preceded by a
// `parts.len()` check on the same match arm, so per-site bounds comments
// would restate the adjacent guard. adc-lint: allow-file(index-comment)

use crate::config::{AdcConfig, AgingMode, CachePolicy};
use crate::entry::{TableEntry, Tick};
use crate::ids::{Location, ObjectId, ProxyId};
use crate::proxy::AdcProxy;
use crate::tables::MappingTables;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// A serializable snapshot of one proxy's learned state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxySnapshot {
    /// The proxy this snapshot came from.
    pub proxy: ProxyId,
    /// The peer-set size it ran in.
    pub num_proxies: u32,
    /// The configuration the tables were built with.
    pub config: AdcConfig,
    /// The proxy's local clock at snapshot time.
    pub local_time: Tick,
    /// Single-table rows, newest first.
    pub single: Vec<TableEntry>,
    /// Multiple-table rows, best first.
    pub multiple: Vec<TableEntry>,
    /// Caching-table rows, best first.
    pub cached: Vec<TableEntry>,
}

/// Error restoring or parsing a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed snapshot content.
    Parse(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Parse(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Parse(_) => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl ProxySnapshot {
    /// Captures the learned state of `proxy`.
    pub fn capture(proxy: &AdcProxy) -> ProxySnapshot {
        let tables = proxy.tables();
        ProxySnapshot {
            proxy: proxy.proxy_id_value(),
            num_proxies: proxy.num_proxies(),
            config: proxy.config().clone(),
            local_time: proxy.local_time(),
            single: tables.single().iter().copied().collect(),
            multiple: tables.multiple().iter().copied().collect(),
            cached: tables.cached().iter().copied().collect(),
        }
    }

    /// Rebuilds a warm proxy from this snapshot.
    ///
    /// The restored proxy has the same tables, clock and configuration;
    /// counters start from zero (they measure work, not state).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Parse`] when the snapshot's tables exceed
    /// the configured capacities.
    pub fn restore(&self) -> Result<AdcProxy, SnapshotError> {
        if self.config.policy != CachePolicy::Selective {
            return Err(SnapshotError::Parse(
                "only selective-policy proxies are restorable".into(),
            ));
        }
        if self.single.len() > self.config.single_capacity
            || self.multiple.len() > self.config.multiple_capacity
            || self.cached.len() > self.config.cache_capacity
        {
            return Err(SnapshotError::Parse(
                "table contents exceed configured capacities".into(),
            ));
        }
        let mut tables = MappingTables::new(
            self.config.single_capacity,
            self.config.multiple_capacity,
            self.config.cache_capacity,
            self.config.aging,
        );
        tables.restore_contents(&self.single, &self.multiple, &self.cached);
        Ok(AdcProxy::from_restored(
            self.proxy,
            self.num_proxies,
            self.config.clone(),
            tables,
            self.local_time,
        ))
    }

    /// Writes the snapshot in the documented text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "adc-snapshot v1")?;
        writeln!(w, "proxy {} of {}", self.proxy.raw(), self.num_proxies)?;
        writeln!(
            w,
            "config {} {} {} {} {} {}",
            self.config.single_capacity,
            self.config.multiple_capacity,
            self.config.cache_capacity,
            self.config.max_hops,
            match self.config.aging {
                AgingMode::AgedWorst => "aged",
                AgingMode::Off => "off",
            },
            match self.config.policy {
                CachePolicy::Selective => "selective",
                CachePolicy::LruAll => "lru",
            }
        )?;
        writeln!(w, "clock {}", self.local_time)?;
        for (tag, entries) in [
            ("single", &self.single),
            ("multiple", &self.multiple),
            ("cached", &self.cached),
        ] {
            for e in entries.iter() {
                let loc = match e.location {
                    Location::This => "this".to_string(),
                    Location::Remote(p) => p.raw().to_string(),
                };
                writeln!(
                    w,
                    "{tag} {} {loc} {} {} {}",
                    e.object.raw(),
                    e.last,
                    e.average,
                    e.hits
                )?;
            }
        }
        w.flush()
    }

    /// Reads a snapshot written by [`ProxySnapshot::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure or malformed content.
    pub fn read_from<R: Read>(r: R) -> Result<ProxySnapshot, SnapshotError> {
        let mut lines = BufReader::new(r).lines();
        let mut next_line = || -> Result<String, SnapshotError> {
            lines
                .next()
                .ok_or_else(|| SnapshotError::Parse("unexpected end of snapshot".into()))?
                .map_err(SnapshotError::from)
        };
        let header = next_line()?;
        if header.trim() != "adc-snapshot v1" {
            return Err(SnapshotError::Parse(format!("bad header: {header:?}")));
        }
        let proxy_line = next_line()?;
        let parts: Vec<&str> = proxy_line.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "proxy" || parts[2] != "of" {
            return Err(SnapshotError::Parse(format!(
                "bad proxy line: {proxy_line:?}"
            )));
        }
        let proxy = ProxyId::new(parse(parts[1])?);
        let num_proxies: u32 = parse(parts[3])?;

        let config_line = next_line()?;
        let parts: Vec<&str> = config_line.split_whitespace().collect();
        if parts.len() != 7 || parts[0] != "config" {
            return Err(SnapshotError::Parse(format!(
                "bad config line: {config_line:?}"
            )));
        }
        let config = AdcConfig {
            single_capacity: parse(parts[1])?,
            multiple_capacity: parse(parts[2])?,
            cache_capacity: parse(parts[3])?,
            max_hops: parse(parts[4])?,
            aging: match parts[5] {
                "aged" => AgingMode::AgedWorst,
                "off" => AgingMode::Off,
                other => return Err(SnapshotError::Parse(format!("bad aging: {other:?}"))),
            },
            policy: match parts[6] {
                "selective" => CachePolicy::Selective,
                "lru" => CachePolicy::LruAll,
                other => return Err(SnapshotError::Parse(format!("bad policy: {other:?}"))),
            },
        };

        let clock_line = next_line()?;
        let parts: Vec<&str> = clock_line.split_whitespace().collect();
        if parts.len() != 2 || parts[0] != "clock" {
            return Err(SnapshotError::Parse(format!(
                "bad clock line: {clock_line:?}"
            )));
        }
        let local_time: Tick = parse(parts[1])?;

        let mut snapshot = ProxySnapshot {
            proxy,
            num_proxies,
            config,
            local_time,
            single: Vec::new(),
            multiple: Vec::new(),
            cached: Vec::new(),
        };
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 6 {
                return Err(SnapshotError::Parse(format!("bad entry line: {line:?}")));
            }
            let entry = TableEntry {
                object: ObjectId::new(parse(parts[1])?),
                location: if parts[2] == "this" {
                    Location::This
                } else {
                    Location::Remote(ProxyId::new(parse(parts[2])?))
                },
                last: parse(parts[3])?,
                average: parse(parts[4])?,
                hits: parse(parts[5])?,
            };
            match parts[0] {
                "single" => snapshot.single.push(entry),
                "multiple" => snapshot.multiple.push(entry),
                "cached" => snapshot.cached.push(entry),
                other => {
                    return Err(SnapshotError::Parse(format!(
                        "unknown table tag: {other:?}"
                    )))
                }
            }
        }
        Ok(snapshot)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, SnapshotError> {
    s.parse()
        .map_err(|_| SnapshotError::Parse(format!("bad number {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Action;
    use crate::agent::CacheAgent;
    use crate::ids::ClientId;
    use crate::ids::NodeId;
    use crate::ids::RequestId;
    use crate::message::{Message, Reply, Request};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_proxy() -> AdcProxy {
        let config = AdcConfig::builder()
            .single_capacity(32)
            .multiple_capacity(32)
            .cache_capacity(16)
            .max_hops(8)
            .build();
        let mut proxy = AdcProxy::new(ProxyId::new(0), 1, config);
        let mut rng = StdRng::seed_from_u64(1);
        let client = ClientId::new(0);
        for seq in 0..200u64 {
            let object = ObjectId::new(seq % 9);
            let request = Request::new(RequestId::new(client, seq), object, client);
            let mut inbox = vec![Message::Request(request)];
            while let Some(message) = inbox.pop() {
                let action = match message {
                    Message::Request(r) => Some(proxy.request_action(r, &mut rng)),
                    Message::Reply(r) => proxy.reply_action(r),
                };
                if let Some(Action::Send { to, message }) = action {
                    match to {
                        NodeId::Proxy(_) => inbox.push(message),
                        NodeId::Origin => {
                            if let Message::Request(f) = message {
                                inbox.push(Message::Reply(Reply::from_origin(&f, 64)));
                            }
                        }
                        NodeId::Client(_) => {}
                    }
                }
            }
        }
        proxy
    }

    #[test]
    fn capture_restore_round_trip_in_memory() {
        let proxy = trained_proxy();
        let snapshot = ProxySnapshot::capture(&proxy);
        let restored = snapshot.restore().unwrap();
        assert_eq!(restored.local_time(), proxy.local_time());
        // All table contents match.
        for o in 0..9u64 {
            let a = proxy.tables().lookup(ObjectId::new(o));
            let b = restored.tables().lookup(ObjectId::new(o));
            assert_eq!(a, b, "entry for object {o} differs");
            assert_eq!(
                proxy.is_cached(ObjectId::new(o)),
                restored.is_cached(ObjectId::new(o))
            );
        }
        restored.tables().assert_invariants();
    }

    #[test]
    fn text_format_round_trip() {
        let proxy = trained_proxy();
        let snapshot = ProxySnapshot::capture(&proxy);
        let mut buf = Vec::new();
        snapshot.write_to(&mut buf).unwrap();
        let back = ProxySnapshot::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn restored_proxy_keeps_hitting() {
        let proxy = trained_proxy();
        let hot = ObjectId::new(0);
        assert!(proxy.is_cached(hot), "training should cache object 0");
        let snapshot = ProxySnapshot::capture(&proxy);
        let mut restored = snapshot.restore().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let client = ClientId::new(0);
        let request = Request::new(RequestId::new(client, 999), hot, client);
        let Action::Send { to, .. } = restored.request_action(request, &mut rng);
        assert_eq!(to, NodeId::Client(client), "warm proxy should hit");
        assert_eq!(restored.stats().local_hits, 1);
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(ProxySnapshot::read_from("garbage".as_bytes()).is_err());
        let text = "adc-snapshot v1\nproxy 0 of 1\nconfig 8 8 4 8 aged selective\nclock x\n";
        assert!(ProxySnapshot::read_from(text.as_bytes()).is_err());
        let text = "adc-snapshot v1\nproxy 0 of 1\nconfig 8 8 4 8 weird selective\nclock 0\n";
        assert!(ProxySnapshot::read_from(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_oversized_contents() {
        let proxy = trained_proxy();
        let mut snapshot = ProxySnapshot::capture(&proxy);
        snapshot.config.cache_capacity = 1; // smaller than captured cache
        assert!(matches!(snapshot.restore(), Err(SnapshotError::Parse(_))));
    }

    #[test]
    fn empty_proxy_round_trips() {
        let proxy = AdcProxy::new(ProxyId::new(2), 5, AdcConfig::default());
        let snapshot = ProxySnapshot::capture(&proxy);
        let mut buf = Vec::new();
        snapshot.write_to(&mut buf).unwrap();
        let back = ProxySnapshot::read_from(buf.as_slice()).unwrap();
        let restored = back.restore().unwrap();
        assert_eq!(restored.proxy_id_value(), ProxyId::new(2));
        assert!(restored.tables().is_empty());
    }
}
