//! Configuration for an ADC proxy agent.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// How admission thresholds treat the age of the resident worst entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AgingMode {
    /// Compare candidates against the *aged* average of the worst resident
    /// entry, `(avg + (now - last)) / 2` (Figure 4 of the paper). This is
    /// the paper's scheme: stale residents become easier to displace.
    #[default]
    AgedWorst,
    /// Compare against the stored average only (ablation A2).
    Off,
}

impl AgingMode {
    /// Returns `true` when aged comparisons are enabled.
    pub fn is_aged(self) -> bool {
        matches!(self, AgingMode::AgedWorst)
    }
}

/// Which caching policy the proxy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CachePolicy {
    /// The paper's selective caching: an object is cached only when its
    /// average inter-request time beats the worst entry of the caching
    /// table.
    #[default]
    Selective,
    /// Cache every object that passes by, evicting least-recently-used
    /// (what the paper says hierarchical/hashing systems do; ablation A1).
    LruAll,
}

/// Configuration of one ADC proxy.
///
/// Defaults are the paper's experiment settings (§V.2): 20k single-table,
/// 20k multiple-table, 10k caching table.
///
/// # Examples
///
/// ```
/// use adc_core::AdcConfig;
///
/// let config = AdcConfig::builder()
///     .single_capacity(5_000)
///     .multiple_capacity(10_000)
///     .cache_capacity(10_000)
///     .max_hops(8)
///     .build();
/// assert_eq!(config.single_capacity, 5_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdcConfig {
    /// Capacity of the single-table (paper default: 20 000).
    pub single_capacity: usize,
    /// Capacity of the multiple-table (paper default: 20 000).
    pub multiple_capacity: usize,
    /// Capacity of the caching table, i.e. the number of objects whose
    /// data is stored locally (paper default: 10 000).
    pub cache_capacity: usize,
    /// Maximum number of proxy-to-proxy forwardings before the next proxy
    /// sends the request to the origin server ("a maximum number of
    /// forwarding can be set").
    pub max_hops: u32,
    /// Whether admission comparisons age the resident worst entry.
    pub aging: AgingMode,
    /// Selective caching (paper) or cache-everything LRU (ablation).
    pub policy: CachePolicy,
}

impl Default for AdcConfig {
    fn default() -> Self {
        AdcConfig {
            single_capacity: 20_000,
            multiple_capacity: 20_000,
            cache_capacity: 10_000,
            max_hops: 16,
            aging: AgingMode::default(),
            policy: CachePolicy::default(),
        }
    }
}

impl AdcConfig {
    /// Starts building a configuration from the paper's defaults.
    pub fn builder() -> AdcConfigBuilder {
        AdcConfigBuilder {
            config: AdcConfig::default(),
        }
    }

    /// Validates capacity parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending parameter when any
    /// capacity or the hop limit is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.single_capacity == 0 {
            return Err(ConfigError::ZeroSingleCapacity);
        }
        if self.multiple_capacity == 0 {
            return Err(ConfigError::ZeroMultipleCapacity);
        }
        if self.cache_capacity == 0 {
            return Err(ConfigError::ZeroCacheCapacity);
        }
        if self.max_hops == 0 {
            return Err(ConfigError::ZeroMaxHops);
        }
        Ok(())
    }
}

/// Builder for [`AdcConfig`]; see [`AdcConfig::builder`].
#[derive(Debug, Clone)]
pub struct AdcConfigBuilder {
    config: AdcConfig,
}

impl AdcConfigBuilder {
    /// Sets the single-table capacity.
    pub fn single_capacity(mut self, n: usize) -> Self {
        self.config.single_capacity = n;
        self
    }

    /// Sets the multiple-table capacity.
    pub fn multiple_capacity(mut self, n: usize) -> Self {
        self.config.multiple_capacity = n;
        self
    }

    /// Sets the caching-table capacity.
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.config.cache_capacity = n;
        self
    }

    /// Sets the forwarding hop limit.
    pub fn max_hops(mut self, n: u32) -> Self {
        self.config.max_hops = n;
        self
    }

    /// Sets the aging mode.
    pub fn aging(mut self, mode: AgingMode) -> Self {
        self.config.aging = mode;
        self
    }

    /// Sets the caching policy.
    pub fn policy(mut self, policy: CachePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if any capacity or the hop limit is zero; use
    /// [`AdcConfigBuilder::try_build`] for a fallible variant.
    pub fn build(self) -> AdcConfig {
        // Documented panic above; try_build is the fallible variant.
        self.try_build().expect("invalid ADC configuration") // adc-lint: allow(panic)
    }

    /// Fallible variant of [`AdcConfigBuilder::build`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending parameter.
    pub fn try_build(self) -> Result<AdcConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = AdcConfig::default();
        assert_eq!(c.single_capacity, 20_000);
        assert_eq!(c.multiple_capacity, 20_000);
        assert_eq!(c.cache_capacity, 10_000);
        assert_eq!(c.aging, AgingMode::AgedWorst);
        assert_eq!(c.policy, CachePolicy::Selective);
    }

    #[test]
    fn builder_overrides() {
        let c = AdcConfig::builder()
            .single_capacity(1)
            .multiple_capacity(2)
            .cache_capacity(3)
            .max_hops(4)
            .aging(AgingMode::Off)
            .policy(CachePolicy::LruAll)
            .build();
        assert_eq!(
            c,
            AdcConfig {
                single_capacity: 1,
                multiple_capacity: 2,
                cache_capacity: 3,
                max_hops: 4,
                aging: AgingMode::Off,
                policy: CachePolicy::LruAll,
            }
        );
    }

    #[test]
    fn zero_capacities_rejected() {
        assert!(AdcConfig::builder().single_capacity(0).try_build().is_err());
        assert!(AdcConfig::builder()
            .multiple_capacity(0)
            .try_build()
            .is_err());
        assert!(AdcConfig::builder().cache_capacity(0).try_build().is_err());
        assert!(AdcConfig::builder().max_hops(0).try_build().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid ADC configuration")]
    fn build_panics_on_invalid() {
        let _ = AdcConfig::builder().single_capacity(0).build();
    }
}
