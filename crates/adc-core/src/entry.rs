//! Mapping-table entries and the paper's average / aging arithmetic.
//!
//! Each entry corresponds to one row of the tables shown in Figures 1–3 of
//! the paper: `(OBJ-ID, PROXY, LAST, AVG, HITS)`.

use crate::ids::{Location, ObjectId};
use serde::{Deserialize, Serialize};

/// Per-proxy logical time, in units of locally received requests.
///
/// The paper: "the counter for the received requests represents the local
/// clock of the proxy and is used for the later described average
/// computation."
pub type Tick = u64;

/// One row of a mapping table (Figures 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableEntry {
    /// The object this row describes (`OBJ-ID`).
    pub object: ObjectId,
    /// The learned responsible proxy (`PROXY`).
    pub location: Location,
    /// Local time of the most recent request for this object (`LAST`).
    pub last: Tick,
    /// Moving average of the inter-request time (`AVG`); `0` until the
    /// object has been requested twice.
    pub average: Tick,
    /// Number of observed requests (`HITS`).
    pub hits: u64,
}

impl TableEntry {
    /// Creates a fresh entry for a first-seen object, exactly as the
    /// paper's Part 4 of `Update_Entry` does: `AVG = 0`, `HITS = 1`.
    pub fn new(object: ObjectId, location: Location, now: Tick) -> Self {
        TableEntry {
            object,
            location,
            last: now,
            average: 0,
            hits: 1,
        }
    }

    /// The paper's `Calc_Average()` (Figure 9).
    ///
    /// On the second request the gap between the two requests becomes the
    /// first approximation; afterwards a two-point moving average is kept:
    /// `avg = (avg + (now - last)) / 2`. Always bumps `HITS` and re-stamps
    /// `LAST`.
    ///
    /// # Examples
    ///
    /// ```
    /// use adc_core::{Location, ObjectId, TableEntry};
    ///
    /// let mut e = TableEntry::new(ObjectId::new(1), Location::This, 100);
    /// assert_eq!(e.average, 0);
    /// e.calc_average(130); // second request, 30 ticks later
    /// assert_eq!(e.average, 30);
    /// e.calc_average(140); // third request, 10 ticks later
    /// assert_eq!(e.average, (30 + 10) / 2);
    /// assert_eq!(e.hits, 3);
    /// ```
    pub fn calc_average(&mut self, now: Tick) {
        let gap = now.saturating_sub(self.last);
        if self.hits <= 1 {
            self.average = gap;
        } else {
            self.average = (self.average + gap) / 2;
        }
        self.hits += 1;
        self.last = now;
    }

    /// The paper's aging formula (Figure 4):
    /// `T_age = (T_average + (T_now - T_last)) / 2`.
    ///
    /// Used when comparing a candidate entry against the *current* age of
    /// the worst resident entry; recently requested objects get a lower age
    /// and therefore stay longer.
    pub fn aged_average(&self, now: Tick) -> Tick {
        (self.average + now.saturating_sub(self.last)) / 2
    }

    /// Returns `true` if the object has been requested at least twice and
    /// therefore carries a meaningful average.
    pub fn has_average(&self) -> bool {
        self.hits >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(now: Tick) -> TableEntry {
        TableEntry::new(ObjectId::new(42), Location::This, now)
    }

    #[test]
    fn new_entry_matches_paper_initialization() {
        let e = entry(9952);
        assert_eq!(e.average, 0);
        assert_eq!(e.hits, 1);
        assert_eq!(e.last, 9952);
        assert!(!e.has_average());
    }

    #[test]
    fn second_hit_uses_raw_gap() {
        let mut e = entry(100);
        e.calc_average(223);
        assert_eq!(e.average, 123);
        assert_eq!(e.hits, 2);
        assert_eq!(e.last, 223);
        assert!(e.has_average());
    }

    #[test]
    fn subsequent_hits_use_two_point_moving_average() {
        let mut e = entry(0);
        e.calc_average(100); // avg = 100
        e.calc_average(120); // avg = (100 + 20) / 2 = 60
        assert_eq!(e.average, 60);
        e.calc_average(180); // avg = (60 + 60) / 2 = 60
        assert_eq!(e.average, 60);
        assert_eq!(e.hits, 4);
    }

    #[test]
    fn average_is_monotone_under_repeated_same_gap() {
        // With a constant inter-request gap g the moving average converges
        // to g from any starting point.
        let mut e = entry(0);
        e.calc_average(1000); // avg 1000
        let mut t = 1000;
        for _ in 0..20 {
            t += 10;
            e.calc_average(t);
        }
        assert!(e.average >= 10 && e.average <= 12, "avg={}", e.average);
    }

    #[test]
    fn aging_penalizes_stale_entries() {
        let mut hot = entry(0);
        hot.calc_average(10); // avg 10, last 10
        let mut cold = entry(0);
        cold.calc_average(10); // identical history
        cold.last = 10;

        // At time 500, both aged equally.
        assert_eq!(hot.aged_average(500), cold.aged_average(500));
        // `hot` gets re-requested at 500; its age drops.
        hot.calc_average(500);
        assert!(hot.aged_average(510) < cold.aged_average(510));
    }

    #[test]
    fn aged_average_of_fresh_request_is_half_average() {
        let mut e = entry(0);
        e.calc_average(100);
        // Right after the request, (avg + 0) / 2.
        assert_eq!(e.aged_average(100), 50);
    }

    #[test]
    fn calc_average_handles_non_monotone_clock_gracefully() {
        // `now < last` should not underflow (can occur if a caller reuses
        // entries across table moves); treated as gap 0.
        let mut e = entry(100);
        e.calc_average(50);
        assert_eq!(e.average, 0);
        assert_eq!(e.last, 50);
    }
}
