//! The sans-IO agent abstraction.
//!
//! A [`CacheAgent`] consumes messages and emits [`Action`]s; it never
//! touches a socket, a clock or a global RNG. The discrete-event simulator
//! (`adc-sim`) and the tokio TCP runtime (`adc-net`) both drive the same
//! agents, so every algorithmic decision is testable in isolation and
//! deterministic under a seeded RNG.

use crate::ids::{NodeId, ObjectId, ProxyId};
use crate::message::{Message, Reply, Request};
use crate::stats::ProxyStats;
use rand::RngCore;

/// An instruction from an agent to its runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Transmit `message` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        message: Message,
    },
}

impl Action {
    /// Convenience constructor for a send action.
    pub fn send(to: impl Into<NodeId>, message: impl Into<Message>) -> Self {
        Action::Send {
            to: to.into(),
            message: message.into(),
        }
    }
}

/// A change to the agent's object store that the runtime must mirror when
/// it manages real object payloads (the TCP runtime does; the simulator
/// tracks IDs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// The object's data should now be stored locally.
    Store(ObjectId),
    /// The object's data should be evicted.
    Evict(ObjectId),
}

/// A proxy-cache agent: ADC or one of the baselines.
///
/// Runtimes deliver every incoming message through [`CacheAgent::on_request`]
/// or [`CacheAgent::on_reply`] and execute the returned actions. The RNG is
/// injected so a run is a pure function of its seeds.
pub trait CacheAgent {
    /// This agent's proxy identity.
    fn proxy_id(&self) -> ProxyId;

    /// Handles an incoming request (the paper's `Receive_Request`).
    /// Returns the single resulting transmission: a reply toward the
    /// sender on a cache hit, or a forwarded request otherwise.
    fn on_request(&mut self, request: Request, rng: &mut dyn RngCore) -> Action;

    /// Handles an incoming reply on the backwarding path (the paper's
    /// `Receive_Reply`). Returns `None` if the reply does not match any
    /// pending request (e.g. a duplicate under failure injection).
    fn on_reply(&mut self, reply: Reply) -> Option<Action>;

    /// Counters accumulated so far.
    fn stats(&self) -> &ProxyStats;

    /// Drains cache store/evict events accumulated since the last call.
    /// Runtimes that hold real payloads apply these to their byte store;
    /// the simulator may ignore them.
    fn drain_cache_events(&mut self) -> Vec<CacheEvent>;

    /// Number of objects currently cached.
    fn cached_objects(&self) -> usize;

    /// Returns `true` if the object's data is currently cached.
    fn is_cached(&self, object: ObjectId) -> bool;

    /// Forgets all learned state — tables, cached objects, pending
    /// backwarding information — as if the proxy had just restarted.
    /// Counters are preserved (they measure work done, not state held).
    ///
    /// Used by the simulator's churn injection to study how each scheme
    /// recovers from a proxy restart (the paper's unexplored "changes of
    /// the infrastructure" parameter).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, RequestId};

    #[test]
    fn action_send_constructor() {
        let req = Request::new(
            RequestId::new(ClientId::new(0), 1),
            ObjectId::new(5),
            ClientId::new(0),
        );
        let a = Action::send(ProxyId::new(2), req);
        match a {
            Action::Send { to, message } => {
                assert_eq!(to, NodeId::Proxy(ProxyId::new(2)));
                assert_eq!(message.object(), ObjectId::new(5));
            }
        }
    }
}
