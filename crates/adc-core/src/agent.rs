//! The sans-IO agent abstraction.
//!
//! A [`CacheAgent`] consumes messages and emits [`Action`]s; it never
//! touches a socket, a clock or a global RNG. The discrete-event simulator
//! (`adc-sim`) and the tokio TCP runtime (`adc-net`) both drive the same
//! agents, so every algorithmic decision is testable in isolation and
//! deterministic under a seeded RNG.

use crate::ids::{NodeId, ObjectId, ProxyId};
use crate::message::{Message, Reply, Request};
use crate::stats::ProxyStats;
use adc_obs::{NullProbe, Probe};
use rand::RngCore;

/// An instruction from an agent to its runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Transmit `message` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        message: Message,
    },
}

impl Action {
    /// Convenience constructor for a send action.
    pub fn send(to: impl Into<NodeId>, message: impl Into<Message>) -> Self {
        Action::Send {
            to: to.into(),
            message: message.into(),
        }
    }
}

/// A reusable scratch buffer agents push their [`Action`]s into.
///
/// Runtimes allocate one sink, pass it to every
/// [`CacheAgent::on_request`] / [`CacheAgent::on_reply`] call and drain
/// it afterwards, so steady-state message handling performs no heap
/// allocation (the backing `Vec` is retained across deliveries).
///
/// The contract between agent and runtime:
///
/// - the runtime hands the agent an **empty** sink (it drains or clears
///   it between deliveries);
/// - the agent appends zero or more actions in the order they should be
///   executed and never reads, reorders or removes prior contents;
/// - the runtime executes the actions in push order.
#[derive(Debug, Default)]
pub struct ActionSink {
    actions: Vec<Action>,
}

impl ActionSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        ActionSink::default()
    }

    /// Creates an empty sink with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ActionSink {
            actions: Vec::with_capacity(capacity),
        }
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Appends a send action (mirrors [`Action::send`]).
    pub fn send(&mut self, to: impl Into<NodeId>, message: impl Into<Message>) {
        self.actions.push(Action::send(to, message));
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` when no actions are buffered.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Removes and returns the last buffered action.
    pub fn pop(&mut self) -> Option<Action> {
        self.actions.pop()
    }

    /// Drops all buffered actions, keeping the allocation.
    pub fn clear(&mut self) {
        self.actions.clear();
    }

    /// Borrows the buffered actions in push order.
    pub fn as_slice(&self) -> &[Action] {
        &self.actions
    }

    /// Removes and yields the buffered actions in push order, keeping
    /// the allocation for reuse.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Action> {
        self.actions.drain(..)
    }
}

/// A change to the agent's object store that the runtime must mirror when
/// it manages real object payloads (the TCP runtime does; the simulator
/// tracks IDs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// The object's data should now be stored locally.
    Store(ObjectId),
    /// The object's data should be evicted.
    Evict(ObjectId),
}

/// A proxy-cache agent: ADC or one of the baselines.
///
/// Runtimes deliver every incoming message through [`CacheAgent::on_request`]
/// or [`CacheAgent::on_reply`], which push the resulting transmissions
/// into a runtime-owned [`ActionSink`], and then execute the buffered
/// actions. The RNG is injected so a run is a pure function of its seeds.
///
/// Both handlers are generic over a [`Probe`] receiving typed
/// [`SimEvent`](adc_obs::SimEvent)s. Emission sites are guarded by
/// `P::ENABLED`, an associated constant, so driving an agent with the
/// default [`NullProbe`] monomorphizes every probe hook away — the
/// disabled path compiles to the unobserved code. The trait is therefore
/// not object-safe; runtimes are generic over their agent type.
pub trait CacheAgent {
    /// This agent's proxy identity.
    fn proxy_id(&self) -> ProxyId;

    /// Handles an incoming request (the paper's `Receive_Request`).
    /// Pushes the single resulting transmission into `out`: a reply
    /// toward the sender on a cache hit, or a forwarded request
    /// otherwise.
    fn on_request<P: Probe>(
        &mut self,
        request: Request,
        rng: &mut dyn RngCore,
        probe: &mut P,
        out: &mut ActionSink,
    );

    /// Handles an incoming reply on the backwarding path (the paper's
    /// `Receive_Reply`). Pushes nothing if the reply does not match any
    /// pending request (e.g. a duplicate under failure injection).
    fn on_reply<P: Probe>(&mut self, reply: Reply, probe: &mut P, out: &mut ActionSink);

    /// Allocating convenience wrapper around [`CacheAgent::on_request`]
    /// for tests and examples that drive one delivery at a time. Hot
    /// paths should reuse an [`ActionSink`] instead.
    fn request_action(&mut self, request: Request, rng: &mut dyn RngCore) -> Action {
        let mut out = ActionSink::new();
        self.on_request(request, rng, &mut NullProbe, &mut out);
        debug_assert_eq!(out.len(), 1, "on_request emits exactly one action");
        // Invariant: every on_request impl pushes exactly one action
        // (checked above in debug builds). adc-lint: allow(panic)
        out.pop().expect("on_request emits exactly one action")
    }

    /// Allocating convenience wrapper around [`CacheAgent::on_reply`];
    /// returns `None` for orphaned replies. Hot paths should reuse an
    /// [`ActionSink`] instead.
    fn reply_action(&mut self, reply: Reply) -> Option<Action> {
        let mut out = ActionSink::new();
        self.on_reply(reply, &mut NullProbe, &mut out);
        debug_assert!(out.len() <= 1, "on_reply emits at most one action");
        out.pop()
    }

    /// The proxy this agent currently believes owns `object` (resolved to
    /// a concrete proxy id, with `THIS`-style self references mapped to
    /// the agent's own id), or `None` when nothing is known.
    ///
    /// Used by the convergence sampler to measure inter-proxy agreement;
    /// agents without a notion of learned ownership keep the default.
    fn owner_hint(&self, object: ObjectId) -> Option<ProxyId> {
        let _ = object;
        None
    }

    /// Counters accumulated so far.
    fn stats(&self) -> &ProxyStats;

    /// Drains cache store/evict events accumulated since the last call.
    /// Runtimes that hold real payloads apply these to their byte store;
    /// the simulator may ignore them.
    fn drain_cache_events(&mut self) -> Vec<CacheEvent>;

    /// Number of objects currently cached.
    fn cached_objects(&self) -> usize;

    /// Returns `true` if the object's data is currently cached.
    fn is_cached(&self, object: ObjectId) -> bool;

    /// Forgets all learned state — tables, cached objects, pending
    /// backwarding information — as if the proxy had just restarted.
    /// Counters are preserved (they measure work done, not state held).
    ///
    /// Used by the simulator's churn injection to study how each scheme
    /// recovers from a proxy restart (the paper's unexplored "changes of
    /// the infrastructure" parameter).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, RequestId};

    #[test]
    fn action_send_constructor() {
        let req = Request::new(
            RequestId::new(ClientId::new(0), 1),
            ObjectId::new(5),
            ClientId::new(0),
        );
        let a = Action::send(ProxyId::new(2), req);
        match a {
            Action::Send { to, message } => {
                assert_eq!(to, NodeId::Proxy(ProxyId::new(2)));
                assert_eq!(message.object(), ObjectId::new(5));
            }
        }
    }

    #[test]
    fn action_sink_buffers_in_push_order_and_reuses_allocation() {
        let req = Request::new(
            RequestId::new(ClientId::new(0), 1),
            ObjectId::new(5),
            ClientId::new(0),
        );
        let mut sink = ActionSink::with_capacity(4);
        assert!(sink.is_empty());
        sink.send(ProxyId::new(1), req);
        sink.push(Action::send(ProxyId::new(2), req));
        assert_eq!(sink.len(), 2);
        let dests: Vec<NodeId> = sink.drain().map(|Action::Send { to, .. }| to).collect();
        assert_eq!(
            dests,
            vec![
                NodeId::Proxy(ProxyId::new(1)),
                NodeId::Proxy(ProxyId::new(2))
            ]
        );
        assert!(sink.is_empty());
        sink.send(ProxyId::new(3), req);
        assert_eq!(sink.as_slice().len(), 1);
        sink.clear();
        assert!(sink.pop().is_none());
    }
}
