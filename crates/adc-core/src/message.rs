//! Request and reply messages exchanged between clients, proxies and the
//! origin server.

use crate::ids::{ClientId, NodeId, ObjectId, ProxyId, RequestId};
use serde::{Deserialize, Serialize};

/// Who ultimately produced the object data for a request.
///
/// Set once by the resolving node and never rewritten (unlike the
/// [`Reply::resolver`] field, which proxies on the backwarding path *do*
/// rewrite as part of the agreement protocol). Metrics use this to count
/// hits: a request served from any proxy cache is a hit, one served by the
/// origin server is a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedFrom {
    /// The origin server resolved the request (miss).
    Origin,
    /// A proxy served the object from its local cache (hit).
    Cache(ProxyId),
}

impl ServedFrom {
    /// Returns `true` when the request was a proxy-cache hit.
    pub fn is_hit(self) -> bool {
        matches!(self, ServedFrom::Cache(_))
    }
}

/// A request for an object, travelling client → proxy → … → resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Globally unique request ID (client address + counter).
    pub id: RequestId,
    /// The requested object.
    pub object: ObjectId,
    /// The client that issued the request.
    pub client: ClientId,
    /// The node that sent this message on its current hop (rewritten by
    /// each forwarder, the paper's `Request.setSender(this)`).
    pub sender: NodeId,
    /// Number of proxy forwardings so far (`Request.isMaxHops()`).
    pub hops: u32,
}

impl Request {
    /// Creates the initial request as a client would emit it.
    pub fn new(id: RequestId, object: ObjectId, client: ClientId) -> Self {
        Request {
            id,
            object,
            client,
            sender: NodeId::Client(client),
            hops: 0,
        }
    }
}

/// A reply carrying the resolved object back along the forwarding path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reply {
    /// The request this reply answers.
    pub id: RequestId,
    /// The resolved object.
    pub object: ObjectId,
    /// The client the reply is ultimately destined for.
    pub client: ClientId,
    /// The proxy all backwarding proxies should agree on as the object's
    /// location. `None` means the data came straight from the origin
    /// server and no proxy has claimed it yet (the paper's "a NULL value
    /// stays for the data from the origin server").
    pub resolver: Option<ProxyId>,
    /// The proxy that holds (or just stored) a cached copy, if any — the
    /// paper's `reply.notCached()` test. Only one proxy per reply path may
    /// claim this.
    pub cached_by: Option<ProxyId>,
    /// Who actually produced the data (immutable; used for hit/miss
    /// accounting).
    pub served_from: ServedFrom,
    /// Size of the object in bytes (workload-assigned; informational in
    /// the simulator, real payload length in the TCP runtime).
    pub size: u32,
}

impl Reply {
    /// Builds the reply the origin server sends: resolver unset, marked as
    /// served by the origin.
    pub fn from_origin(req: &Request, size: u32) -> Self {
        Reply {
            id: req.id,
            object: req.object,
            client: req.client,
            resolver: None,
            cached_by: None,
            served_from: ServedFrom::Origin,
            size,
        }
    }

    /// Builds the reply a proxy sends when it serves `req` from its local
    /// cache: it is both the resolver and the caching location.
    pub fn from_cache(req: &Request, proxy: ProxyId, size: u32) -> Self {
        Reply {
            id: req.id,
            object: req.object,
            client: req.client,
            resolver: Some(proxy),
            cached_by: Some(proxy),
            served_from: ServedFrom::Cache(proxy),
            size,
        }
    }
}

/// Any message on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// A request travelling toward a resolver.
    Request(Request),
    /// A reply travelling back toward the client.
    Reply(Reply),
}

impl Message {
    /// The request ID this message belongs to.
    pub fn request_id(&self) -> RequestId {
        match self {
            Message::Request(r) => r.id,
            Message::Reply(r) => r.id,
        }
    }

    /// The object this message concerns.
    pub fn object(&self) -> ObjectId {
        match self {
            Message::Request(r) => r.object,
            Message::Reply(r) => r.object,
        }
    }
}

impl From<Request> for Message {
    fn from(r: Request) -> Self {
        Message::Request(r)
    }
}

impl From<Reply> for Message {
    fn from(r: Reply) -> Self {
        Message::Reply(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Request {
        Request::new(
            RequestId::new(ClientId::new(1), 7),
            ObjectId::new(42),
            ClientId::new(1),
        )
    }

    #[test]
    fn new_request_starts_at_client() {
        let r = request();
        assert_eq!(r.sender, NodeId::Client(ClientId::new(1)));
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn origin_reply_has_no_resolver() {
        let rep = Reply::from_origin(&request(), 1024);
        assert!(rep.resolver.is_none());
        assert!(rep.cached_by.is_none());
        assert!(!rep.served_from.is_hit());
    }

    #[test]
    fn cache_reply_is_a_hit() {
        let p = ProxyId::new(3);
        let rep = Reply::from_cache(&request(), p, 1024);
        assert_eq!(rep.resolver, Some(p));
        assert_eq!(rep.cached_by, Some(p));
        assert!(rep.served_from.is_hit());
    }

    #[test]
    fn message_accessors() {
        let req = request();
        let m: Message = req.into();
        assert_eq!(m.request_id(), req.id);
        assert_eq!(m.object(), req.object);
        let m: Message = Reply::from_origin(&req, 1).into();
        assert_eq!(m.request_id(), req.id);
    }
}
