//! # adc-core — Adaptive Distributed Caching
//!
//! Core implementation of the ADC algorithm from *"A Study of the
//! Performance and Parameter Sensitivity of Adaptive Distributed Caching"*
//! (Kaiser, Tsui, Liu — ICDCS 2003): a self-organizing distributed
//! proxy-cache scheme in which every proxy learns, purely from local
//! observations, which peer is responsible for each object — no central
//! coordinator, no broadcasts.
//!
//! The four mechanisms (§III of the paper):
//!
//! 1. **Request forwarding & looping** — misses are forwarded to the
//!    learned location or a random peer; loops and hop-limit hits
//!    terminate at the origin server.
//! 2. **Multicasting by backwarding** — replies retrace the forwarding
//!    path and carry the resolver's address, so whole groups of proxies
//!    agree on one location per object for free.
//! 3. **Mapping tables** — bounded single- (LRU), multiple- and caching
//!    tables ordered by average inter-request time.
//! 4. **Selective caching with aging** — only objects whose request
//!    frequency beats the current cache's worst entry are stored; the
//!    aging rule `(avg + (now − last)) / 2` lets stale entries decay.
//!
//! The agent is **sans-IO**: it consumes messages and returns actions, so
//! the same code runs under the deterministic discrete-event simulator
//! (`adc-sim`) and the tokio TCP runtime (`adc-net`).
//!
//! # Examples
//!
//! Build a proxy, miss on an object, resolve it via the origin and watch
//! the proxy learn the mapping:
//!
//! ```
//! use adc_core::{
//!     Action, AdcConfig, AdcProxy, CacheAgent, ClientId, Location, Message, NodeId,
//!     ObjectId, ProxyId, Reply, Request, RequestId,
//! };
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut proxy = AdcProxy::new(ProxyId::new(0), 1, AdcConfig::default());
//! let mut rng = StdRng::seed_from_u64(1);
//! let client = ClientId::new(0);
//! let request = Request::new(RequestId::new(client, 0), ObjectId::new(7), client);
//!
//! // Miss: the proxy forwards the request (here: to itself or the origin).
//! let Action::Send { message, .. } = proxy.request_action(request, &mut rng);
//! let forwarded = match message {
//!     Message::Request(r) => r,
//!     _ => unreachable!(),
//! };
//!
//! // The origin resolves it; the reply backtracks through the proxy.
//! let reply = Reply::from_origin(&forwarded, 1024);
//! proxy.reply_action(reply);
//!
//! // The proxy has learned that it is responsible for object 7.
//! let entry = proxy.tables().lookup(ObjectId::new(7)).unwrap();
//! assert_eq!(entry.location, Location::This);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agent;
mod config;
mod entry;
mod error;
mod ids;
mod message;
mod proxy;
mod snapshot;
mod stats;
pub mod tables;
mod unlimited;

pub use agent::{Action, ActionSink, CacheAgent, CacheEvent};
pub use config::{AdcConfig, AdcConfigBuilder, AgingMode, CachePolicy};
pub use entry::{TableEntry, Tick};
pub use error::ConfigError;
pub use ids::{ClientId, Location, NodeId, ObjectId, ProxyId, RequestId};
pub use message::{Message, Reply, Request, ServedFrom};
pub use proxy::{AdcProxy, DEFAULT_OBJECT_SIZE};
pub use snapshot::{ProxySnapshot, SnapshotError};
pub use stats::ProxyStats;
pub use unlimited::UnlimitedAdcProxy;

// Observability vocabulary, re-exported so agent implementors and
// runtimes need only depend on `adc-core`.
pub use adc_obs::{CountingProbe, EventKind, EventLog, NullProbe, Probe, SimEvent, TableLevel};
