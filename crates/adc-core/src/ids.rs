//! Identifier newtypes used throughout the ADC system.
//!
//! The paper identifies objects by URL and requests by "the client's IP
//! address and an internal request counter". We keep the same structure but
//! use compact integer newtypes; [`ObjectId::from_url`] provides the
//! URL-to-ID mapping (the paper's future-work note about hashing URLs with
//! MD5 to save memory — we use a 64-bit FNV-1a which serves the same
//! purpose in a simulation).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cacheable object (the paper's `OBJ-ID`, i.e. a URL).
///
/// # Examples
///
/// ```
/// use adc_core::ObjectId;
///
/// let a = ObjectId::from_url("http://example.com/index.html");
/// let b = ObjectId::from_url("http://example.com/index.html");
/// assert_eq!(a, b);
/// assert_ne!(a, ObjectId::from_url("http://example.com/other.html"));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Creates an object ID directly from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// Derives an object ID from a URL string via 64-bit FNV-1a.
    ///
    /// Deterministic across runs and platforms.
    pub fn from_url(url: &str) -> Self {
        ObjectId(fnv1a_64(url.as_bytes()))
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(raw: u64) -> Self {
        ObjectId(raw)
    }
}

/// 64-bit FNV-1a hash; small, allocation-free and stable.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// One proxy agent in the cooperative proxy set.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProxyId(pub u32);

impl ProxyId {
    /// Creates a proxy ID.
    pub const fn new(raw: u32) -> Self {
        ProxyId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ProxyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Proxy[{}]", self.0)
    }
}

/// A requesting client.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Creates a client ID.
    pub const fn new(raw: u32) -> Self {
        ClientId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client:{}", self.0)
    }
}

/// Globally unique request identifier.
///
/// The paper: "Each request comes with a global unique ID (usually based on
/// the clients IP address and an internal request counter), which is used to
/// give each proxy the option to identify forwarding loops."
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId {
    /// The client that issued the request.
    pub client: ClientId,
    /// The client's own monotone request counter.
    pub seq: u64,
}

impl RequestId {
    /// Creates a request ID from a client and its request counter.
    pub const fn new(client: ClientId, seq: u64) -> Self {
        RequestId { client, seq }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req:{}:{}", self.client.0, self.seq)
    }
}

/// Any addressable endpoint in the system: a client, a proxy, or the origin
/// server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A requesting client.
    Client(ClientId),
    /// A cooperative proxy.
    Proxy(ProxyId),
    /// The origin server that can always resolve a request.
    Origin,
}

impl NodeId {
    /// Returns the proxy ID if this node is a proxy.
    pub fn as_proxy(self) -> Option<ProxyId> {
        match self {
            NodeId::Proxy(p) => Some(p),
            _ => None,
        }
    }

    /// Returns `true` if this node is the origin server.
    pub fn is_origin(self) -> bool {
        matches!(self, NodeId::Origin)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Client(c) => write!(f, "{c}"),
            NodeId::Proxy(p) => write!(f, "{p}"),
            NodeId::Origin => write!(f, "origin"),
        }
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

impl From<ProxyId> for NodeId {
    fn from(p: ProxyId) -> Self {
        NodeId::Proxy(p)
    }
}

/// The learned location of an object, as stored in a mapping-table entry
/// (the paper's `PROXY` column: either `Proxy[i]` or `THIS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// This proxy is itself responsible for the object (`THIS`).
    This,
    /// A remote peer proxy is responsible.
    Remote(ProxyId),
}

impl Location {
    /// Resolves the location from the point of view of proxy `me`.
    pub fn resolve(self, me: ProxyId) -> ProxyId {
        match self {
            Location::This => me,
            Location::Remote(p) => p,
        }
    }

    /// Normalizes a concrete proxy address into `This`/`Remote` from the
    /// point of view of proxy `me`.
    pub fn from_proxy(proxy: ProxyId, me: ProxyId) -> Self {
        if proxy == me {
            Location::This
        } else {
            Location::Remote(proxy)
        }
    }

    /// Returns `true` for the `THIS` marker.
    pub fn is_this(self) -> bool {
        matches!(self, Location::This)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::This => write!(f, "This"),
            Location::Remote(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_from_url_is_deterministic() {
        let a = ObjectId::from_url("http://www.xy634/");
        let b = ObjectId::from_url("http://www.xy634/");
        assert_eq!(a, b);
    }

    #[test]
    fn object_id_from_url_differs_for_different_urls() {
        assert_ne!(
            ObjectId::from_url("http://www.xy634/"),
            ObjectId::from_url("http://www.xy34/")
        );
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn location_resolution() {
        let me = ProxyId::new(3);
        assert_eq!(Location::This.resolve(me), me);
        assert_eq!(
            Location::Remote(ProxyId::new(7)).resolve(me),
            ProxyId::new(7)
        );
        assert_eq!(Location::from_proxy(me, me), Location::This);
        assert_eq!(
            Location::from_proxy(ProxyId::new(1), me),
            Location::Remote(ProxyId::new(1))
        );
        assert!(Location::This.is_this());
        assert!(!Location::Remote(ProxyId::new(0)).is_this());
    }

    #[test]
    fn node_id_helpers() {
        let p = NodeId::Proxy(ProxyId::new(2));
        assert_eq!(p.as_proxy(), Some(ProxyId::new(2)));
        assert!(!p.is_origin());
        assert!(NodeId::Origin.is_origin());
        assert_eq!(NodeId::Origin.as_proxy(), None);
    }

    #[test]
    fn display_formats_match_paper_style() {
        assert_eq!(ProxyId::new(5).to_string(), "Proxy[5]");
        assert_eq!(Location::This.to_string(), "This");
        assert_eq!(RequestId::new(ClientId::new(9), 4).to_string(), "req:9:4");
    }
}
