//! The paper's *predecessor* algorithm: Unlimited Adaptive Distributed
//! Caching (§II.3, reference [11]).
//!
//! "In our next step we tried to overcome the drawbacks of SOAP ... by a
//! direct mapping of each object onto exactly one location. ... the
//! mapping table that stores the URL mappings needed to be very large to
//! be able to store an entry for every experienced object-ID and we
//! accepted this drawback by letting the table grow indefinitely."
//!
//! [`UnlimitedAdcProxy`] keeps one unbounded mapping table (instead of
//! the bounded single/multiple tables) plus the same selective caching
//! table. It is the natural upper-bound comparison for the bounded
//! three-table design this repository reproduces: the paper's
//! contribution is showing the bounded tables reach the same performance
//! with fixed memory.

use crate::agent::{ActionSink, CacheAgent, CacheEvent};
use crate::entry::{TableEntry, Tick};
use crate::ids::{Location, NodeId, ObjectId, ProxyId, RequestId};
use crate::message::{Reply, Request};
use crate::proxy::DEFAULT_OBJECT_SIZE;
use crate::stats::ProxyStats;
use crate::tables::OrderedTable;
use adc_obs::{Probe, SimEvent, TableLevel};
use rand::Rng;
use rand::RngCore;
// Keyed access only, never iterated: hasher randomization cannot leak
// into simulation order. adc-lint: allow(default-hasher)
use std::collections::HashMap;

/// An ADC proxy with an unbounded mapping table (the paper's earlier
/// design, for comparison).
///
/// # Examples
///
/// ```
/// use adc_core::{CacheAgent, ProxyId, UnlimitedAdcProxy};
///
/// let proxy = UnlimitedAdcProxy::new(ProxyId::new(0), 5, 10_000, 16);
/// assert_eq!(proxy.proxy_id(), ProxyId::new(0));
/// assert_eq!(proxy.mapping_entries(), 0); // grows without bound from here
/// ```
#[derive(Debug)]
pub struct UnlimitedAdcProxy {
    id: ProxyId,
    peers: Vec<ProxyId>,
    max_hops: u32,
    /// The unbounded object → entry map. Keyed access only, never
    /// iterated. adc-lint: allow(default-hasher)
    mapping: HashMap<ObjectId, TableEntry>,
    /// Bounded selective caching table, same as the bounded design.
    cached: OrderedTable,
    /// Keyed access only, never iterated. adc-lint: allow(default-hasher)
    pending: HashMap<RequestId, Vec<NodeId>>,
    local_time: Tick,
    stats: ProxyStats,
    cache_events: Vec<CacheEvent>,
}

impl UnlimitedAdcProxy {
    /// Creates a proxy in a dense deployment of `num_proxies`.
    ///
    /// # Panics
    ///
    /// Panics if `num_proxies` or `cache_capacity` or `max_hops` is zero,
    /// or `id` is out of range.
    pub fn new(id: ProxyId, num_proxies: u32, cache_capacity: usize, max_hops: u32) -> Self {
        assert!(num_proxies > 0, "need at least one proxy");
        assert!(id.raw() < num_proxies, "proxy id out of range");
        assert!(max_hops > 0, "max_hops must be positive");
        UnlimitedAdcProxy {
            id,
            peers: (0..num_proxies).map(ProxyId::new).collect(),
            max_hops,
            // Keyed access only, never iterated: hasher can't leak order.
            mapping: HashMap::new(), // adc-lint: allow(default-hasher, determinism-purity)
            cached: OrderedTable::new(cache_capacity),
            pending: HashMap::new(), // adc-lint: allow(default-hasher, determinism-purity)
            local_time: 0,
            stats: ProxyStats::default(),
            cache_events: Vec::new(),
        }
    }

    /// Current number of mapping entries — the unbounded memory cost the
    /// bounded three-table design exists to avoid.
    pub fn mapping_entries(&self) -> usize {
        self.mapping.len() + self.cached.len()
    }

    /// The proxy's local request-count clock.
    pub fn local_time(&self) -> Tick {
        self.local_time
    }

    /// Number of requests awaiting replies.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn update_entry<P: Probe>(&mut self, object: ObjectId, location: Location, probe: &mut P) {
        let now = self.local_time;
        // Cached entries refresh in place.
        if let Some(mut entry) = self.cached.remove(object) {
            if entry.last != now {
                entry.calc_average(now);
            }
            entry.location = location;
            self.cached.insert(entry);
            return;
        }
        match self.mapping.get_mut(&object) {
            Some(entry) => {
                if entry.last != now {
                    entry.calc_average(now);
                }
                entry.location = location;
                // Selective admission straight from the unbounded map.
                if entry.has_average() && self.cached.admits(entry.average, now, true) {
                    let entry = self
                        .mapping
                        .remove(&object)
                        // Invariant: get_mut above proved membership.
                        // adc-lint: allow(panic)
                        .expect("entry was just borrowed");
                    if self.cached.is_full() {
                        let worst = self
                            .cached
                            .pop_worst()
                            // Invariant: is_full() ⇒ non-empty.
                            // adc-lint: allow(panic)
                            .expect("full caching table has a worst entry");
                        self.stats.cache_evictions += 1;
                        self.cache_events.push(CacheEvent::Evict(worst.object));
                        if P::ENABLED {
                            probe.emit(SimEvent::CacheEvict {
                                proxy: self.id.raw(),
                                object: worst.object.raw(),
                            });
                            probe.emit(SimEvent::TableMigration {
                                proxy: self.id.raw(),
                                object: worst.object.raw(),
                                from: TableLevel::Caching,
                                to: TableLevel::Multiple,
                            });
                        }
                        self.mapping.insert(worst.object, worst);
                    }
                    self.stats.cache_insertions += 1;
                    self.cache_events.push(CacheEvent::Store(object));
                    if P::ENABLED {
                        probe.emit(SimEvent::CacheInsert {
                            proxy: self.id.raw(),
                            object: object.raw(),
                        });
                        // The unbounded map plays the multiple-table's role.
                        probe.emit(SimEvent::TableMigration {
                            proxy: self.id.raw(),
                            object: object.raw(),
                            from: TableLevel::Multiple,
                            to: TableLevel::Caching,
                        });
                    }
                    self.cached.insert(entry);
                }
            }
            None => {
                // Unbounded growth: every new object gets an entry,
                // forever.
                self.mapping
                    .insert(object, TableEntry::new(object, location, now));
            }
        }
    }

    fn lookup_location(&self, object: ObjectId) -> Option<Location> {
        self.cached
            .get(object)
            .map(|e| e.location)
            .or_else(|| self.mapping.get(&object).map(|e| e.location))
    }
}

impl CacheAgent for UnlimitedAdcProxy {
    fn proxy_id(&self) -> ProxyId {
        self.id
    }

    fn on_request<P: Probe>(
        &mut self,
        request: Request,
        rng: &mut dyn RngCore,
        probe: &mut P,
        out: &mut ActionSink,
    ) {
        self.local_time += 1;
        self.stats.requests_received += 1;
        let object = request.object;

        if self.cached.contains(object) {
            self.stats.local_hits += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LocalHit {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            self.update_entry(object, Location::This, probe);
            let reply = Reply::from_cache(&request, self.id, DEFAULT_OBJECT_SIZE);
            out.send(request.sender, reply);
            return;
        }

        let loop_detected = self.pending.contains_key(&request.id);
        self.pending
            .entry(request.id)
            .or_default()
            .push(request.sender);

        let mut forwarded = request;
        forwarded.sender = NodeId::Proxy(self.id);
        forwarded.hops += 1;

        let to = if loop_detected {
            self.stats.origin_loops += 1;
            if P::ENABLED {
                probe.emit(SimEvent::LoopDetected {
                    proxy: self.id.raw(),
                    object: object.raw(),
                });
            }
            NodeId::Origin
        } else if request.hops >= self.max_hops {
            self.stats.origin_max_hops += 1;
            if P::ENABLED {
                probe.emit(SimEvent::HopLimitHit {
                    proxy: self.id.raw(),
                    object: object.raw(),
                    hops: request.hops,
                });
            }
            NodeId::Origin
        } else {
            match self.lookup_location(object) {
                Some(Location::Remote(p)) => {
                    self.stats.forwards_learned += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::ForwardLearned {
                            proxy: self.id.raw(),
                            object: object.raw(),
                            to: p.raw(),
                        });
                    }
                    NodeId::Proxy(p)
                }
                Some(Location::This) => {
                    self.stats.origin_this_miss += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::OriginThisMiss {
                            proxy: self.id.raw(),
                            object: object.raw(),
                        });
                    }
                    NodeId::Origin
                }
                None => {
                    self.stats.forwards_random += 1;
                    let i = rng.gen_range(0..self.peers.len());
                    let to = self.peers[i]; // i < peers.len() by gen_range
                    if P::ENABLED {
                        probe.emit(SimEvent::ForwardRandom {
                            proxy: self.id.raw(),
                            object: object.raw(),
                            to: to.raw(),
                        });
                    }
                    NodeId::Proxy(to)
                }
            }
        };
        out.send(to, forwarded);
    }

    fn on_reply<P: Probe>(&mut self, reply: Reply, probe: &mut P, out: &mut ActionSink) {
        let prev_hop = {
            let stack = match self.pending.get_mut(&reply.id) {
                Some(s) => s,
                None => {
                    self.stats.replies_orphaned += 1;
                    if P::ENABLED {
                        probe.emit(SimEvent::ReplyOrphaned {
                            proxy: self.id.raw(),
                            object: reply.object.raw(),
                        });
                    }
                    return;
                }
            };
            // Invariant: stacks are removed when their last hop pops.
            // adc-lint: allow(panic)
            let hop = stack.pop().expect("pending stacks are never empty");
            if stack.is_empty() {
                self.pending.remove(&reply.id);
            }
            hop
        };
        self.stats.replies_processed += 1;

        let mut reply = reply;
        if reply.resolver.is_none() {
            reply.resolver = Some(self.id);
        }
        // Invariant: set two lines above when None. adc-lint: allow(panic)
        let resolver = reply.resolver.expect("resolver was just set");
        if P::ENABLED && resolver != self.id {
            probe.emit(SimEvent::BackwardAdoption {
                proxy: self.id.raw(),
                object: reply.object.raw(),
                owner: resolver.raw(),
            });
        }
        self.update_entry(reply.object, Location::from_proxy(resolver, self.id), probe);

        if self.cached.contains(reply.object) && reply.cached_by.is_none() {
            reply.resolver = Some(self.id);
            reply.cached_by = Some(self.id);
        }
        out.send(prev_hop, reply);
    }

    fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    fn drain_cache_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.cache_events)
    }

    fn cached_objects(&self) -> usize {
        self.cached.len()
    }

    fn is_cached(&self, object: ObjectId) -> bool {
        self.cached.contains(object)
    }

    fn owner_hint(&self, object: ObjectId) -> Option<ProxyId> {
        self.lookup_location(object).map(|l| l.resolve(self.id))
    }

    fn reset(&mut self) {
        self.mapping.clear();
        self.cached.clear();
        self.pending.clear();
        self.cache_events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Action;
    use crate::ids::ClientId;
    use crate::message::Message;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn req(seq: u64, object: u64) -> Request {
        Request::new(
            RequestId::new(ClientId::new(0), seq),
            ObjectId::new(object),
            ClientId::new(0),
        )
    }

    fn resolve(p: &mut UnlimitedAdcProxy, rng: &mut StdRng, seq: u64, object: u64) {
        let mut inbox = vec![Message::Request(req(seq, object))];
        while let Some(message) = inbox.pop() {
            let action = match message {
                Message::Request(r) => Some(p.request_action(r, rng)),
                Message::Reply(r) => p.reply_action(r),
            };
            if let Some(Action::Send { to, message }) = action {
                match to {
                    NodeId::Proxy(_) => inbox.push(message),
                    NodeId::Origin => {
                        if let Message::Request(f) = message {
                            inbox.push(Message::Reply(Reply::from_origin(&f, 64)));
                        }
                    }
                    NodeId::Client(_) => {}
                }
            }
        }
    }

    #[test]
    fn mapping_grows_without_bound() {
        let mut p = UnlimitedAdcProxy::new(ProxyId::new(0), 1, 4, 8);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            resolve(&mut p, &mut rng, i, i);
        }
        // Every distinct object keeps an entry — no single-table bound.
        assert_eq!(p.mapping_entries(), 100);
        assert!(p.cached_objects() <= 4);
    }

    #[test]
    fn repeated_objects_get_cached() {
        let mut p = UnlimitedAdcProxy::new(ProxyId::new(0), 1, 4, 8);
        let mut rng = StdRng::seed_from_u64(1);
        for seq in 0..4 {
            resolve(&mut p, &mut rng, seq, 42);
        }
        assert!(p.is_cached(ObjectId::new(42)));
        // A later request is a local hit.
        let hits_before = p.stats().local_hits;
        let Action::Send { to, .. } = p.request_action(req(9, 42), &mut rng);
        assert_eq!(to, NodeId::Client(ClientId::new(0)));
        assert_eq!(p.stats().local_hits, hits_before + 1);
        assert_eq!(p.pending_requests(), 0);
    }

    #[test]
    fn cache_displacement_returns_entry_to_mapping() {
        let mut p = UnlimitedAdcProxy::new(ProxyId::new(0), 1, 1, 8);
        let mut rng = StdRng::seed_from_u64(1);
        // Object 1 cached (slow), object 2 much hotter displaces it.
        for seq in [0, 10, 20] {
            resolve(&mut p, &mut rng, seq, 1);
        }
        assert!(p.is_cached(ObjectId::new(1)));
        for seq in [21, 22, 23, 24] {
            resolve(&mut p, &mut rng, seq, 2);
        }
        assert!(p.is_cached(ObjectId::new(2)));
        assert!(!p.is_cached(ObjectId::new(1)));
        // Object 1's entry (and learned location) survives in the map.
        assert!(p.lookup_location(ObjectId::new(1)).is_some());
        assert_eq!(p.stats().cache_evictions, 1);
    }

    #[test]
    fn hits_single_entry_invariant() {
        // No object is ever both cached and in the mapping.
        let mut p = UnlimitedAdcProxy::new(ProxyId::new(0), 1, 2, 8);
        let mut rng = StdRng::seed_from_u64(3);
        for seq in 0..200u64 {
            resolve(&mut p, &mut rng, seq, seq % 7);
        }
        for o in 0..7u64 {
            let in_cache = p.cached.contains(ObjectId::new(o));
            let in_map = p.mapping.contains_key(&ObjectId::new(o));
            assert!(!(in_cache && in_map), "object {o} in both structures");
            assert!(in_cache || in_map, "object {o} lost entirely");
        }
    }
}
