//! Per-proxy counters.

use serde::{Deserialize, Serialize};

/// Counters accumulated by one proxy agent over its lifetime.
///
/// All counters are plain totals; rates and series are derived by the
/// metrics layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Requests received (this is also the proxy's local clock under ADC).
    pub requests_received: u64,
    /// Requests served from the local cache.
    pub local_hits: u64,
    /// Requests forwarded to a peer chosen from the mapping tables.
    pub forwards_learned: u64,
    /// Requests forwarded to a uniformly random peer (no table entry).
    pub forwards_random: u64,
    /// Requests sent to the origin because a forwarding loop was detected.
    pub origin_loops: u64,
    /// Requests sent to the origin because the hop limit was reached.
    pub origin_max_hops: u64,
    /// Requests sent to the origin because the table says this proxy is
    /// responsible (`THIS`) but the object is not in its cache.
    pub origin_this_miss: u64,
    /// Replies processed on the backwarding path.
    pub replies_processed: u64,
    /// Replies that did not match any pending request (duplicates or
    /// injected faults).
    pub replies_orphaned: u64,
    /// Objects admitted into the local cache.
    pub cache_insertions: u64,
    /// Objects evicted from the local cache.
    pub cache_evictions: u64,
}

impl ProxyStats {
    /// Total requests forwarded to the origin server, for any reason.
    pub fn origin_forwards(&self) -> u64 {
        self.origin_loops + self.origin_max_hops + self.origin_this_miss
    }

    /// Total requests forwarded anywhere (peer or origin).
    pub fn forwards(&self) -> u64 {
        self.forwards_learned + self.forwards_random + self.origin_forwards()
    }

    /// Fraction of received requests served locally.
    pub fn local_hit_rate(&self) -> f64 {
        if self.requests_received == 0 {
            0.0
        } else {
            self.local_hits as f64 / self.requests_received as f64
        }
    }

    /// Adds another stats block into this one (for cluster-wide totals).
    pub fn merge(&mut self, other: &ProxyStats) {
        self.requests_received += other.requests_received;
        self.local_hits += other.local_hits;
        self.forwards_learned += other.forwards_learned;
        self.forwards_random += other.forwards_random;
        self.origin_loops += other.origin_loops;
        self.origin_max_hops += other.origin_max_hops;
        self.origin_this_miss += other.origin_this_miss;
        self.replies_processed += other.replies_processed;
        self.replies_orphaned += other.replies_orphaned;
        self.cache_insertions += other.cache_insertions;
        self.cache_evictions += other.cache_evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_totals() {
        let s = ProxyStats {
            requests_received: 10,
            local_hits: 4,
            forwards_learned: 3,
            forwards_random: 1,
            origin_loops: 1,
            origin_max_hops: 0,
            origin_this_miss: 1,
            ..Default::default()
        };
        assert_eq!(s.origin_forwards(), 2);
        assert_eq!(s.forwards(), 6);
        assert!((s.local_hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(ProxyStats::default().local_hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ProxyStats {
            requests_received: 1,
            local_hits: 1,
            ..Default::default()
        };
        let b = ProxyStats {
            requests_received: 2,
            cache_insertions: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.requests_received, 3);
        assert_eq!(a.local_hits, 1);
        assert_eq!(a.cache_insertions, 5);
    }
}
