//! The ordered table underlying the paper's multiple-table and caching
//! table.
//!
//! Both tables are "always ordered in ascending order of the fourth column
//! (average request time). This order allows the simple identification of
//! the object with the worst average time and quick insertions/deletions
//! based using binary search." We use a `BTreeMap` keyed by
//! `(average, sequence)` which gives the same O(log n) ordered operations;
//! the sequence number makes ties deterministic (older insertion wins).

use crate::entry::{TableEntry, Tick};
use crate::ids::ObjectId;
// The object index is keyed-only (never iterated); ordering comes from
// the BTreeMap, so the randomized hasher cannot leak into results.
use std::collections::{BTreeMap, HashMap}; // adc-lint: allow(default-hasher)

/// Sort key: ascending stored average, FIFO among equals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OrderKey {
    average: Tick,
    seq: u64,
}

/// A bounded table of [`TableEntry`] rows kept in ascending order of the
/// stored average inter-request time (best first, worst last).
///
/// # Examples
///
/// ```
/// use adc_core::tables::OrderedTable;
/// use adc_core::{Location, ObjectId, TableEntry};
///
/// let mut t = OrderedTable::new(2);
/// let mut fast = TableEntry::new(ObjectId::new(1), Location::This, 0);
/// fast.average = 10;
/// let mut slow = TableEntry::new(ObjectId::new(2), Location::This, 0);
/// slow.average = 500;
/// t.insert(fast);
/// t.insert(slow);
/// assert_eq!(t.worst().unwrap().object, ObjectId::new(2));
/// ```
#[derive(Debug, Clone)]
pub struct OrderedTable {
    capacity: usize,
    by_object: HashMap<ObjectId, OrderKey>, // adc-lint: allow(default-hasher)
    by_order: BTreeMap<OrderKey, TableEntry>,
    next_seq: u64,
}

impl OrderedTable {
    /// Creates an empty table bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ordered table capacity must be positive");
        OrderedTable {
            capacity,
            // Keyed access only; iteration goes through `by_order`.
            by_object: HashMap::with_capacity(capacity.min(1 << 20)), // adc-lint: allow(default-hasher, determinism-purity)
            by_order: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// The configured maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.by_object.len()
    }

    /// Returns `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.by_object.is_empty()
    }

    /// Returns `true` when the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Returns `true` if `object` has an entry.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.by_object.contains_key(&object)
    }

    /// Borrows the entry for `object`, if present.
    pub fn get(&self, object: ObjectId) -> Option<&TableEntry> {
        let key = self.by_object.get(&object)?;
        self.by_order.get(key)
    }

    /// Removes and returns the entry for `object` (the paper's
    /// `RemoveEntry`).
    pub fn remove(&mut self, object: ObjectId) -> Option<TableEntry> {
        let key = self.by_object.remove(&object)?;
        let entry = self.by_order.remove(&key);
        self.debug_check();
        entry
    }

    /// Inserts `entry` at its ordered position (the paper's
    /// `InsertOrdered`).
    ///
    /// The caller is expected to have made room first (the `Update_Entry`
    /// procedure always removes the displaced worst entry before
    /// inserting); if the table is already full the worst entry is evicted
    /// and returned so the invariant `len <= capacity` can never break.
    pub fn insert(&mut self, entry: TableEntry) -> Option<TableEntry> {
        debug_assert!(
            !self.by_object.contains_key(&entry.object),
            "insert of an object already present; remove it first"
        );
        let evicted = if self.is_full() {
            self.pop_worst()
        } else {
            None
        };
        let key = OrderKey {
            average: entry.average,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.by_object.insert(entry.object, key);
        self.by_order.insert(key, entry);
        self.debug_check();
        evicted
    }

    /// Borrows the entry with the worst (largest) average, i.e. the last
    /// row of the paper's tables.
    pub fn worst(&self) -> Option<&TableEntry> {
        self.by_order.values().next_back()
    }

    /// Borrows the entry with the best (smallest) average.
    pub fn best(&self) -> Option<&TableEntry> {
        self.by_order.values().next()
    }

    /// Removes and returns the worst entry (the paper's
    /// `RemoveLastEntry`).
    pub fn pop_worst(&mut self) -> Option<TableEntry> {
        let (&key, _) = self.by_order.iter().next_back()?;
        let entry = self.by_order.remove(&key)?;
        self.by_object.remove(&entry.object);
        Some(entry)
    }

    /// The stored average of the worst entry; `None` when the table still
    /// has room (in which case any candidate is admitted).
    pub fn worst_average(&self) -> Option<Tick> {
        if self.is_full() {
            self.worst().map(|e| e.average)
        } else {
            None
        }
    }

    /// The *aged* average of the worst entry (Figure 4 of the paper),
    /// `None` when the table still has room.
    pub fn worst_aged_average(&self, now: Tick) -> Option<Tick> {
        if self.is_full() {
            self.worst().map(|e| e.aged_average(now))
        } else {
            None
        }
    }

    /// Decides whether a candidate with stored average `average` may enter
    /// the table at time `now`.
    ///
    /// Admission is automatic while the table has room; once full, the
    /// candidate "[has] to have a lower average value than the worst case
    /// currently residing in the table". With `aged == true` the worst
    /// entry's threshold is its aged average.
    pub fn admits(&self, average: Tick, now: Tick, aged: bool) -> bool {
        let threshold = if aged {
            self.worst_aged_average(now)
        } else {
            self.worst_average()
        };
        match threshold {
            None => true,
            Some(worst) => average < worst,
        }
    }

    /// Iterates entries best-to-worst.
    pub fn iter(&self) -> impl Iterator<Item = &TableEntry> {
        self.by_order.values()
    }

    /// Debug-build invariants: both views agree, the capacity bound
    /// holds, and the order index really is ascending (best <= worst,
    /// FIFO among equal averages by sequence).
    #[inline]
    fn debug_check(&self) {
        debug_assert_eq!(
            self.by_object.len(),
            self.by_order.len(),
            "object index and order index must stay in sync"
        );
        debug_assert!(
            self.by_order.len() <= self.capacity,
            "ordered table exceeded its capacity bound"
        );
        debug_assert!(
            self.best()
                .zip(self.worst())
                .is_none_or(|(b, w)| b.average <= w.average),
            "ordered table lost ascending-average order"
        );
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.by_object.clear();
        self.by_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Location;

    fn entry(id: u64, average: Tick, last: Tick) -> TableEntry {
        let mut e = TableEntry::new(ObjectId::new(id), Location::This, last);
        e.average = average;
        e.hits = 2;
        e
    }

    #[test]
    fn keeps_ascending_order() {
        let mut t = OrderedTable::new(10);
        t.insert(entry(1, 300, 0));
        t.insert(entry(2, 100, 0));
        t.insert(entry(3, 200, 0));
        let avgs: Vec<Tick> = t.iter().map(|e| e.average).collect();
        assert_eq!(avgs, vec![100, 200, 300]);
        assert_eq!(t.best().unwrap().object, ObjectId::new(2));
        assert_eq!(t.worst().unwrap().object, ObjectId::new(1));
    }

    #[test]
    fn ties_resolve_fifo() {
        let mut t = OrderedTable::new(10);
        t.insert(entry(1, 100, 0));
        t.insert(entry(2, 100, 0));
        // Entry 2 arrived later, so it is "worse" among equals.
        assert_eq!(t.worst().unwrap().object, ObjectId::new(2));
    }

    #[test]
    fn admits_everything_until_full() {
        let mut t = OrderedTable::new(2);
        assert!(t.admits(u64::MAX, 0, false));
        t.insert(entry(1, 10, 0));
        assert!(t.admits(u64::MAX, 0, false));
        t.insert(entry(2, 20, 0));
        assert!(!t.admits(20, 0, false));
        assert!(t.admits(19, 0, false));
    }

    #[test]
    fn aged_admission_lets_candidates_beat_stale_worst() {
        let mut t = OrderedTable::new(1);
        // Worst entry: avg 100, last seen at t=0.
        t.insert(entry(1, 100, 0));
        // Plain admission: candidate with avg 150 rejected.
        assert!(!t.admits(150, 1000, false));
        // Aged: worst aged avg = (100 + 1000) / 2 = 550, so 150 enters.
        assert!(t.admits(150, 1000, true));
    }

    #[test]
    fn insert_when_full_evicts_worst() {
        let mut t = OrderedTable::new(2);
        t.insert(entry(1, 10, 0));
        t.insert(entry(2, 500, 0));
        let evicted = t.insert(entry(3, 100, 0)).expect("eviction");
        assert_eq!(evicted.object, ObjectId::new(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.worst().unwrap().object, ObjectId::new(3));
    }

    #[test]
    fn remove_then_reinsert_reorders() {
        let mut t = OrderedTable::new(10);
        t.insert(entry(1, 100, 0));
        t.insert(entry(2, 200, 0));
        let mut e = t.remove(ObjectId::new(2)).unwrap();
        e.average = 50;
        t.insert(e);
        assert_eq!(t.best().unwrap().object, ObjectId::new(2));
    }

    #[test]
    fn pop_worst_empties_table() {
        let mut t = OrderedTable::new(4);
        for i in 0..4 {
            t.insert(entry(i, i * 10, 0));
        }
        let mut seen = Vec::new();
        while let Some(e) = t.pop_worst() {
            seen.push(e.average);
        }
        assert_eq!(seen, vec![30, 20, 10, 0]);
        assert!(t.is_empty());
        assert_eq!(t.worst_average(), None);
    }

    #[test]
    fn worst_average_none_until_full() {
        let mut t = OrderedTable::new(2);
        t.insert(entry(1, 10, 0));
        assert_eq!(t.worst_average(), None);
        t.insert(entry(2, 20, 0));
        assert_eq!(t.worst_average(), Some(20));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = OrderedTable::new(0);
    }

    #[test]
    fn get_and_contains() {
        let mut t = OrderedTable::new(2);
        t.insert(entry(7, 10, 0));
        assert!(t.contains(ObjectId::new(7)));
        assert_eq!(t.get(ObjectId::new(7)).unwrap().average, 10);
        assert!(!t.contains(ObjectId::new(8)));
        assert!(t.get(ObjectId::new(8)).is_none());
    }
}
