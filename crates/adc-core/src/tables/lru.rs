//! An order-preserving key/value list with O(1) front insertion, arbitrary
//! removal and back eviction — the primitive underneath the paper's
//! single-table ("the well-known LRU algorithm") and the baseline LRU
//! caches.
//!
//! Implemented as a slab of doubly linked nodes plus a hash index, so no
//! per-operation allocation occurs once the slab has grown.

// Slab + hash-index design: every slot index stored in `index`, `head`,
// `tail`, `prev` or `next` refers to a live `nodes` slot by construction
// (links are rewired before a slot moves to the free list), so per-site
// bounds comments would repeat one global invariant.
// adc-lint: allow-file(index-comment)
//
// The hash index is keyed-only — iteration always follows the intrusive
// links, never the map — so the randomized hasher cannot leak into any
// observable order. The generic `K: Hash` bound rules out a BTreeMap.
// That same invariant keeps the hot-path call chains pure even though
// the constructors are reachable from the simulation loop.
// adc-lint: allow-file(default-hasher, determinism-purity)

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    // `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// Doubly linked LRU list with a hash index.
///
/// The front of the list is the most recently inserted/refreshed element;
/// the back is the least recent one.
///
/// # Examples
///
/// ```
/// use adc_core::tables::LruList;
///
/// let mut lru = LruList::new();
/// lru.push_front("a", 1);
/// lru.push_front("b", 2);
/// assert_eq!(lru.pop_back(), Some(("a", 1)));
/// assert_eq!(lru.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LruList<K, V> {
    index: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> Default for LruList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> LruList<K, V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LruList {
            index: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates an empty list with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        LruList {
            index: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of elements currently stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when the list holds no elements.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Borrows the value for `key` without changing its position.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.index
            .get(key)
            .and_then(|&i| self.nodes[i].value.as_ref())
    }

    /// Mutably borrows the value for `key` without changing its position.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = *self.index.get(key)?;
        self.nodes[i].value.as_mut()
    }

    /// Borrows the value for `key` and moves the element to the front.
    pub fn get_refresh(&mut self, key: &K) -> Option<&V> {
        let i = *self.index.get(key)?;
        self.unlink(i);
        self.link_front(i);
        self.nodes[i].value.as_ref()
    }

    /// Inserts a key/value pair at the front.
    ///
    /// If `key` was already present its value is replaced, the element
    /// moves to the front and the old value is returned.
    pub fn push_front(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&i) = self.index.get(&key) {
            let old = self.nodes[i].value.replace(value);
            self.unlink(i);
            self.link_front(i);
            return old;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.link_front(slot);
        None
    }

    /// Removes and returns the value stored under `key`, if any.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.index.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        self.nodes[i].value.take()
    }

    /// Removes and returns the least recently inserted/refreshed element.
    pub fn pop_back(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let key = self.nodes[self.tail].key.clone();
        let value = self.remove(&key)?;
        Some((key, value))
    }

    /// Borrows the element at the back (least recent) of the list.
    pub fn back(&self) -> Option<(&K, &V)> {
        if self.tail == NIL {
            return None;
        }
        let n = &self.nodes[self.tail];
        // Invariant: `value` is None only for free-list slots, and linked
        // traversal never reaches a free slot. adc-lint: allow(panic)
        Some((&n.key, n.value.as_ref().expect("linked node has a value")))
    }

    /// Borrows the element at the front (most recent) of the list.
    pub fn front(&self) -> Option<(&K, &V)> {
        if self.head == NIL {
            return None;
        }
        let n = &self.nodes[self.head];
        // Invariant: `value` is None only for free-list slots, and linked
        // traversal never reaches a free slot. adc-lint: allow(panic)
        Some((&n.key, n.value.as_ref().expect("linked node has a value")))
    }

    /// Iterates front-to-back (most recent first).
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            list: self,
            cursor: self.head,
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.index.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[i].prev = NIL;
        self.nodes[i].next = NIL;
    }

    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// Front-to-back iterator over an [`LruList`]; see [`LruList::iter`].
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    list: &'a LruList<K, V>,
    cursor: usize,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let n = &self.list.nodes[self.cursor];
        self.cursor = n.next;
        // Invariant: `value` is None only for free-list slots, and linked
        // traversal never reaches a free slot. adc-lint: allow(panic)
        Some((&n.key, n.value.as_ref().expect("linked node has a value")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pop_order() {
        let mut l = LruList::new();
        l.push_front(1, "a");
        l.push_front(2, "b");
        l.push_front(3, "c");
        assert_eq!(l.pop_back(), Some((1, "a")));
        assert_eq!(l.pop_back(), Some((2, "b")));
        assert_eq!(l.pop_back(), Some((3, "c")));
        assert_eq!(l.pop_back(), None);
    }

    #[test]
    fn push_existing_replaces_and_refreshes() {
        let mut l = LruList::new();
        l.push_front(1, "a");
        l.push_front(2, "b");
        assert_eq!(l.push_front(1, "a2"), Some("a"));
        assert_eq!(l.len(), 2);
        // 1 is now most recent, so 2 is evicted first.
        assert_eq!(l.pop_back(), Some((2, "b")));
    }

    #[test]
    fn remove_middle_keeps_links_consistent() {
        let mut l = LruList::new();
        for i in 0..5 {
            l.push_front(i, i * 10);
        }
        assert_eq!(l.remove(&2), Some(20));
        assert_eq!(l.len(), 4);
        let order: Vec<i32> = l.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![4, 3, 1, 0]);
        assert_eq!(l.pop_back(), Some((0, 0)));
        assert_eq!(l.pop_back(), Some((1, 10)));
    }

    #[test]
    fn get_refresh_moves_to_front() {
        let mut l = LruList::new();
        l.push_front(1, "a");
        l.push_front(2, "b");
        assert_eq!(l.get_refresh(&1), Some(&"a"));
        assert_eq!(l.pop_back(), Some((2, "b")));
    }

    #[test]
    fn peek_does_not_reorder() {
        let mut l = LruList::new();
        l.push_front(1, "a");
        l.push_front(2, "b");
        assert_eq!(l.peek(&1), Some(&"a"));
        assert_eq!(l.pop_back(), Some((1, "a")));
    }

    #[test]
    fn slots_are_reused() {
        let mut l = LruList::new();
        for i in 0..100 {
            l.push_front(i, i);
            if i % 2 == 0 {
                l.pop_back();
            }
        }
        assert!(l.nodes.len() <= 100);
    }

    #[test]
    fn front_back_accessors() {
        let mut l = LruList::new();
        assert!(l.front().is_none());
        assert!(l.back().is_none());
        l.push_front(1, "a");
        l.push_front(2, "b");
        assert_eq!(l.front(), Some((&2, &"b")));
        assert_eq!(l.back(), Some((&1, &"a")));
    }

    #[test]
    fn clear_empties() {
        let mut l = LruList::new();
        l.push_front(1, "a");
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.pop_back(), None);
    }

    #[test]
    fn peek_mut_updates_in_place() {
        let mut l = LruList::new();
        l.push_front(1, 10);
        *l.peek_mut(&1).unwrap() = 99;
        assert_eq!(l.peek(&1), Some(&99));
    }

    #[test]
    fn string_values_do_not_double_free() {
        // Exercises the remove() move-out path with a Drop type.
        let mut l = LruList::new();
        for i in 0..50u32 {
            l.push_front(i, format!("value-{i}"));
        }
        for i in (0..50u32).step_by(2) {
            assert_eq!(l.remove(&i), Some(format!("value-{i}")));
        }
        for i in 0..25u32 {
            l.push_front(100 + i, format!("re-{i}"));
        }
        while l.pop_back().is_some() {}
        assert!(l.is_empty());
    }
}
