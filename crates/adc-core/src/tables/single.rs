//! The paper's single-table (§III.3.1, Figure 1).
//!
//! "Each unknown object will receive a new entry on the top of the table,
//! displacing the oldest entry at the bottom of the table — the well-known
//! LRU algorithm." Entries that receive a second hit graduate to the
//! multiple-table; entries pushed out at the bottom are forgotten.

use crate::entry::TableEntry;
use crate::ids::ObjectId;
use crate::tables::lru::LruList;

/// Bounded LRU table of first-seen objects.
///
/// # Examples
///
/// ```
/// use adc_core::tables::SingleTable;
/// use adc_core::{Location, ObjectId, TableEntry};
///
/// let mut t = SingleTable::new(2);
/// t.push_top(TableEntry::new(ObjectId::new(1), Location::This, 0));
/// t.push_top(TableEntry::new(ObjectId::new(2), Location::This, 1));
/// // Table full: inserting a third entry drops the oldest (object 1).
/// let dropped = t.push_top(TableEntry::new(ObjectId::new(3), Location::This, 2));
/// assert_eq!(dropped.unwrap().object, ObjectId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct SingleTable {
    capacity: usize,
    list: LruList<ObjectId, TableEntry>,
}

impl SingleTable {
    /// Creates an empty single-table bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "single-table capacity must be positive");
        SingleTable {
            capacity,
            list: LruList::with_capacity(capacity.min(1 << 20)),
        }
    }

    /// The configured maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Returns `true` when the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Returns `true` if `object` has an entry.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.list.contains(&object)
    }

    /// Borrows the entry for `object` without touching LRU order.
    pub fn get(&self, object: ObjectId) -> Option<&TableEntry> {
        self.list.peek(&object)
    }

    /// Removes and returns the entry for `object` (the paper's
    /// `RemoveEntry`).
    pub fn remove(&mut self, object: ObjectId) -> Option<TableEntry> {
        self.list.remove(&object)
    }

    /// Places `entry` on top of the table (the paper's `InsertOnTop`),
    /// dropping and returning the bottom entry if the table was full.
    pub fn push_top(&mut self, entry: TableEntry) -> Option<TableEntry> {
        debug_assert!(
            !self.list.contains(&entry.object),
            "push_top of an object already present; remove it first"
        );
        let dropped = if self.is_full() {
            self.pop_bottom()
        } else {
            None
        };
        self.list.push_front(entry.object, entry);
        dropped
    }

    /// Removes and returns the oldest entry (the paper's
    /// `RemoveLastElement`).
    pub fn pop_bottom(&mut self) -> Option<TableEntry> {
        self.list.pop_back().map(|(_, e)| e)
    }

    /// Iterates entries newest-to-oldest.
    pub fn iter(&self) -> impl Iterator<Item = &TableEntry> {
        self.list.iter().map(|(_, e)| e)
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.list.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Location;

    fn entry(id: u64, now: u64) -> TableEntry {
        TableEntry::new(ObjectId::new(id), Location::This, now)
    }

    #[test]
    fn lru_displacement_at_capacity() {
        let mut t = SingleTable::new(3);
        assert!(t.push_top(entry(1, 0)).is_none());
        assert!(t.push_top(entry(2, 1)).is_none());
        assert!(t.push_top(entry(3, 2)).is_none());
        assert!(t.is_full());
        let dropped = t.push_top(entry(4, 3)).expect("bottom drops");
        assert_eq!(dropped.object, ObjectId::new(1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn removal_makes_room() {
        let mut t = SingleTable::new(2);
        t.push_top(entry(1, 0));
        t.push_top(entry(2, 1));
        let e = t.remove(ObjectId::new(1)).unwrap();
        assert_eq!(e.object, ObjectId::new(1));
        assert!(t.push_top(entry(3, 2)).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_is_newest_first() {
        let mut t = SingleTable::new(5);
        for i in 0..5 {
            t.push_top(entry(i, i));
        }
        let order: Vec<u64> = t.iter().map(|e| e.object.raw()).collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn reinserted_demotion_goes_on_top() {
        // When the multiple-table displaces an entry back into the
        // single-table it goes on top, like any other insertion.
        let mut t = SingleTable::new(2);
        t.push_top(entry(1, 0));
        t.push_top(entry(2, 1));
        t.push_top(entry(3, 2)); // drops 1
        let order: Vec<u64> = t.iter().map(|e| e.object.raw()).collect();
        assert_eq!(order, vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SingleTable::new(0);
    }

    #[test]
    fn get_does_not_reorder() {
        let mut t = SingleTable::new(2);
        t.push_top(entry(1, 0));
        t.push_top(entry(2, 1));
        assert_eq!(t.get(ObjectId::new(1)).unwrap().object, ObjectId::new(1));
        // Object 1 is still oldest.
        let dropped = t.push_top(entry(3, 2)).unwrap();
        assert_eq!(dropped.object, ObjectId::new(1));
    }
}
