//! The three-table mapping structure and the paper's `Update_Entry`
//! procedure (Figure 8).
//!
//! Objects migrate single-table → multiple-table → caching table as their
//! measured request frequency improves, and fall back down when displaced.
//! An object lives in **at most one** of the three tables at any time.

use crate::config::AgingMode;
use crate::entry::{TableEntry, Tick};
use crate::ids::{Location, ObjectId};
use crate::tables::ordered::OrderedTable;
use crate::tables::single::SingleTable;
use serde::{Deserialize, Serialize};

/// Which table an `Update_Entry` call found (or created) the entry in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableHit {
    /// Part 1: the object was in the caching table.
    Cached,
    /// Part 2: the object was in the multiple-table.
    Multiple,
    /// Part 3: the object was in the single-table.
    Single,
    /// Part 4: the object was unknown; a fresh entry was created.
    New,
}

/// Side effects of one `Update_Entry` call that the proxy must mirror in
/// its actual object store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Where the entry was found.
    pub found_in: TableHit,
    /// The object was promoted into the caching table, so its data should
    /// now be stored locally.
    pub admitted_to_cache: bool,
    /// This object was displaced from the caching table (back into the
    /// multiple-table); its data must be evicted from the store.
    pub evicted_from_cache: Option<ObjectId>,
    /// The object was promoted from the single-table into the
    /// multiple-table (it proved a measurable inter-request average).
    pub promoted_to_multiple: bool,
    /// This object was displaced from the multiple-table back onto the
    /// top of the single-table to make room for a promotion.
    pub demoted_to_single: Option<ObjectId>,
    /// This object fell off the bottom of the single-table and is
    /// forgotten entirely.
    pub forgotten: Option<ObjectId>,
}

/// Whether the structure runs the full selective-caching scheme or only
/// the mapping part (used by the LRU-caching ablation, where the actual
/// store is managed outside).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Selective,
    MappingOnly,
}

/// The per-proxy mapping structure: single-, multiple- and caching table.
///
/// # Examples
///
/// ```
/// use adc_core::tables::MappingTables;
/// use adc_core::{AgingMode, Location, ObjectId};
///
/// let mut tables = MappingTables::new(10, 10, 10, AgingMode::AgedWorst);
/// let obj = ObjectId::new(1);
/// // First sighting creates a single-table entry...
/// tables.update_entry(obj, Location::This, 5);
/// assert!(tables.single().contains(obj));
/// // ...a second sighting promotes it to the multiple-table.
/// tables.update_entry(obj, Location::This, 9);
/// assert!(tables.multiple().contains(obj));
/// ```
#[derive(Debug, Clone)]
pub struct MappingTables {
    single: SingleTable,
    multiple: OrderedTable,
    cached: OrderedTable,
    aging: AgingMode,
    mode: Mode,
}

impl MappingTables {
    /// Creates the three tables with the given capacities.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    pub fn new(
        single_capacity: usize,
        multiple_capacity: usize,
        cache_capacity: usize,
        aging: AgingMode,
    ) -> Self {
        MappingTables {
            single: SingleTable::new(single_capacity),
            multiple: OrderedTable::new(multiple_capacity),
            cached: OrderedTable::new(cache_capacity),
            aging,
            mode: Mode::Selective,
        }
    }

    /// Creates a mapping-only variant: the caching table is never
    /// populated, so objects stop at the multiple-table. Used when the
    /// actual store runs a plain LRU policy (ablation A1).
    pub fn mapping_only(
        single_capacity: usize,
        multiple_capacity: usize,
        aging: AgingMode,
    ) -> Self {
        MappingTables {
            single: SingleTable::new(single_capacity),
            multiple: OrderedTable::new(multiple_capacity),
            // Capacity 1 placeholder; never inserted into in this mode.
            cached: OrderedTable::new(1),
            aging,
            mode: Mode::MappingOnly,
        }
    }

    /// Borrows the single-table.
    pub fn single(&self) -> &SingleTable {
        &self.single
    }

    /// Borrows the multiple-table.
    pub fn multiple(&self) -> &OrderedTable {
        &self.multiple
    }

    /// Borrows the caching table.
    pub fn cached(&self) -> &OrderedTable {
        &self.cached
    }

    /// Returns `true` if the caching table lists `object` (i.e. the object
    /// data is stored locally under the selective policy).
    pub fn is_cached(&self, object: ObjectId) -> bool {
        self.cached.contains(object)
    }

    /// Total number of entries across the three tables.
    pub fn len(&self) -> usize {
        self.single.len() + self.multiple.len() + self.cached.len()
    }

    /// Returns `true` when all three tables are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the learned entry for `object`, searching (as the paper's
    /// `Forward_Addr` does) the caching table, then the multiple-table,
    /// then the single-table.
    pub fn lookup(&self, object: ObjectId) -> Option<&TableEntry> {
        self.cached
            .get(object)
            .or_else(|| self.multiple.get(object))
            .or_else(|| self.single.get(object))
    }

    /// The paper's `Update_Entry(Object, Location)` (Figure 8).
    ///
    /// Finds the entry (caching → multiple → single), refreshes its
    /// average via `Calc_Average`, records the new `location`, and applies
    /// the promotion/demotion rules. Unknown objects get a fresh entry on
    /// top of the single-table.
    ///
    /// An update arriving at the same local time as the entry's last one
    /// refreshes only the location, not the average: the backwarding pass
    /// of a *looping* request crosses the same proxy twice without the
    /// local clock advancing, and counting that as two requests would give
    /// the object a bogus zero inter-request gap (i.e. infinite apparent
    /// popularity). "The average time between two requests" (§III.3.1)
    /// refers to two distinct requests.
    pub fn update_entry(
        &mut self,
        object: ObjectId,
        location: Location,
        now: Tick,
    ) -> UpdateOutcome {
        let outcome = self.update_entry_inner(object, location, now);
        // The paper's core structural invariant: after every update the
        // object lives in exactly one of the three tables.
        debug_assert_eq!(
            usize::from(self.single.contains(object))
                + usize::from(self.multiple.contains(object))
                + usize::from(self.cached.contains(object)),
            1,
            "object {object} must be in exactly one table after update_entry"
        );
        debug_assert!(
            self.single.len() <= self.single.capacity()
                && self.multiple.len() <= self.multiple.capacity()
                && self.cached.len() <= self.cached.capacity(),
            "a mapping table exceeded its capacity bound"
        );
        outcome
    }

    fn update_entry_inner(
        &mut self,
        object: ObjectId,
        location: Location,
        now: Tick,
    ) -> UpdateOutcome {
        let aged = self.aging.is_aged();

        // PART 1: the object is cached; refresh in place.
        if self.mode == Mode::Selective {
            if let Some(mut entry) = self.cached.remove(object) {
                if entry.last != now {
                    entry.calc_average(now);
                }
                entry.location = location;
                self.cached.insert(entry);
                return UpdateOutcome {
                    found_in: TableHit::Cached,
                    admitted_to_cache: false,
                    evicted_from_cache: None,
                    promoted_to_multiple: false,
                    demoted_to_single: None,
                    forgotten: None,
                };
            }
        }

        // PART 2: in the multiple-table; maybe promote into the cache.
        if let Some(mut entry) = self.multiple.remove(object) {
            if entry.last != now {
                entry.calc_average(now);
            }
            entry.location = location;
            let promote =
                self.mode == Mode::Selective && self.cached.admits(entry.average, now, aged);
            if promote {
                let mut evicted_from_cache = None;
                if self.cached.is_full() {
                    // Invariant: is_full() just returned true, so the
                    // table is non-empty.
                    let worst = self
                        .cached
                        .pop_worst()
                        .expect("full caching table has a worst entry"); // adc-lint: allow(panic)
                    evicted_from_cache = Some(worst.object);
                    // The multiple-table just lost `entry`, so it has room.
                    self.multiple.insert(worst);
                }
                self.cached.insert(entry);
                return UpdateOutcome {
                    found_in: TableHit::Multiple,
                    admitted_to_cache: true,
                    evicted_from_cache,
                    promoted_to_multiple: false,
                    demoted_to_single: None,
                    forgotten: None,
                };
            }
            self.multiple.insert(entry);
            return UpdateOutcome {
                found_in: TableHit::Multiple,
                admitted_to_cache: false,
                evicted_from_cache: None,
                promoted_to_multiple: false,
                demoted_to_single: None,
                forgotten: None,
            };
        }

        // PART 3: in the single-table; maybe promote to the multiple-table.
        if let Some(mut entry) = self.single.remove(object) {
            if entry.last != now {
                entry.calc_average(now);
            }
            entry.location = location;
            // The multiple-table "contains only objects that were
            // requested more than once": an entry that never received a
            // real second request (hits == 1, average still 0) must stay
            // in the single-table — otherwise its zero average would rank
            // it best-in-table forever.
            let mut promoted_to_multiple = false;
            let mut demoted_to_single = None;
            if entry.has_average() && self.multiple.admits(entry.average, now, aged) {
                if self.multiple.is_full() {
                    // Invariant: is_full() just returned true, so the
                    // table is non-empty.
                    let worst = self
                        .multiple
                        .pop_worst()
                        .expect("full multiple-table has a worst entry"); // adc-lint: allow(panic)
                    demoted_to_single = Some(worst.object);
                    // The single-table just lost `entry`, so it has room.
                    self.single.push_top(worst);
                }
                self.multiple.insert(entry);
                promoted_to_multiple = true;
            } else {
                self.single.push_top(entry);
            }
            return UpdateOutcome {
                found_in: TableHit::Single,
                admitted_to_cache: false,
                evicted_from_cache: None,
                promoted_to_multiple,
                demoted_to_single,
                forgotten: None,
            };
        }

        // PART 4: unknown object; create a fresh entry on top.
        let entry = TableEntry::new(object, location, now);
        let forgotten = self.single.push_top(entry).map(|e| e.object);
        UpdateOutcome {
            found_in: TableHit::New,
            admitted_to_cache: false,
            evicted_from_cache: None,
            promoted_to_multiple: false,
            demoted_to_single: None,
            forgotten,
        }
    }

    /// Refills the tables from captured contents: `single` newest-first,
    /// `multiple` and `cached` best-first (the orders produced by the
    /// tables' iterators). Existing contents are discarded.
    ///
    /// # Panics
    ///
    /// Panics (via the underlying tables) if the contents exceed the
    /// configured capacities.
    pub fn restore_contents(
        &mut self,
        single: &[TableEntry],
        multiple: &[TableEntry],
        cached: &[TableEntry],
    ) {
        self.clear();
        // push_top puts each entry on top, so feed oldest first.
        for e in single.iter().rev() {
            self.single.push_top(*e);
        }
        for e in multiple {
            self.multiple.insert(*e);
        }
        for e in cached {
            self.cached.insert(*e);
        }
    }

    /// Removes every entry from all three tables.
    pub fn clear(&mut self) {
        self.single.clear();
        self.multiple.clear();
        self.cached.clear();
    }

    /// Asserts the structural invariants (object uniqueness across tables,
    /// bounded sizes). Intended for tests and debug builds.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn assert_invariants(&self) {
        assert!(self.single.len() <= self.single.capacity());
        assert!(self.multiple.len() <= self.multiple.capacity());
        assert!(self.cached.len() <= self.cached.capacity());
        let mut seen = std::collections::BTreeSet::new();
        for e in self
            .single
            .iter()
            .chain(self.multiple.iter())
            .chain(self.cached.iter())
        {
            assert!(
                seen.insert(e.object),
                "object {} present in more than one table",
                e.object
            );
        }
        // Ordered tables really are ordered by stored average.
        for table in [&self.multiple, &self.cached] {
            let mut prev = None;
            for e in table.iter() {
                if let Some(p) = prev {
                    assert!(p <= e.average, "ordered table out of order");
                }
                prev = Some(e.average);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables(s: usize, m: usize, c: usize) -> MappingTables {
        MappingTables::new(s, m, c, AgingMode::Off)
    }

    #[test]
    fn new_object_lands_in_single_table() {
        let mut t = tables(4, 4, 4);
        let out = t.update_entry(ObjectId::new(1), Location::This, 1);
        assert_eq!(out.found_in, TableHit::New);
        assert!(t.single().contains(ObjectId::new(1)));
        assert!(!t.multiple().contains(ObjectId::new(1)));
        t.assert_invariants();
    }

    #[test]
    fn second_hit_promotes_to_multiple() {
        let mut t = tables(4, 4, 4);
        t.update_entry(ObjectId::new(1), Location::This, 1);
        let out = t.update_entry(ObjectId::new(1), Location::This, 11);
        assert_eq!(out.found_in, TableHit::Single);
        assert!(out.promoted_to_multiple);
        assert_eq!(out.demoted_to_single, None);
        let e = t.multiple().get(ObjectId::new(1)).unwrap();
        assert_eq!(e.average, 10);
        assert_eq!(e.hits, 2);
        t.assert_invariants();
    }

    #[test]
    fn third_hit_promotes_to_cache() {
        let mut t = tables(4, 4, 4);
        t.update_entry(ObjectId::new(1), Location::This, 1);
        t.update_entry(ObjectId::new(1), Location::This, 11);
        let out = t.update_entry(ObjectId::new(1), Location::This, 21);
        assert_eq!(out.found_in, TableHit::Multiple);
        assert!(out.admitted_to_cache);
        assert!(t.is_cached(ObjectId::new(1)));
        t.assert_invariants();
    }

    #[test]
    fn cache_hit_refreshes_in_place() {
        let mut t = tables(4, 4, 4);
        for now in [1, 11, 21] {
            t.update_entry(ObjectId::new(1), Location::This, now);
        }
        let out = t.update_entry(ObjectId::new(1), Location::This, 31);
        assert_eq!(out.found_in, TableHit::Cached);
        assert!(!out.admitted_to_cache);
        assert!(t.is_cached(ObjectId::new(1)));
        assert_eq!(t.cached().get(ObjectId::new(1)).unwrap().hits, 4);
    }

    #[test]
    fn full_single_table_forgets_oldest() {
        let mut t = tables(2, 4, 4);
        t.update_entry(ObjectId::new(1), Location::This, 1);
        t.update_entry(ObjectId::new(2), Location::This, 2);
        let out = t.update_entry(ObjectId::new(3), Location::This, 3);
        assert_eq!(out.forgotten, Some(ObjectId::new(1)));
        assert_eq!(t.single().len(), 2);
        t.assert_invariants();
    }

    #[test]
    fn cache_displacement_returns_worst_to_multiple() {
        let mut t = tables(8, 8, 1);
        // Object 1: avg 100, cached (cache has room).
        t.update_entry(ObjectId::new(1), Location::This, 0);
        t.update_entry(ObjectId::new(1), Location::This, 100);
        t.update_entry(ObjectId::new(1), Location::This, 200);
        assert!(t.is_cached(ObjectId::new(1)));
        // Object 2: avg 10, much hotter; displaces object 1.
        t.update_entry(ObjectId::new(2), Location::This, 200);
        t.update_entry(ObjectId::new(2), Location::This, 210);
        let out = t.update_entry(ObjectId::new(2), Location::This, 220);
        assert!(out.admitted_to_cache);
        assert_eq!(out.evicted_from_cache, Some(ObjectId::new(1)));
        assert!(t.is_cached(ObjectId::new(2)));
        assert!(t.multiple().contains(ObjectId::new(1)));
        t.assert_invariants();
    }

    #[test]
    fn worse_candidate_does_not_enter_full_cache() {
        let mut t = tables(8, 8, 1);
        // Hot object 1 (avg 10) occupies the cache.
        t.update_entry(ObjectId::new(1), Location::This, 0);
        t.update_entry(ObjectId::new(1), Location::This, 10);
        t.update_entry(ObjectId::new(1), Location::This, 20);
        assert!(t.is_cached(ObjectId::new(1)));
        // Cold object 2 (avg 500) does not displace it.
        t.update_entry(ObjectId::new(2), Location::This, 20);
        t.update_entry(ObjectId::new(2), Location::This, 520);
        let out = t.update_entry(ObjectId::new(2), Location::This, 1020);
        assert!(!out.admitted_to_cache);
        assert!(t.is_cached(ObjectId::new(1)));
        assert!(t.multiple().contains(ObjectId::new(2)));
        t.assert_invariants();
    }

    #[test]
    fn multiple_table_displacement_demotes_to_single_top() {
        let t = tables(8, 1, 8);
        // Object 1 (avg 100) fills the multiple-table... and immediately
        // gets promoted to the empty cache on its 3rd hit; use a worse
        // object to keep it in the multiple-table. Simplest: fill the
        // cache first with two very hot objects so object 3 stays put.
        let mut t2 = MappingTables::new(8, 1, 1, AgingMode::Off);
        // Hot object occupies the 1-slot cache.
        t2.update_entry(ObjectId::new(9), Location::This, 0);
        t2.update_entry(ObjectId::new(9), Location::This, 1);
        t2.update_entry(ObjectId::new(9), Location::This, 2);
        assert!(t2.is_cached(ObjectId::new(9)));
        // Object 1 (avg 100) sits in the 1-slot multiple-table.
        t2.update_entry(ObjectId::new(1), Location::This, 10);
        t2.update_entry(ObjectId::new(1), Location::This, 110);
        assert!(t2.multiple().contains(ObjectId::new(1)));
        // Object 2 (avg 50) displaces object 1 back to the single-table.
        t2.update_entry(ObjectId::new(2), Location::This, 200);
        let out = t2.update_entry(ObjectId::new(2), Location::This, 250);
        assert!(out.promoted_to_multiple);
        assert_eq!(out.demoted_to_single, Some(ObjectId::new(1)));
        assert!(t2.multiple().contains(ObjectId::new(2)));
        assert!(t2.single().contains(ObjectId::new(1)));
        // Demoted entry keeps its forwarding information and history.
        let demoted = t2.single().get(ObjectId::new(1)).unwrap();
        assert_eq!(demoted.average, 100);
        assert_eq!(demoted.hits, 2);
        t2.assert_invariants();
        drop(t);
    }

    #[test]
    fn lookup_priority_is_cached_then_multiple_then_single() {
        let mut t = tables(8, 8, 8);
        t.update_entry(
            ObjectId::new(1),
            Location::Remote(crate::ProxyId::new(4)),
            1,
        );
        let e = t.lookup(ObjectId::new(1)).unwrap();
        assert_eq!(e.location, Location::Remote(crate::ProxyId::new(4)));
        assert!(t.lookup(ObjectId::new(99)).is_none());
    }

    #[test]
    fn mapping_only_never_populates_cache_table() {
        let mut t = MappingTables::mapping_only(8, 8, AgingMode::Off);
        for now in [1, 11, 21, 31, 41] {
            t.update_entry(ObjectId::new(1), Location::This, now);
        }
        assert!(!t.is_cached(ObjectId::new(1)));
        assert!(t.multiple().contains(ObjectId::new(1)));
        t.assert_invariants();
    }

    #[test]
    fn aged_admission_displaces_stale_cache_resident() {
        let mut t = MappingTables::new(8, 8, 1, AgingMode::AgedWorst);
        // Object 1: avg 100, cached, last seen t=200.
        t.update_entry(ObjectId::new(1), Location::This, 0);
        t.update_entry(ObjectId::new(1), Location::This, 100);
        t.update_entry(ObjectId::new(1), Location::This, 200);
        assert!(t.is_cached(ObjectId::new(1)));
        // Object 2: avg 400 — worse than 100 stored, but at t=1600 the
        // resident's aged average is (100 + 1400)/2 = 750 > 400.
        t.update_entry(ObjectId::new(2), Location::This, 800);
        t.update_entry(ObjectId::new(2), Location::This, 1200);
        let out = t.update_entry(ObjectId::new(2), Location::This, 1600);
        assert!(out.admitted_to_cache);
        assert_eq!(out.evicted_from_cache, Some(ObjectId::new(1)));
    }

    #[test]
    fn location_updates_propagate() {
        let mut t = tables(8, 8, 8);
        let p = crate::ProxyId::new(2);
        t.update_entry(ObjectId::new(1), Location::This, 1);
        t.update_entry(ObjectId::new(1), Location::Remote(p), 5);
        assert_eq!(
            t.lookup(ObjectId::new(1)).unwrap().location,
            Location::Remote(p)
        );
    }
}
