//! The three mapping tables of an ADC proxy (§III.3 of the paper) and the
//! LRU primitive they share with the baseline caches.

mod lru;
mod mapping;
mod ordered;
mod single;

pub use lru::{Iter as LruIter, LruList};
pub use mapping::{MappingTables, TableHit, UpdateOutcome};
pub use ordered::OrderedTable;
pub use single::SingleTable;
