//! Multi-proxy agreement scenarios, driven by a miniature in-test
//! message bus (no simulator crate involved): the backwarding protocol's
//! fine-grained promises, checked hop by hop.

use adc_core::{
    Action, AdcConfig, AdcProxy, CacheAgent, ClientId, Location, Message, NodeId, ObjectId,
    ProxyId, Reply, Request, RequestId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A deterministic synchronous message bus over a set of ADC proxies.
struct MiniBus {
    proxies: Vec<AdcProxy>,
    rng: StdRng,
    /// Replies that reached clients, in order.
    delivered: Vec<Reply>,
    /// Every delivery performed, as (from, to) pairs.
    log: Vec<(NodeId, NodeId)>,
}

impl MiniBus {
    fn new(n: u32, config: AdcConfig) -> Self {
        MiniBus {
            proxies: (0..n)
                .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
                .collect(),
            rng: StdRng::seed_from_u64(0xBEEF),
            delivered: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Injects a client request at `via` and runs the system to
    /// quiescence. Returns the reply the client received.
    fn resolve(&mut self, seq: u64, object: ObjectId, via: ProxyId) -> Reply {
        let client = ClientId::new(0);
        let request = Request::new(RequestId::new(client, seq), object, client);
        let mut queue: VecDeque<(NodeId, NodeId, Message)> = VecDeque::new();
        queue.push_back((
            NodeId::Client(client),
            NodeId::Proxy(via),
            Message::Request(request),
        ));
        let mut result = None;
        while let Some((from, to, message)) = queue.pop_front() {
            self.log.push((from, to));
            match to {
                NodeId::Proxy(p) => {
                    let agent = &mut self.proxies[p.raw() as usize];
                    let action = match message {
                        Message::Request(r) => Some(agent.request_action(r, &mut self.rng)),
                        Message::Reply(r) => agent.reply_action(r),
                    };
                    if let Some(Action::Send { to: dest, message }) = action {
                        queue.push_back((to, dest, message));
                    }
                }
                NodeId::Origin => {
                    if let Message::Request(r) = message {
                        let reply = Reply::from_origin(&r, 64);
                        queue.push_back((NodeId::Origin, r.sender, Message::Reply(reply)));
                    }
                }
                NodeId::Client(_) => {
                    if let Message::Reply(r) = message {
                        self.delivered.push(r);
                        result = Some(r);
                    }
                }
            }
        }
        result.expect("every request resolves")
    }

    fn proxy(&self, i: u32) -> &AdcProxy {
        &self.proxies[i.raw_index()]
    }
}

trait RawIndex {
    fn raw_index(&self) -> usize;
}

impl RawIndex for u32 {
    fn raw_index(&self) -> usize {
        *self as usize
    }
}

fn config() -> AdcConfig {
    AdcConfig::builder()
        .single_capacity(32)
        .multiple_capacity(32)
        .cache_capacity(16)
        .max_hops(8)
        .build()
}

#[test]
fn every_path_proxy_learns_the_resolver() {
    let mut bus = MiniBus::new(4, config());
    let object = ObjectId::new(7);
    // Resolve once through each entry proxy so everyone participates.
    for (seq, via) in (0..4u32).enumerate() {
        bus.resolve(seq as u64, object, ProxyId::new(via));
    }
    // Every proxy that has an entry points to a consistent location; at
    // least 3 of 4 proxies have one.
    let mut mapped = 0;
    for i in 0..4u32 {
        if let Some(entry) = bus.proxy(i).tables().lookup(object) {
            mapped += 1;
            let target = entry.location.resolve(ProxyId::new(i));
            assert!(target.raw() < 4);
        }
    }
    assert!(mapped >= 3, "only {mapped} proxies learned the object");
}

#[test]
fn repeated_resolution_converges_to_two_hop_hits() {
    let mut bus = MiniBus::new(3, config());
    let object = ObjectId::new(42);
    // Warm up.
    for seq in 0..10 {
        bus.resolve(seq, object, ProxyId::new((seq % 3) as u32));
    }
    // Now a request through any proxy must be served by a proxy cache.
    let reply = bus.resolve(100, object, ProxyId::new(0));
    assert!(reply.served_from.is_hit(), "warm object missed: {reply:?}");
    let reply = bus.resolve(101, object, ProxyId::new(2));
    assert!(reply.served_from.is_hit());
}

#[test]
fn resolver_field_survives_the_whole_backward_path() {
    let mut bus = MiniBus::new(4, config());
    let object = ObjectId::new(9);
    // First resolution establishes a resolver.
    let first = bus.resolve(0, object, ProxyId::new(1));
    let resolver = first.resolver.expect("resolver always set on delivery");
    assert!(resolver.raw() < 4);
    // The entry at the entry proxy names that resolver (or itself, if it
    // claimed the cache role later).
    let entry = bus
        .proxy(1)
        .tables()
        .lookup(object)
        .expect("entry proxy learned the object");
    let target = entry.location.resolve(ProxyId::new(1));
    assert_eq!(target, resolver);
}

#[test]
fn no_pending_state_leaks_after_quiescence() {
    let mut bus = MiniBus::new(4, config());
    for seq in 0..200 {
        let object = ObjectId::new(seq % 13);
        bus.resolve(seq, object, ProxyId::new((seq % 4) as u32));
    }
    for i in 0..4u32 {
        assert_eq!(
            bus.proxy(i).pending_requests(),
            0,
            "proxy {i} leaked pending entries"
        );
        bus.proxy(i).tables().assert_invariants();
    }
}

#[test]
fn hits_never_regress_to_origin_once_cached_everywhere() {
    let mut bus = MiniBus::new(2, config());
    let object = ObjectId::new(3);
    for seq in 0..12 {
        bus.resolve(seq, object, ProxyId::new((seq % 2) as u32));
    }
    // Cached at least somewhere.
    let cached_anywhere = (0..2u32).any(|i| bus.proxy(i).is_cached(object));
    assert!(cached_anywhere);
    // The next 10 requests are all hits.
    for seq in 100..110 {
        let reply = bus.resolve(seq, object, ProxyId::new((seq % 2) as u32));
        assert!(reply.served_from.is_hit(), "request {seq} missed");
    }
}

#[test]
fn cold_objects_do_not_replicate() {
    let mut bus = MiniBus::new(4, config());
    // 40 objects, each requested once: nothing qualifies for caching.
    for seq in 0..40 {
        bus.resolve(
            seq,
            ObjectId::new(1000 + seq),
            ProxyId::new((seq % 4) as u32),
        );
    }
    let total_cached: usize = (0..4u32).map(|i| bus.proxy(i).cached_objects()).sum();
    assert_eq!(
        total_cached, 0,
        "one-timers must not enter selective caches"
    );
}

#[test]
fn this_entries_are_self_consistent() {
    let mut bus = MiniBus::new(3, config());
    for seq in 0..120 {
        let object = ObjectId::new(seq % 10);
        bus.resolve(seq, object, ProxyId::new((seq % 3) as u32));
    }
    // Any entry with location THIS at proxy i either has the object
    // cached at i, or i legitimately forwards its requests to the origin
    // (the paper's design); either way the location must round-trip.
    for i in 0..3u32 {
        let me = ProxyId::new(i);
        let tables = bus.proxy(i).tables();
        for o in 0..10u64 {
            if let Some(e) = tables.lookup(ObjectId::new(o)) {
                if e.location == Location::This {
                    assert_eq!(e.location.resolve(me), me);
                }
            }
        }
    }
}

#[test]
fn request_and_reply_counts_balance() {
    let mut bus = MiniBus::new(3, config());
    for seq in 0..100 {
        bus.resolve(seq, ObjectId::new(seq % 7), ProxyId::new(0));
    }
    assert_eq!(bus.delivered.len(), 100);
    // Every client-bound delivery is a reply; requests and replies
    // balance per proxy (replies processed == requests forwarded).
    for i in 0..3u32 {
        let stats = bus.proxy(i).stats();
        assert_eq!(
            stats.replies_processed,
            stats.forwards(),
            "proxy {i}: forwards must be answered exactly once"
        );
    }
}
