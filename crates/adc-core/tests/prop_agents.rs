//! Property-based tests driving whole agents (bounded and unlimited ADC)
//! through arbitrary request sequences with an in-test message bus.

use adc_core::{
    Action, AdcConfig, AdcProxy, CacheAgent, CachePolicy, ClientId, Message, NodeId, ObjectId,
    ProxyId, Reply, Request, RequestId, UnlimitedAdcProxy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives one request through a set of agents until the client gets its
/// reply; returns the number of deliveries performed.
fn resolve_on_bus<A: CacheAgent>(
    agents: &mut [A],
    rng: &mut StdRng,
    seq: u64,
    object: u64,
    via: usize,
) -> u32 {
    let client = ClientId::new(0);
    let request = Request::new(RequestId::new(client, seq), ObjectId::new(object), client);
    let mut queue = vec![(
        NodeId::Proxy(ProxyId::new(via as u32)),
        Message::Request(request),
    )];
    let mut deliveries = 0;
    while let Some((to, message)) = queue.pop() {
        deliveries += 1;
        assert!(
            deliveries < 10_000,
            "resolution did not terminate for object {object}"
        );
        match to {
            NodeId::Proxy(p) => {
                let agent = &mut agents[p.raw() as usize];
                let action = match message {
                    Message::Request(r) => Some(agent.request_action(r, rng)),
                    Message::Reply(r) => agent.reply_action(r),
                };
                if let Some(Action::Send { to, message }) = action {
                    queue.push((to, message));
                }
            }
            NodeId::Origin => {
                if let Message::Request(r) = message {
                    queue.push((r.sender, Message::Reply(Reply::from_origin(&r, 32))));
                }
            }
            NodeId::Client(_) => return deliveries,
        }
    }
    panic!("request never returned to the client");
}

fn adc_agents(
    n: u32,
    single: usize,
    multiple: usize,
    cache: usize,
    policy: CachePolicy,
) -> Vec<AdcProxy> {
    let config = AdcConfig::builder()
        .single_capacity(single)
        .multiple_capacity(multiple)
        .cache_capacity(cache)
        .max_hops(8)
        .policy(policy)
        .build();
    (0..n)
        .map(|i| AdcProxy::new(ProxyId::new(i), n, config.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request terminates at the client, for any request mix, any
    /// cluster size, any capacities, both caching policies.
    #[test]
    fn adc_always_terminates(
        objects in prop::collection::vec((0u64..30, 0usize..4), 1..150),
        single in 1usize..16,
        multiple in 1usize..16,
        cache in 1usize..8,
        lru in any::<bool>(),
    ) {
        let policy = if lru { CachePolicy::LruAll } else { CachePolicy::Selective };
        let mut agents = adc_agents(4, single, multiple, cache, policy);
        let mut rng = StdRng::seed_from_u64(7);
        for (seq, (object, via)) in objects.into_iter().enumerate() {
            resolve_on_bus(&mut agents, &mut rng, seq as u64, object, via);
        }
        for a in &agents {
            prop_assert_eq!(a.pending_requests(), 0);
            a.tables().assert_invariants();
            prop_assert!(a.cached_objects() <= cache);
        }
    }

    /// The unlimited design also terminates and never loses entries: an
    /// object is mapped forever once seen.
    #[test]
    fn unlimited_never_forgets(
        objects in prop::collection::vec((0u64..40, 0usize..3), 1..150),
        cache in 1usize..8,
    ) {
        let mut agents: Vec<UnlimitedAdcProxy> = (0..3)
            .map(|i| UnlimitedAdcProxy::new(ProxyId::new(i), 3, cache, 8))
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for (seq, (object, via)) in objects.into_iter().enumerate() {
            resolve_on_bus(&mut agents, &mut rng, seq as u64, object, via);
            seen.insert(object);
        }
        // Every proxy that participated in a resolution keeps an entry;
        // at minimum, the union of all proxies' maps covers every object.
        for &object in &seen {
            let known = agents.iter().any(|a| {
                a.is_cached(ObjectId::new(object)) || a.mapping_entries() > 0
            });
            prop_assert!(known);
        }
        let total: usize = agents.iter().map(|a| a.mapping_entries()).sum();
        prop_assert!(total >= seen.len(), "maps lost objects: {total} < {}", seen.len());
    }

    /// Interleaved concurrent flows (two outstanding requests at once)
    /// never corrupt pending state: we alternate deliveries between two
    /// in-flight resolutions.
    #[test]
    fn interleaved_flows_are_safe(objects in prop::collection::vec(0u64..20, 2..60)) {
        let mut agents = adc_agents(3, 16, 16, 8, CachePolicy::Selective);
        let mut rng = StdRng::seed_from_u64(3);
        let client = ClientId::new(0);
        // Pump pairs of requests through, breadth-first so their
        // deliveries interleave.
        let mut seq = 0u64;
        for pair in objects.chunks(2) {
            let mut queue: std::collections::VecDeque<(NodeId, Message)> =
                std::collections::VecDeque::new();
            for &object in pair {
                let request =
                    Request::new(RequestId::new(client, seq), ObjectId::new(object), client);
                queue.push_back((NodeId::Proxy(ProxyId::new(0)), Message::Request(request)));
                seq += 1;
            }
            let mut delivered = 0;
            let mut steps = 0;
            while let Some((to, message)) = queue.pop_front() {
                steps += 1;
                prop_assert!(steps < 10_000, "interleaved flows did not terminate");
                match to {
                    NodeId::Proxy(p) => {
                        let agent = &mut agents[p.raw() as usize];
                        let action = match message {
                            Message::Request(r) => Some(agent.request_action(r, &mut rng)),
                            Message::Reply(r) => agent.reply_action(r),
                        };
                        if let Some(Action::Send { to, message }) = action {
                            queue.push_back((to, message));
                        }
                    }
                    NodeId::Origin => {
                        if let Message::Request(r) = message {
                            queue.push_back((r.sender, Message::Reply(Reply::from_origin(&r, 32))));
                        }
                    }
                    NodeId::Client(_) => delivered += 1,
                }
            }
            prop_assert_eq!(delivered, pair.len());
        }
        for a in &agents {
            prop_assert_eq!(a.pending_requests(), 0);
            a.tables().assert_invariants();
        }
    }
}
