//! Property-based tests of the mapping-table machinery.

use adc_core::tables::{LruList, MappingTables, OrderedTable, SingleTable};
use adc_core::{AgingMode, Location, ObjectId, ProxyId, TableEntry};
use proptest::prelude::*;
use std::collections::VecDeque;

/// An arbitrary update: which object, reported location, and how far the
/// local clock advances before the update.
#[derive(Debug, Clone, Copy)]
struct Update {
    object: u64,
    location: Option<u32>,
    advance: u64,
}

fn arb_updates(max: usize, universe: u64) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec((0..universe, prop::option::of(0u32..4), 0u64..5), 1..max).prop_map(|v| {
        v.into_iter()
            .map(|(object, location, advance)| Update {
                object,
                location,
                advance,
            })
            .collect()
    })
}

fn location_of(u: Update) -> Location {
    match u.location {
        None => Location::This,
        Some(p) => Location::Remote(ProxyId::new(p)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants hold after any update sequence, for any capacities and
    /// either aging mode.
    #[test]
    fn mapping_tables_invariants(
        updates in arb_updates(400, 60),
        single in 1usize..20,
        multiple in 1usize..20,
        cache in 1usize..10,
        aged in any::<bool>(),
    ) {
        let aging = if aged { AgingMode::AgedWorst } else { AgingMode::Off };
        let mut tables = MappingTables::new(single, multiple, cache, aging);
        let mut now = 0;
        for u in updates {
            now += u.advance;
            tables.update_entry(ObjectId::new(u.object), location_of(u), now);
            tables.assert_invariants();
        }
    }

    /// An object reported at least twice at distinct times is known
    /// afterwards unless capacity pressure displaced it; an object never
    /// reported is never known.
    #[test]
    fn lookup_soundness(updates in arb_updates(200, 40)) {
        let mut tables = MappingTables::new(64, 64, 32, AgingMode::Off);
        let mut now = 0;
        let mut reported = std::collections::HashSet::new();
        for u in updates {
            now += u.advance + 1;
            tables.update_entry(ObjectId::new(u.object), location_of(u), now);
            reported.insert(u.object);
        }
        // Tables are big enough that nothing is displaced here.
        for o in 0..40u64 {
            prop_assert_eq!(
                tables.lookup(ObjectId::new(o)).is_some(),
                reported.contains(&o)
            );
        }
    }

    /// The entry count never exceeds the sum of capacities and entries
    /// are conserved (every table member was reported at some point).
    #[test]
    fn bounded_and_sound(updates in arb_updates(500, 30), cap in 1usize..8) {
        let mut tables = MappingTables::new(cap, cap, cap, AgingMode::AgedWorst);
        let mut now = 0;
        let mut reported = std::collections::HashSet::new();
        for u in updates {
            now += u.advance;
            reported.insert(u.object);
            tables.update_entry(ObjectId::new(u.object), location_of(u), now);
        }
        prop_assert!(tables.len() <= 3 * cap);
        let members: Vec<ObjectId> = tables
            .single().iter().map(|e| e.object)
            .chain(tables.multiple().iter().map(|e| e.object))
            .chain(tables.cached().iter().map(|e| e.object))
            .collect();
        for m in members {
            prop_assert!(reported.contains(&m.raw()));
        }
    }

    /// The multiple-table only ever holds entries with >= 2 hits (the
    /// paper's definition), and therefore a meaningful average.
    #[test]
    fn multiple_table_needs_two_hits(updates in arb_updates(400, 25)) {
        let mut tables = MappingTables::new(8, 8, 4, AgingMode::AgedWorst);
        let mut now = 0;
        for u in updates {
            now += u.advance;
            tables.update_entry(ObjectId::new(u.object), location_of(u), now);
            for e in tables.multiple().iter().chain(tables.cached().iter()) {
                prop_assert!(e.hits >= 2, "entry {:?} in ordered table with 1 hit", e);
            }
        }
    }

    /// `LruList` behaves exactly like a naive VecDeque model.
    #[test]
    fn lru_list_matches_model(ops in prop::collection::vec((0u8..4, 0u64..20), 1..300)) {
        let mut lru: LruList<u64, u64> = LruList::new();
        let mut model: VecDeque<(u64, u64)> = VecDeque::new(); // front = most recent
        for (op, key) in ops {
            match op {
                0 => { // push_front
                    let old = lru.push_front(key, key * 10);
                    let model_old = model.iter().position(|&(k, _)| k == key).map(|i| {
                        let (_, v) = model.remove(i).unwrap();
                        v
                    });
                    model.push_front((key, key * 10));
                    prop_assert_eq!(old, model_old);
                }
                1 => { // remove
                    let got = lru.remove(&key);
                    let model_got = model.iter().position(|&(k, _)| k == key).map(|i| {
                        let (_, v) = model.remove(i).unwrap();
                        v
                    });
                    prop_assert_eq!(got, model_got);
                }
                2 => { // pop_back
                    prop_assert_eq!(lru.pop_back(), model.pop_back());
                }
                _ => { // get_refresh
                    let got = lru.get_refresh(&key).copied();
                    let model_got = model.iter().position(|&(k, _)| k == key).map(|i| {
                        let e = model.remove(i).unwrap();
                        model.push_front(e);
                        e.1
                    });
                    prop_assert_eq!(got, model_got);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
            let order: Vec<u64> = lru.iter().map(|(&k, _)| k).collect();
            let model_order: Vec<u64> = model.iter().map(|&(k, _)| k).collect();
            prop_assert_eq!(order, model_order);
        }
    }

    /// `OrderedTable` keeps ascending order and exact membership under
    /// arbitrary insert/remove/pop sequences.
    #[test]
    fn ordered_table_stays_ordered(
        ops in prop::collection::vec((0u8..3, 0u64..30, 0u64..1000), 1..300),
        cap in 1usize..16,
    ) {
        let mut table = OrderedTable::new(cap);
        let mut members = std::collections::HashSet::new();
        for (op, object, avg) in ops {
            match op {
                0 => {
                    if !members.contains(&object) {
                        let mut e = TableEntry::new(ObjectId::new(object), Location::This, 0);
                        e.average = avg;
                        e.hits = 2;
                        if let Some(evicted) = table.insert(e) {
                            members.remove(&evicted.object.raw());
                        }
                        members.insert(object);
                    }
                }
                1 => {
                    let got = table.remove(ObjectId::new(object));
                    prop_assert_eq!(got.is_some(), members.remove(&object));
                }
                _ => {
                    if let Some(worst) = table.pop_worst() {
                        members.remove(&worst.object.raw());
                        // Nothing remaining is worse.
                        for e in table.iter() {
                            prop_assert!(e.average <= worst.average);
                        }
                    }
                }
            }
            prop_assert_eq!(table.len(), members.len());
            prop_assert!(table.len() <= cap);
            let avgs: Vec<u64> = table.iter().map(|e| e.average).collect();
            let mut sorted = avgs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(avgs, sorted);
        }
    }

    /// The single-table is a bounded LRU: capacity respected, newest
    /// first, and the displaced entry is always the oldest.
    #[test]
    fn single_table_is_bounded_lru(objects in prop::collection::vec(0u64..40, 1..200), cap in 1usize..10) {
        let mut table = SingleTable::new(cap);
        let mut model: VecDeque<u64> = VecDeque::new();
        for (i, o) in objects.into_iter().enumerate() {
            if table.contains(ObjectId::new(o)) {
                table.remove(ObjectId::new(o));
                model.retain(|&k| k != o);
            }
            let dropped = table.push_top(TableEntry::new(ObjectId::new(o), Location::This, i as u64));
            model.push_front(o);
            if model.len() > cap {
                let oldest = model.pop_back();
                prop_assert_eq!(dropped.map(|e| e.object.raw()), oldest);
            } else {
                prop_assert!(dropped.is_none());
            }
            let order: Vec<u64> = table.iter().map(|e| e.object.raw()).collect();
            let model_order: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(order, model_order);
        }
    }

    /// Calc_Average is bounded by the largest gap ever observed and LAST
    /// always equals the most recent request time.
    #[test]
    fn calc_average_bounds(gaps in prop::collection::vec(1u64..1000, 1..50)) {
        let mut entry = TableEntry::new(ObjectId::new(1), Location::This, 0);
        let mut now = 0;
        let mut max_gap = 0;
        for gap in &gaps {
            now += gap;
            max_gap = max_gap.max(*gap);
            entry.calc_average(now);
            prop_assert!(entry.average <= max_gap);
            prop_assert_eq!(entry.last, now);
        }
        prop_assert_eq!(entry.hits, gaps.len() as u64 + 1);
    }
}
