//! Live-cluster spans: the wall-clock counterpart of [`crate::span`].
//!
//! The simulator attributes latency with [`SpanProbe`][crate::SpanProbe]
//! over virtual time; a live `adc-net` cluster has no global clock, so
//! each node records its own wall-clock spans into a bounded
//! [`SpanRing`] and a collector later merges the rings, aligning the
//! per-node monotonic clocks. Spans reuse the simulator's
//! [`SegmentKind`] taxonomy (one spelling per segment, held by the
//! [`segment_names`][crate::span::segment_names] consts), so a live
//! trace and a simulated [`SpanReport`][crate::SpanReport] break down
//! latency into the same labelled segments.
//!
//! This module owns the span record ([`NetSpan`]), the ring
//! ([`SpanRing`]: fixed capacity, allocation-free once full, counted
//! drops), the JSONL codec the in-band trace scrape ships spans in, and
//! the chrome `trace_event` exporter that renders one lane per cluster
//! node ([`net_lanes_to_chrome_trace`]).

use crate::json::write_escaped;
use crate::span::SegmentKind;
use std::fmt::Write as _;
use std::io;

/// Lane id the origin server records spans under (proxies use their raw
/// proxy id; the reserved ids sit at the top of the `u32` range, far
/// above any real proxy count).
pub const ORIGIN_LANE: u32 = u32::MAX;

/// Lane id a client endpoint records spans under.
pub const CLIENT_LANE: u32 = u32::MAX - 1;

/// The chrome `pid` merged cluster-node lanes render under (pids 0–2
/// belong to the simulator exporters; see [`crate::chrome`]).
pub const NET_LANES_PID: u32 = 3;

/// Derives a trace id from the issuing client and its request counter.
///
/// A trace id is minted once, at the client that issues the root
/// request, and then travels the wire unchanged; deriving it by mixing
/// keeps it deterministic per request without any coordination.
/// `splitmix64` is a bijection, so distinct `(client, seq)` pairs map to
/// distinct ids while `seq < 2^32`.
pub fn derive_trace_id(client: u32, seq: u64) -> u64 {
    splitmix64(((client as u64) << 32) ^ seq)
}

/// Derives a span id from the recording node's lane and its local span
/// counter. Bijective mixing keeps ids unique across nodes while each
/// node records fewer than 2^32 spans.
pub fn derive_span_id(node: u32, counter: u64) -> u64 {
    splitmix64(((node as u64) << 32) ^ counter ^ 0x5EED_0BAD_CAFE)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One wall-clock span recorded at a cluster node.
///
/// Timestamps are microseconds on the *recording node's* monotonic
/// clock (since that node's spawn); only the merger converts them to a
/// shared timeline. `parent_span = 0` marks a root span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetSpan {
    /// The request flow this span belongs to, minted at the client.
    pub trace_id: u64,
    /// This span's id, unique within the trace.
    pub span_id: u64,
    /// The id of the span this one nests under; `0` for a root.
    pub parent_span: u64,
    /// Recording node's lane: proxy raw id, [`CLIENT_LANE`] or
    /// [`ORIGIN_LANE`].
    pub node: u32,
    /// Which latency segment this span attributes.
    pub kind: SegmentKind,
    /// Start, microseconds on the recording node's clock.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// The object the flow requested.
    pub object: u64,
    /// Hop count of the request when the span opened.
    pub hop: u32,
}

impl NetSpan {
    /// End of the span on the recording node's clock.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// A bounded ring of [`NetSpan`]s with counted drops.
///
/// Mirrors [`EventLog::ring`][crate::EventLog::ring]: recording never
/// blocks and never reallocates once the ring is full — the oldest span
/// is overwritten and the loss is counted, so the ring always holds the
/// *newest* `capacity` spans (what a flight-recorder dump wants) and
/// [`SpanRing::dropped`] says exactly how many were lost. The counters
/// are cumulative across [`SpanRing::drain_ordered`] calls, matching
/// the monotone `adc_net_trace_dropped_total` metric they back.
#[derive(Debug)]
pub struct SpanRing {
    slots: Vec<NetSpan>,
    capacity: usize,
    /// Index of the oldest slot once the ring has wrapped.
    next: usize,
    recorded: u64,
    dropped: u64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> SpanRing {
        assert!(capacity > 0, "span ring needs capacity");
        SpanRing {
            slots: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Records one span, overwriting the oldest when full.
    pub fn record(&mut self, span: NetSpan) {
        self.recorded += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(span);
        } else {
            self.slots[self.next] = span;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Spans recorded over the ring's lifetime (kept or dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans lost to overwrites over the ring's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring currently holds no spans.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the held spans oldest → newest.
    pub fn iter_ordered(&self) -> impl Iterator<Item = &NetSpan> {
        let (tail, head) = self.slots.split_at(self.next.min(self.slots.len()));
        head.iter().chain(tail.iter())
    }

    /// The newest `n` spans, oldest → newest — what a post-mortem dump
    /// wants.
    pub fn last(&self, n: usize) -> Vec<NetSpan> {
        let held = self.slots.len();
        self.iter_ordered()
            .skip(held.saturating_sub(n))
            .copied()
            .collect()
    }

    /// Removes and returns every held span, oldest → newest. The
    /// lifetime counters are *not* reset: `dropped`/`recorded` stay
    /// cumulative so repeated scrapes report monotone totals.
    pub fn drain_ordered(&mut self) -> Vec<NetSpan> {
        let out: Vec<NetSpan> = self.iter_ordered().copied().collect();
        self.slots.clear();
        self.next = 0;
        out
    }

    /// Renders the held spans as JSON Lines, oldest → newest.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.slots.len() * 128);
        for span in self.iter_ordered() {
            write_net_span_json(&mut out, span);
            out.push('\n');
        }
        out
    }
}

/// Appends one span as a flat JSON object (no trailing newline).
pub fn write_net_span_json(out: &mut String, s: &NetSpan) {
    let _ = write!(
        out,
        "{{\"trace\":{},\"span\":{},\"parent\":{},\"node\":{},\"seg\":",
        s.trace_id, s.span_id, s.parent_span, s.node
    );
    write_escaped(out, s.kind.name());
    let _ = write!(
        out,
        ",\"start_us\":{},\"dur_us\":{},\"object\":{},\"hop\":{}}}",
        s.start_us, s.dur_us, s.object, s.hop
    );
}

/// Renders `spans` as JSON Lines.
pub fn net_spans_to_jsonl(spans: &[NetSpan]) -> String {
    let mut out = String::with_capacity(spans.len() * 128);
    for span in spans {
        write_net_span_json(&mut out, span);
        out.push('\n');
    }
    out
}

/// Parses one JSONL line produced by [`write_net_span_json`].
///
/// # Errors
///
/// Returns a description of the first missing or malformed field. Only
/// the exact flat shape the writer emits is accepted — this is the
/// scrape codec, not a general JSON parser.
pub fn parse_net_span(line: &str) -> Result<NetSpan, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let mut span = NetSpan {
        trace_id: 0,
        span_id: 0,
        parent_span: 0,
        node: 0,
        kind: SegmentKind::ClientWait,
        start_us: 0,
        dur_us: 0,
        object: 0,
        hop: 0,
    };
    let mut seen = [false; 9];
    // The writer emits no strings containing ',' or ':' (segment names
    // are snake_case), so field-splitting on those is exact.
    for field in body.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("malformed field {field:?}"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        let num = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("field {key:?} is not a number: {value:?}"))
        };
        match key {
            "trace" => {
                span.trace_id = num()?;
                seen[0] = true;
            }
            "span" => {
                span.span_id = num()?;
                seen[1] = true;
            }
            "parent" => {
                span.parent_span = num()?;
                seen[2] = true;
            }
            "node" => {
                span.node = num()? as u32;
                seen[3] = true;
            }
            "seg" => {
                let name = value.trim_matches('"');
                span.kind = SegmentKind::from_name(name)
                    .ok_or_else(|| format!("unknown segment name {name:?}"))?;
                seen[4] = true;
            }
            "start_us" => {
                span.start_us = num()?;
                seen[5] = true;
            }
            "dur_us" => {
                span.dur_us = num()?;
                seen[6] = true;
            }
            "object" => {
                span.object = num()?;
                seen[7] = true;
            }
            "hop" => {
                span.hop = num()? as u32;
                seen[8] = true;
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        const FIELDS: [&str; 9] = [
            "trace", "span", "parent", "node", "seg", "start_us", "dur_us", "object", "hop",
        ];
        return Err(format!("missing field {:?}", FIELDS[missing]));
    }
    Ok(span)
}

/// Parses a JSONL document of spans, ignoring blank lines.
///
/// # Errors
///
/// Propagates the first line-level parse error, annotated with its
/// 1-based line number.
pub fn parse_net_spans_jsonl(text: &str) -> Result<Vec<NetSpan>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_net_span(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// One cluster-node lane of a merged trace: a display name plus the
/// node's spans with `start_us` already aligned to the collector's
/// clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetLane {
    /// Lane label, e.g. `proxy 0` or `origin`.
    pub name: String,
    /// The lane's spans on the shared (collector) timeline.
    pub spans: Vec<NetSpan>,
}

/// Renders merged cluster-node lanes as a chrome `trace_event` JSON
/// document: under [`NET_LANES_PID`], one named `tid` lane per node
/// (lanes keep their input order) carrying a `ph:"X"` slice per span,
/// named by its segment with the trace linkage under `args`. Follows
/// the [`crate::chrome`] conventions: metadata first, ascending `tid`
/// order, microsecond timestamps.
pub fn net_lanes_to_chrome_trace(lanes: &[NetLane]) -> String {
    let spans: usize = lanes.iter().map(|l| l.spans.len()).sum();
    let mut out = String::with_capacity(256 + spans * 144);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{NET_LANES_PID},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"cluster nodes (wall clock)\"}}}}"
    );
    for (tid, lane) in lanes.iter().enumerate() {
        let _ = write!(
            out,
            ",{{\"ph\":\"M\",\"pid\":{NET_LANES_PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        write_escaped(&mut out, &lane.name);
        out.push_str("}}");
    }
    for (tid, lane) in lanes.iter().enumerate() {
        for s in &lane.spans {
            let _ = write!(
                out,
                ",{{\"ph\":\"X\",\"pid\":{NET_LANES_PID},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":",
                s.start_us, s.dur_us
            );
            write_escaped(&mut out, s.kind.name());
            let _ = write!(
                out,
                ",\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\"object\":{},\"hop\":{}}}}}",
                s.trace_id, s.span_id, s.parent_span, s.object, s.hop
            );
        }
    }
    out.push_str("]}");
    out
}

/// Writes the merged-lane chrome trace to `writer`.
///
/// # Errors
///
/// Propagates the writer's I/O error.
pub fn write_net_lanes<W: io::Write>(writer: &mut W, lanes: &[NetLane]) -> io::Result<()> {
    writer.write_all(net_lanes_to_chrome_trace(lanes).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    fn span(i: u64) -> NetSpan {
        NetSpan {
            trace_id: derive_trace_id(1, i),
            span_id: derive_span_id(0, i),
            parent_span: 0,
            node: 0,
            kind: SegmentKind::ALL[(i as usize) % SegmentKind::COUNT],
            start_us: i * 10,
            dur_us: 5,
            object: 42 + i,
            hop: i as u32,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = SpanRing::with_capacity(4);
        for i in 0..10 {
            ring.record(span(i));
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.len(), 4);
        let held: Vec<u64> = ring.iter_ordered().map(|s| s.start_us).collect();
        assert_eq!(held, vec![60, 70, 80, 90], "newest four, oldest first");
        assert_eq!(ring.last(2).len(), 2);
        assert_eq!(ring.last(2)[1].start_us, 90);
    }

    #[test]
    fn drain_resets_contents_but_not_counters() {
        let mut ring = SpanRing::with_capacity(3);
        for i in 0..5 {
            ring.record(span(i));
        }
        let drained = ring.drain_ordered();
        assert_eq!(drained.len(), 3);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drop counter is cumulative");
        ring.record(span(9));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.recorded(), 6);
    }

    #[test]
    fn ring_below_capacity_preserves_order() {
        let mut ring = SpanRing::with_capacity(8);
        for i in 0..3 {
            ring.record(span(i));
        }
        assert_eq!(ring.dropped(), 0);
        let held: Vec<u64> = ring.iter_ordered().map(|s| s.start_us).collect();
        assert_eq!(held, vec![0, 10, 20]);
    }

    #[test]
    fn jsonl_round_trips() {
        let spans: Vec<NetSpan> = (0..7).map(span).collect();
        let text = net_spans_to_jsonl(&spans);
        for line in text.lines() {
            validate_json(line).expect("each span line is valid JSON");
        }
        let back = parse_net_spans_jsonl(&text).expect("parse back");
        assert_eq!(back, spans);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_net_span("not json").is_err());
        assert!(parse_net_span("{\"trace\":1}").is_err(), "missing fields");
        let mut good = String::new();
        write_net_span_json(&mut good, &span(0));
        let bad = good.replace("\"seg\":\"client_wait\"", "\"seg\":\"clientwait\"");
        assert!(parse_net_span(&bad).is_err(), "unknown segment name");
        let bad = good.replace("\"object\"", "\"objekt\"");
        assert!(parse_net_span(&bad).is_err(), "unknown field");
    }

    #[test]
    fn derived_ids_are_distinct() {
        let mut ids: Vec<u64> = (0..100).map(|i| derive_trace_id(3, i)).collect();
        ids.extend((0..100).map(|i| derive_span_id(3, i)));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn chrome_export_names_every_lane_and_validates() {
        let lanes = vec![
            NetLane {
                name: "client".into(),
                spans: vec![span(0)],
            },
            NetLane {
                name: "proxy 0".into(),
                spans: vec![span(1), span(2)],
            },
            NetLane {
                name: "origin".into(),
                spans: Vec::new(),
            },
        ];
        let trace = net_lanes_to_chrome_trace(&lanes);
        validate_json(&trace).expect("chrome trace must be valid JSON");
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"client\"}"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"proxy 0\"}"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"origin\"}"));
        // One process label plus one thread label per lane, even empty
        // ones.
        assert_eq!(trace.matches("\"ph\":\"M\"").count(), 4);
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 3);
        assert!(trace.contains(&format!("\"pid\":{NET_LANES_PID}")));
    }

    #[test]
    fn empty_lanes_still_validate() {
        let trace = net_lanes_to_chrome_trace(&[]);
        validate_json(&trace).expect("valid JSON");
    }
}
