//! chrome://tracing (`trace_event` JSON) export of a captured stream.
//!
//! The output is the stable "JSON object format": a single object with a
//! `traceEvents` array, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Layout:
//!
//! - **pid 0 / tid = client**: one complete span (`ph:"X"`) per finished
//!   request, from injection to completion, named `hit` or `miss`;
//! - **pid 1 / tid = proxy**: one instant event (`ph:"i"`) per agent
//!   event (forwards, loops, migrations, cache churn), with the
//!   variant's fields under `args`;
//! - metadata events (`ph:"M"`) label both rows.
//!
//! Timestamps (`ts`) and durations (`dur`) are in microseconds, matching
//! the simulator's clock.

use crate::event::SimEvent;
use crate::json::write_escaped;
use crate::jsonl::write_event_json;
use std::fmt::Write as _;
use std::io;

fn push_meta(out: &mut String, pid: u32, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":"
    );
    write_escaped(out, name);
    out.push_str("}}");
}

/// Renders the captured stream in chrome `trace_event` format.
pub fn to_chrome_trace(events: &[(u64, SimEvent)]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    push_meta(&mut out, 0, "clients (request flows)");
    out.push(',');
    push_meta(&mut out, 1, "proxies (agent events)");
    for &(t, ref event) in events {
        out.push(',');
        match *event {
            // Injections are represented by the span start of the matching
            // completion; emit nothing separate to keep traces compact.
            SimEvent::RequestInjected { .. } => {
                out.pop();
                continue;
            }
            SimEvent::RequestCompleted {
                client,
                seq,
                object,
                hit,
                hops,
                start_us,
            } => {
                let name = if hit { "hit" } else { "miss" };
                let dur = t.saturating_sub(start_us);
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{client},\"ts\":{start_us},\"dur\":{dur},\"name\":\"{name}\",\"args\":{{\"object\":{object},\"seq\":{seq},\"hops\":{hops}}}}}"
                );
            }
            _ => {
                let proxy = event.proxy().unwrap_or(0);
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{proxy},\"ts\":{t},\"name\":"
                );
                write_escaped(&mut out, event.kind().name());
                out.push_str(",\"args\":");
                // Reuse the JSONL object as the args payload: it is a
                // flat JSON object carrying every field of the variant.
                write_event_json(&mut out, t, event);
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}

/// Writes the chrome trace to `writer`.
pub fn write_chrome_trace<W: io::Write>(
    writer: &mut W,
    events: &[(u64, SimEvent)],
) -> io::Result<()> {
    writer.write_all(to_chrome_trace(events).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn trace_is_valid_json_with_expected_rows() {
        let events = [
            (
                0,
                SimEvent::RequestInjected {
                    client: 1,
                    seq: 0,
                    object: 42,
                },
            ),
            (
                5,
                SimEvent::ForwardLearned {
                    proxy: 0,
                    object: 42,
                    to: 3,
                },
            ),
            (
                12,
                SimEvent::RequestCompleted {
                    client: 1,
                    seq: 0,
                    object: 42,
                    hit: true,
                    hops: 3,
                    start_us: 0,
                },
            ),
        ];
        let trace = to_chrome_trace(&events);
        validate_json(&trace).expect("chrome trace must be valid JSON");
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        // Injection is folded into the span; span covers 0..12 on tid 1.
        assert!(
            trace.contains("\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":0,\"dur\":12,\"name\":\"hit\"")
        );
        assert!(trace.contains("\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":5"));
        assert!(trace.contains("\"name\":\"forward_learned\""));
        assert_eq!(trace.matches("\"ph\":\"M\"").count(), 2);
    }

    #[test]
    fn empty_stream_is_still_valid() {
        let trace = to_chrome_trace(&[]);
        validate_json(&trace).expect("empty trace must be valid JSON");
    }
}
