//! chrome://tracing (`trace_event` JSON) export of a captured stream.
//!
//! The output is the stable "JSON object format": a single object with a
//! `traceEvents` array, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Layout:
//!
//! - **pid 0 / tid = client**: one complete span (`ph:"X"`) per finished
//!   request, from injection to completion, named `hit` or `miss`;
//! - **pid 1 / tid = proxy**: one instant event (`ph:"i"`) per agent
//!   event (forwards, loops, migrations, cache churn), with the
//!   variant's fields under `args`;
//! - **pid 2 / tid = shard** ([`shard_lanes_to_chrome_trace`]): one lane
//!   per executor shard carrying wall-clock drain/wait slices and
//!   barrier instants from the shard-execution profiler;
//! - metadata events (`ph:"M"`): `process_name` for each pid and one
//!   `thread_name` per tid, emitted in ascending tid order so every lane
//!   is labeled and lanes sort stably in the viewer.
//!
//! Timestamps (`ts`) and durations (`dur`) are in microseconds — the
//! simulator's clock for pids 0/1, wall-clock-since-run-start for the
//! shard lanes.

use crate::event::SimEvent;
use crate::json::write_escaped;
use crate::jsonl::write_event_json;
use std::fmt::Write as _;
use std::io;

fn push_process_meta(out: &mut String, pid: u32, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":"
    );
    write_escaped(out, name);
    out.push_str("}}");
}

fn push_thread_meta(out: &mut String, pid: u32, tid: u32, name: &str) {
    let _ = write!(
        out,
        ",{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
    );
    write_escaped(out, name);
    out.push_str("}}");
}

/// Renders the captured stream in chrome `trace_event` format.
pub fn to_chrome_trace(events: &[(u64, SimEvent)]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    push_process_meta(&mut out, 0, "clients (request flows)");
    out.push(',');
    push_process_meta(&mut out, 1, "proxies (agent events)");
    // Label every lane up front, in ascending tid order, so the viewer
    // shows named tracks in a stable order instead of one anonymous
    // track per bare tid.
    let mut clients: Vec<u32> = Vec::new();
    let mut proxies: Vec<u32> = Vec::new();
    for (_, event) in events {
        // Deliberately binary: the two request-flow variants get client
        // lanes, every other variant classifies by its proxy — a new
        // variant lands in the proxy lane, which is where agent-side
        // events belong. adc-lint: allow(probe-exhaustiveness)
        match *event {
            SimEvent::RequestInjected { client, .. }
            | SimEvent::RequestCompleted { client, .. } => clients.push(client),
            _ => {
                if let Some(proxy) = event.proxy() {
                    proxies.push(proxy);
                }
            }
        }
    }
    clients.sort_unstable();
    clients.dedup();
    proxies.sort_unstable();
    proxies.dedup();
    let mut name = String::new();
    for &client in &clients {
        name.clear();
        let _ = write!(name, "client {client}");
        push_thread_meta(&mut out, 0, client, &name);
    }
    for &proxy in &proxies {
        name.clear();
        let _ = write!(name, "proxy {proxy}");
        push_thread_meta(&mut out, 1, proxy, &name);
    }
    for &(t, ref event) in events {
        out.push(',');
        // Only completions render as spans; the fallback arm emits an
        // instant named via `kind().name()` with the full JSONL payload
        // as args, so a new variant shows up in traces automatically.
        // adc-lint: allow(probe-exhaustiveness)
        match *event {
            // Injections are represented by the span start of the matching
            // completion; emit nothing separate to keep traces compact.
            SimEvent::RequestInjected { .. } => {
                out.pop();
                continue;
            }
            SimEvent::RequestCompleted {
                client,
                seq,
                object,
                hit,
                hops,
                start_us,
            } => {
                let name = if hit { "hit" } else { "miss" };
                let dur = t.saturating_sub(start_us);
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{client},\"ts\":{start_us},\"dur\":{dur},\"name\":\"{name}\",\"args\":{{\"object\":{object},\"seq\":{seq},\"hops\":{hops}}}}}"
                );
            }
            _ => {
                let proxy = event.proxy().unwrap_or(0);
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{proxy},\"ts\":{t},\"name\":"
                );
                write_escaped(&mut out, event.kind().name());
                out.push_str(",\"args\":");
                // Reuse the JSONL object as the args payload: it is a
                // flat JSON object carrying every field of the variant.
                write_event_json(&mut out, t, event);
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}

/// Writes the chrome trace to `writer`.
pub fn write_chrome_trace<W: io::Write>(
    writer: &mut W,
    events: &[(u64, SimEvent)],
) -> io::Result<()> {
    writer.write_all(to_chrome_trace(events).as_bytes())
}

/// One wall-clock slice of the sharded executor's timeline: either a
/// shard draining its window or the coordinator waiting at the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// Lane the slice belongs to: shard index, or the shard count for
    /// the coordinator lane.
    pub lane: u32,
    /// Microseconds since run start.
    pub start_us: u64,
    /// Slice duration, microseconds.
    pub dur_us: u64,
    /// `true` for a barrier-wait slice, `false` for a drain slice.
    pub wait: bool,
}

/// The pid shard-executor lanes render under (pids 0/1 belong to the
/// simulated-time rows).
pub const SHARD_LANES_PID: u32 = 2;

/// Renders the shard-execution profiler's wall-clock timeline as a
/// chrome trace: one named `tid` lane per shard (`ph:"X"` `drain`
/// slices), a `coordinator` lane (`tid = shards`) carrying `wait`
/// slices, and one `ph:"i"` `barrier` instant per epoch end.
///
/// `shards` fixes the lane set (every shard gets a labeled lane even if
/// it never produced a slice); `barriers_us` are the epoch-end
/// timestamps, microseconds since run start.
pub fn shard_lanes_to_chrome_trace(
    shards: usize,
    slices: &[ShardSlice],
    barriers_us: &[u64],
) -> String {
    let mut out = String::with_capacity(256 + slices.len() * 72 + barriers_us.len() * 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    push_process_meta(&mut out, SHARD_LANES_PID, "shard executor (wall clock)");
    let mut name = String::new();
    for shard in 0..shards {
        name.clear();
        let _ = write!(name, "shard {shard}");
        // Shard counts are far below u32::MAX: lane ids fit.
        push_thread_meta(&mut out, SHARD_LANES_PID, shard as u32, &name);
    }
    push_thread_meta(&mut out, SHARD_LANES_PID, shards as u32, "coordinator");
    for slice in slices {
        let label = if slice.wait { "wait" } else { "drain" };
        let _ = write!(
            out,
            ",{{\"ph\":\"X\",\"pid\":{SHARD_LANES_PID},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{label}\"}}",
            slice.lane, slice.start_us, slice.dur_us
        );
    }
    for &at in barriers_us {
        let _ = write!(
            out,
            ",{{\"ph\":\"i\",\"s\":\"p\",\"pid\":{SHARD_LANES_PID},\"tid\":{},\"ts\":{at},\"name\":\"barrier\"}}",
            shards
        );
    }
    out.push_str("]}");
    out
}

/// Writes the shard-lane trace to `writer`.
///
/// # Errors
///
/// Propagates the writer's I/O error.
pub fn write_shard_lanes<W: io::Write>(
    writer: &mut W,
    shards: usize,
    slices: &[ShardSlice],
    barriers_us: &[u64],
) -> io::Result<()> {
    writer.write_all(shard_lanes_to_chrome_trace(shards, slices, barriers_us).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn trace_is_valid_json_with_expected_rows() {
        let events = [
            (
                0,
                SimEvent::RequestInjected {
                    client: 1,
                    seq: 0,
                    object: 42,
                },
            ),
            (
                5,
                SimEvent::ForwardLearned {
                    proxy: 0,
                    object: 42,
                    to: 3,
                },
            ),
            (
                12,
                SimEvent::RequestCompleted {
                    client: 1,
                    seq: 0,
                    object: 42,
                    hit: true,
                    hops: 3,
                    start_us: 0,
                },
            ),
        ];
        let trace = to_chrome_trace(&events);
        validate_json(&trace).expect("chrome trace must be valid JSON");
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        // Injection is folded into the span; span covers 0..12 on tid 1.
        assert!(
            trace.contains("\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":0,\"dur\":12,\"name\":\"hit\"")
        );
        assert!(trace.contains("\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":5"));
        assert!(trace.contains("\"name\":\"forward_learned\""));
        // Two process_name rows plus one thread_name per lane (client 1,
        // proxy 0).
        assert_eq!(trace.matches("\"ph\":\"M\"").count(), 4);
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"client 1\"}"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"proxy 0\"}"));
    }

    #[test]
    fn lane_metadata_is_sorted_and_deduplicated() {
        let hit = |proxy| SimEvent::LocalHit { proxy, object: 1 };
        let events = [(0, hit(3)), (1, hit(0)), (2, hit(3)), (3, hit(2))];
        let trace = to_chrome_trace(&events);
        validate_json(&trace).expect("valid JSON");
        let p0 = trace.find("\"proxy 0\"").expect("proxy 0 labeled");
        let p2 = trace.find("\"proxy 2\"").expect("proxy 2 labeled");
        let p3 = trace.find("\"proxy 3\"").expect("proxy 3 labeled");
        assert!(p0 < p2 && p2 < p3, "thread names in ascending tid order");
        assert_eq!(trace.matches("\"proxy 3\"").count(), 1, "deduplicated");
    }

    #[test]
    fn empty_stream_is_still_valid() {
        let trace = to_chrome_trace(&[]);
        validate_json(&trace).expect("empty trace must be valid JSON");
    }

    #[test]
    fn shard_lanes_render_named_tracks_slices_and_barriers() {
        let slices = [
            ShardSlice {
                lane: 0,
                start_us: 0,
                dur_us: 80,
                wait: false,
            },
            ShardSlice {
                lane: 1,
                start_us: 5,
                dur_us: 60,
                wait: false,
            },
            ShardSlice {
                lane: 2,
                start_us: 80,
                dur_us: 12,
                wait: true,
            },
        ];
        let trace = shard_lanes_to_chrome_trace(2, &slices, &[92, 150]);
        validate_json(&trace).expect("shard trace must be valid JSON");
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"shard 0\"}"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"shard 1\"}"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"coordinator\"}"));
        assert!(trace.contains("\"tid\":0,\"ts\":0,\"dur\":80,\"name\":\"drain\""));
        assert!(trace.contains("\"tid\":2,\"ts\":80,\"dur\":12,\"name\":\"wait\""));
        assert_eq!(trace.matches("\"name\":\"barrier\"").count(), 2);
        // One lane label per shard plus the coordinator and the process.
        assert_eq!(trace.matches("\"ph\":\"M\"").count(), 4);
    }

    #[test]
    fn empty_profile_still_labels_every_shard_lane() {
        let trace = shard_lanes_to_chrome_trace(4, &[], &[]);
        validate_json(&trace).expect("valid JSON");
        assert_eq!(trace.matches("thread_name").count(), 5);
    }
}
