//! Causal flow spans: per-flow latency attribution from the event
//! stream.
//!
//! [`SpanProbe`] is a [`Probe`] that reconstructs every flow's hop chain
//! from the typed [`SimEvent`] stream and splits the flow's end-to-end
//! resolution latency into labelled simulated-time segments: the
//! client→first-proxy wait, each inter-proxy forward hop, the wasted hop
//! a loop detection ends, the origin round-trip, and the reply's return
//! leg. A critical-path aggregator folds the segments into per-proxy and
//! per-segment breakdown tables plus a top-K slowest-flows digest
//! ([`SpanReport`]).
//!
//! # Exactness
//!
//! Segment attribution telescopes by construction: a flow's segments are
//! the deltas between consecutive timestamps at which the recorder
//! touched that flow, starting at its injection tick and ending at its
//! completion tick. Whatever labels the deltas get, their sum is exactly
//! `completed_at - start_us` — the flow's end-to-end resolution latency.
//! The recorder additionally self-checks this per flow and counts any
//! violation in [`SpanReport::sum_check_failures`] (a property test pins
//! the counter at zero, fault injection included).
//!
//! # Cost
//!
//! The recorder is allocation-free on its steady-state path: per-flow
//! state lives in pooled fixed-size slots recycled through a free list,
//! and segment durations fold directly into the aggregation tables as
//! they close (no per-flow segment vectors). Only first-touch map nodes
//! (a new object id, a new proxy id, a slot-pool high-water mark)
//! allocate. Like every enabled probe it is opt-in: [`NullProbe`]
//! ([`Probe::ENABLED`]` = false`) keeps unobserved runs byte-identical.
//!
//! [`NullProbe`]: crate::NullProbe

// The recorder IS the probe: every counter in this file is mutated
// inside (or on behalf of) its own `Probe::emit` dispatch, and the
// per-flow sum self-check plus the prop_spans suite reconcile the
// aggregates. adc-lint: allow-file(obs-coverage)

use crate::event::SimEvent;
use crate::probe::Probe;
use std::collections::BTreeMap;
use std::fmt;

/// Canonical segment-name strings, one const per [`SegmentKind`].
///
/// Every exporter, bench table and the live-cluster span recorder spell
/// segment names through these consts (or through
/// [`SegmentKind::name`], which returns them), so `adc-lint`'s
/// segment-name drift check can hold the whole workspace to a single
/// spelling per segment.
pub mod segment_names {
    /// [`super::SegmentKind::ClientWait`]: injection → first-hop arrival.
    pub const SEG_CLIENT_WAIT: &str = "client_wait";
    /// [`super::SegmentKind::ForwardHop`]: one inter-proxy forward.
    pub const SEG_FORWARD_HOP: &str = "forward_hop";
    /// [`super::SegmentKind::LoopPenalty`]: the wasted hop a loop ends.
    pub const SEG_LOOP_PENALTY: &str = "loop_penalty";
    /// [`super::SegmentKind::OriginFetch`]: give-up → origin → reply.
    pub const SEG_ORIGIN_FETCH: &str = "origin_fetch";
    /// [`super::SegmentKind::ReplyReturn`]: local hit → reply at client.
    pub const SEG_REPLY_RETURN: &str = "reply_return";
}

/// A labelled slice of one flow's resolution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SegmentKind {
    /// Injection → arrival at the first-hop proxy.
    ClientWait = 0,
    /// One inter-proxy forward (learned or random) → next proxy.
    ForwardHop,
    /// The wasted hop that ended in a loop detection.
    LoopPenalty,
    /// Give-up (loop/hop-limit/THIS-miss) → origin → reply at client.
    OriginFetch,
    /// Local hit → reply back at the client.
    ReplyReturn,
}

impl SegmentKind {
    /// Every segment kind, in discriminant order.
    pub const ALL: [SegmentKind; 5] = [
        SegmentKind::ClientWait,
        SegmentKind::ForwardHop,
        SegmentKind::LoopPenalty,
        SegmentKind::OriginFetch,
        SegmentKind::ReplyReturn,
    ];

    /// Number of kinds (length of [`SegmentKind::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name, used by the exporters and the bench
    /// report. Returns the matching [`segment_names`] const.
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::ClientWait => segment_names::SEG_CLIENT_WAIT,
            SegmentKind::ForwardHop => segment_names::SEG_FORWARD_HOP,
            SegmentKind::LoopPenalty => segment_names::SEG_LOOP_PENALTY,
            SegmentKind::OriginFetch => segment_names::SEG_ORIGIN_FETCH,
            SegmentKind::ReplyReturn => segment_names::SEG_REPLY_RETURN,
        }
    }

    /// Inverse of [`SegmentKind::name`], used when parsing exported
    /// spans back (e.g. the cross-node trace merger).
    pub fn from_name(name: &str) -> Option<SegmentKind> {
        SegmentKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Attribution target for a segment that has opened but not yet closed.
/// `ClientWait` has no proxy until the request lands somewhere, so the
/// closing event supplies the proxy in that one case.
const NO_PROXY: u32 = u32::MAX;

/// Pooled per-flow state: one fixed-size slot per in-flight flow. The
/// flow's identity lives in the probe's lookup maps, not the slot.
#[derive(Debug, Clone, Copy)]
struct FlowSpan {
    start_us: u64,
    /// Timestamp at which the currently-open segment started.
    last_us: u64,
    /// Label the next closed delta will carry.
    pending: SegmentKind,
    /// Proxy the next closed delta is attributed to (`NO_PROXY` until
    /// the first hop lands).
    pending_proxy: u32,
    /// Per-segment microseconds accumulated by this flow so far.
    seg_us: [u64; SegmentKind::COUNT],
    live: bool,
}

impl FlowSpan {
    fn total_attributed(&self) -> u64 {
        self.seg_us.iter().sum()
    }
}

/// One row of the per-proxy breakdown table: simulated microseconds this
/// proxy contributed to flows, split by segment kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxySpans {
    /// The proxy the time is attributed to.
    pub proxy: u32,
    /// Microseconds per [`SegmentKind`] (indexed by discriminant).
    pub seg_us: [u64; SegmentKind::COUNT],
}

impl ProxySpans {
    /// Total microseconds attributed to this proxy across all segments.
    pub fn total_us(&self) -> u64 {
        self.seg_us.iter().sum()
    }
}

/// One aggregate row of the per-segment breakdown table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStat {
    /// The segment this row aggregates.
    pub kind: SegmentKind,
    /// Total simulated microseconds attributed to this segment.
    pub total_us: u64,
    /// Closed deltas that carried this label.
    pub count: u64,
}

/// One entry of the top-K slowest-flows digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowFlow {
    /// End-to-end resolution latency, microseconds.
    pub total_us: u64,
    /// Issuing client.
    pub client: u32,
    /// The client's request counter.
    pub seq: u64,
    /// Requested object.
    pub object: u64,
    /// Simulated injection time, microseconds.
    pub start_us: u64,
    /// Hops the flow took (from the completion event).
    pub hops: u32,
    /// Whether some proxy cache served it.
    pub hit: bool,
    /// The flow's own per-segment split, microseconds.
    pub seg_us: [u64; SegmentKind::COUNT],
}

/// The aggregated output of a [`SpanProbe`]: per-segment and per-proxy
/// latency breakdown tables plus the slowest-flows digest.
///
/// Everything in here is **simulated** time derived from the event
/// stream, so same-seed runs produce identical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanReport {
    /// Flows closed by a completion event.
    pub flows: u64,
    /// Flows still open when the recorder was drained (none in a run
    /// that fully resolves its workload).
    pub flows_unclosed: u64,
    /// Completion events with no matching open flow (recorder attached
    /// mid-run, or a duplicated completion).
    pub unmatched_completions: u64,
    /// Flows whose segment sum disagreed with `completed - start_us`
    /// (always zero; pinned by a property test).
    pub sum_check_failures: u64,
    /// Sum of all closed flows' end-to-end latencies, microseconds.
    pub total_us: u64,
    /// Sum of every closed segment delta, microseconds. Equals
    /// [`total_us`](Self::total_us) when every flow closed cleanly.
    pub attributed_us: u64,
    /// Per-segment aggregate rows, in [`SegmentKind::ALL`] order.
    pub segments: Vec<SegmentStat>,
    /// Per-proxy rows, ascending by proxy id.
    pub per_proxy: Vec<ProxySpans>,
    /// The K slowest flows, slowest first (ties broken by client, seq).
    pub slowest: Vec<SlowFlow>,
}

impl SpanReport {
    /// Fraction of attributed time spent in `kind` (0 when nothing was
    /// attributed).
    pub fn fraction(&self, kind: SegmentKind) -> f64 {
        if self.attributed_us == 0 {
            return 0.0;
        }
        let total = self
            .segments
            .iter()
            .find(|s| s.kind == kind)
            .map_or(0, |s| s.total_us);
        total as f64 / self.attributed_us as f64
    }

    /// One-line human summary for run footers.
    pub fn summary(&self) -> String {
        let mut parts = String::new();
        for stat in &self.segments {
            if stat.total_us == 0 {
                continue;
            }
            if !parts.is_empty() {
                parts.push_str(", ");
            }
            let _ = fmt::Write::write_fmt(
                &mut parts,
                format_args!(
                    "{}={:.1}%",
                    stat.kind.name(),
                    100.0 * self.fraction(stat.kind)
                ),
            );
        }
        format!(
            "spans: {} flows, {} us attributed ({parts})",
            self.flows, self.attributed_us
        )
    }

    /// Renders the report as a standalone JSON object (hand-rolled like
    /// the other exporters; the vendored serde is a no-op stub). The
    /// output round-trips through [`validate_json`](crate::validate_json).
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"flows\": {},", self.flows);
        let _ = writeln!(out, "  \"flows_unclosed\": {},", self.flows_unclosed);
        let _ = writeln!(
            out,
            "  \"unmatched_completions\": {},",
            self.unmatched_completions
        );
        let _ = writeln!(
            out,
            "  \"sum_check_failures\": {},",
            self.sum_check_failures
        );
        let _ = writeln!(out, "  \"total_us\": {},", self.total_us);
        let _ = writeln!(out, "  \"attributed_us\": {},", self.attributed_us);
        out.push_str("  \"segments\": {\n");
        for (i, stat) in self.segments.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {{ \"total_us\": {}, \"count\": {} }}{}",
                stat.kind.name(),
                stat.total_us,
                stat.count,
                if i + 1 == self.segments.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("  },\n  \"per_proxy\": {\n");
        for (i, row) in self.per_proxy.iter().enumerate() {
            let _ = write!(out, "    \"{}\": {{ ", row.proxy);
            for kind in SegmentKind::ALL {
                let _ = write!(out, "\"{}\": {}, ", kind.name(), row.seg_us[kind as usize]);
            }
            let _ = writeln!(
                out,
                "\"total_us\": {} }}{}",
                row.total_us(),
                if i + 1 == self.per_proxy.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("  },\n  \"slowest\": {\n");
        for (i, flow) in self.slowest.iter().enumerate() {
            let _ = write!(
                out,
                "    \"{i}\": {{ \"total_us\": {}, \"client\": {}, \"seq\": {}, \
                 \"object\": {}, \"start_us\": {}, \"hops\": {}, \"hit\": {}, ",
                flow.total_us,
                flow.client,
                flow.seq,
                flow.object,
                flow.start_us,
                flow.hops,
                flow.hit
            );
            for (k, &kind) in SegmentKind::ALL.iter().enumerate() {
                let _ = write!(
                    out,
                    "\"{}\": {}{}",
                    kind.name(),
                    flow.seg_us[kind as usize],
                    if k + 1 == SegmentKind::COUNT {
                        ""
                    } else {
                        ", "
                    }
                );
            }
            let _ = writeln!(
                out,
                " }}{}",
                if i + 1 == self.slowest.len() { "" } else { "," }
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Default size of the slowest-flows digest.
pub const DEFAULT_TOP_K: usize = 10;

/// The flow-span recorder: a [`Probe`] that attributes every simulated
/// microsecond of every flow to a [`SegmentKind`] and a proxy.
///
/// See the [module docs](self) for the reconstruction and exactness
/// model.
#[derive(Debug, Clone)]
pub struct SpanProbe {
    now_us: u64,
    /// Pooled flow slots; `free` holds recycled indices.
    slots: Vec<FlowSpan>,
    free: Vec<usize>,
    /// Open flows by identity, for completion lookup.
    open: BTreeMap<(u32, u64), usize>,
    /// Open flows by object, oldest first, for proxy-event attribution
    /// (proxy events carry the object, not the flow identity).
    by_object: BTreeMap<u64, Vec<usize>>,
    /// Aggregation tables (totals, counts) per segment.
    seg_total_us: [u64; SegmentKind::COUNT],
    seg_count: [u64; SegmentKind::COUNT],
    per_proxy: BTreeMap<u32, [u64; SegmentKind::COUNT]>,
    /// Min-heap-by-scan of the K slowest flows (K is small).
    slowest: Vec<SlowFlow>,
    top_k: usize,
    flows: u64,
    unmatched_completions: u64,
    sum_check_failures: u64,
    total_us: u64,
    attributed_us: u64,
}

impl Default for SpanProbe {
    fn default() -> Self {
        SpanProbe::new()
    }
}

impl SpanProbe {
    /// Creates a recorder with the default top-K digest size.
    pub fn new() -> Self {
        SpanProbe::with_top_k(DEFAULT_TOP_K)
    }

    /// Creates a recorder keeping the `top_k` slowest flows.
    pub fn with_top_k(top_k: usize) -> Self {
        SpanProbe {
            now_us: 0,
            slots: Vec::new(),
            free: Vec::new(),
            open: BTreeMap::new(),
            by_object: BTreeMap::new(),
            seg_total_us: [0; SegmentKind::COUNT],
            seg_count: [0; SegmentKind::COUNT],
            per_proxy: BTreeMap::new(),
            slowest: Vec::with_capacity(top_k),
            top_k,
            flows: 0,
            unmatched_completions: 0,
            sum_check_failures: 0,
            total_us: 0,
            attributed_us: 0,
        }
    }

    /// Flows currently open (injected, not yet completed).
    pub fn open_flows(&self) -> usize {
        self.open.len()
    }

    fn alloc_slot(&mut self, span: FlowSpan) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = span;
            idx
        } else {
            self.slots.push(span);
            self.slots.len() - 1
        }
    }

    /// Closes the open delta of slot `idx` at `now`, attributing it to
    /// the slot's pending label. `proxy_hint` supplies the attribution
    /// target when the pending segment opened without one (client wait).
    fn close_delta(&mut self, idx: usize, now: u64, proxy_hint: u32, relabel: Option<SegmentKind>) {
        // idx comes from `open`/`by_object`, which only hold live slots.
        let slot = &mut self.slots[idx];
        let delta = now.saturating_sub(slot.last_us);
        let kind = relabel.unwrap_or(slot.pending);
        let proxy = if slot.pending_proxy == NO_PROXY {
            proxy_hint
        } else {
            slot.pending_proxy
        };
        slot.last_us = now;
        slot.seg_us[kind as usize] += delta;
        self.seg_total_us[kind as usize] += delta;
        self.seg_count[kind as usize] += 1;
        self.attributed_us += delta;
        if proxy != NO_PROXY {
            self.per_proxy
                .entry(proxy)
                .or_insert([0; SegmentKind::COUNT])[kind as usize] += delta;
        }
    }

    /// The oldest open flow for `object`, if any.
    fn flow_for_object(&self, object: u64) -> Option<usize> {
        self.by_object
            .get(&object)
            .and_then(|flows| flows.first().copied())
    }

    fn on_proxy_step(
        &mut self,
        object: u64,
        proxy: u32,
        next: SegmentKind,
        relabel: Option<SegmentKind>,
    ) {
        let Some(idx) = self.flow_for_object(object) else {
            return; // stray event (duplicate delivery past completion)
        };
        self.close_delta(idx, self.now_us, proxy, relabel);
        let slot = &mut self.slots[idx];
        slot.pending = next;
        slot.pending_proxy = proxy;
    }

    fn push_slowest(&mut self, flow: SlowFlow) {
        if self.top_k == 0 {
            return;
        }
        if self.slowest.len() < self.top_k {
            self.slowest.push(flow);
            return;
        }
        // K is small (default 10): a linear scan for the current minimum
        // beats heap bookkeeping and keeps replacement deterministic.
        let mut min_at = 0;
        for (i, f) in self.slowest.iter().enumerate() {
            let min = &self.slowest[min_at];
            if (f.total_us, f.client, f.seq) < (min.total_us, min.client, min.seq) {
                min_at = i;
            }
        }
        let min = &self.slowest[min_at];
        if (flow.total_us, flow.client, flow.seq) > (min.total_us, min.client, min.seq) {
            self.slowest[min_at] = flow;
        }
    }

    /// Drains the recorder into its aggregated [`SpanReport`].
    pub fn into_report(mut self) -> SpanReport {
        let flows_unclosed = self.open.len() as u64;
        let segments = SegmentKind::ALL
            .iter()
            .map(|&kind| SegmentStat {
                kind,
                total_us: self.seg_total_us[kind as usize],
                count: self.seg_count[kind as usize],
            })
            .collect();
        let per_proxy = self
            .per_proxy
            .iter()
            .map(|(&proxy, &seg_us)| ProxySpans { proxy, seg_us })
            .collect();
        self.slowest
            .sort_by_key(|f| std::cmp::Reverse((f.total_us, f.client, f.seq)));
        SpanReport {
            flows: self.flows,
            flows_unclosed,
            unmatched_completions: self.unmatched_completions,
            sum_check_failures: self.sum_check_failures,
            total_us: self.total_us,
            attributed_us: self.attributed_us,
            segments,
            per_proxy,
            slowest: self.slowest,
        }
    }
}

impl Probe for SpanProbe {
    const ENABLED: bool = true;

    #[inline]
    fn tick(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    fn emit(&mut self, event: SimEvent) {
        match event {
            SimEvent::RequestInjected {
                client,
                seq,
                object,
            } => {
                let idx = self.alloc_slot(FlowSpan {
                    start_us: self.now_us,
                    last_us: self.now_us,
                    pending: SegmentKind::ClientWait,
                    pending_proxy: NO_PROXY,
                    seg_us: [0; SegmentKind::COUNT],
                    live: true,
                });
                self.open.insert((client, seq), idx);
                self.by_object.entry(object).or_default().push(idx);
            }
            // Request-path steps: the closing event tells us what the
            // *next* segment is; the incoming delta keeps the label the
            // previous step opened (except the loop relabel).
            SimEvent::ForwardLearned { proxy, object, .. }
            | SimEvent::ForwardRandom { proxy, object, .. } => {
                self.on_proxy_step(object, proxy, SegmentKind::ForwardHop, None);
            }
            SimEvent::LoopDetected { proxy, object } => {
                // The hop that came back to a visited proxy was wasted;
                // the proxy gives up and goes to the origin.
                self.on_proxy_step(
                    object,
                    proxy,
                    SegmentKind::OriginFetch,
                    Some(SegmentKind::LoopPenalty),
                );
            }
            SimEvent::HopLimitHit { proxy, object, .. }
            | SimEvent::OriginThisMiss { proxy, object } => {
                self.on_proxy_step(object, proxy, SegmentKind::OriginFetch, None);
            }
            SimEvent::LocalHit { proxy, object } => {
                self.on_proxy_step(object, proxy, SegmentKind::ReplyReturn, None);
            }
            SimEvent::RequestCompleted {
                client,
                seq,
                object,
                hit,
                hops,
                start_us,
            } => {
                let Some(idx) = self.open.remove(&(client, seq)) else {
                    self.unmatched_completions += 1;
                    return;
                };
                self.close_delta(idx, self.now_us, NO_PROXY, None);
                let slot = self.slots[idx];
                // Detach from the object queue (swap-free removal keeps
                // oldest-first order for the survivors).
                if let Some(flows) = self.by_object.get_mut(&object) {
                    flows.retain(|&i| i != idx);
                    if flows.is_empty() {
                        self.by_object.remove(&object);
                    }
                }
                self.slots[idx].live = false;
                self.free.push(idx);
                let total = self.now_us.saturating_sub(start_us);
                self.flows += 1;
                self.total_us += total;
                if slot.start_us != start_us || slot.total_attributed() != total {
                    self.sum_check_failures += 1;
                }
                self.push_slowest(SlowFlow {
                    total_us: total,
                    client,
                    seq,
                    object,
                    start_us,
                    hops,
                    hit,
                    seg_us: slot.seg_us,
                });
            }
            // Reply-path bookkeeping events carry no flow identity and
            // happen at timestamps already covered by the surrounding
            // segments; they never close deltas.
            SimEvent::BackwardAdoption { .. }
            | SimEvent::TableMigration { .. }
            | SimEvent::CacheInsert { .. }
            | SimEvent::CacheEvict { .. }
            | SimEvent::ReplyOrphaned { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_json;

    fn inject(p: &mut SpanProbe, at: u64, client: u32, seq: u64, object: u64) {
        p.tick(at);
        p.emit(SimEvent::RequestInjected {
            client,
            seq,
            object,
        });
    }

    fn complete(p: &mut SpanProbe, at: u64, client: u32, seq: u64, object: u64, start: u64) {
        p.tick(at);
        p.emit(SimEvent::RequestCompleted {
            client,
            seq,
            object,
            hit: true,
            hops: 2,
            start_us: start,
        });
    }

    #[test]
    fn local_hit_splits_into_wait_and_reply() {
        let mut p = SpanProbe::new();
        inject(&mut p, 100, 0, 0, 7);
        p.tick(130);
        p.emit(SimEvent::LocalHit {
            proxy: 2,
            object: 7,
        });
        complete(&mut p, 160, 0, 0, 7, 100);
        let r = p.into_report();
        assert_eq!(r.flows, 1);
        assert_eq!(r.sum_check_failures, 0);
        assert_eq!(r.total_us, 60);
        assert_eq!(r.attributed_us, 60);
        assert_eq!(r.segments[SegmentKind::ClientWait as usize].total_us, 30);
        assert_eq!(r.segments[SegmentKind::ReplyReturn as usize].total_us, 30);
        // Both deltas land on proxy 2: it received the request and it
        // served the reply.
        assert_eq!(
            r.per_proxy,
            vec![ProxySpans {
                proxy: 2,
                seg_us: [30, 0, 0, 0, 30]
            }]
        );
    }

    #[test]
    fn forward_chain_loop_and_origin_attribute_in_order() {
        let mut p = SpanProbe::new();
        inject(&mut p, 0, 1, 5, 42);
        p.tick(10); // arrival at proxy 0, forwards to 1
        p.emit(SimEvent::ForwardLearned {
            proxy: 0,
            object: 42,
            to: 1,
        });
        p.tick(25); // arrival at proxy 1, forwards to 0 again
        p.emit(SimEvent::ForwardRandom {
            proxy: 1,
            object: 42,
            to: 0,
        });
        p.tick(40); // back at proxy 0: loop detected, off to the origin
        p.emit(SimEvent::LoopDetected {
            proxy: 0,
            object: 42,
        });
        complete(&mut p, 100, 1, 5, 42, 0);
        let r = p.into_report();
        assert_eq!(r.sum_check_failures, 0);
        assert_eq!(r.attributed_us, 100);
        assert_eq!(r.segments[SegmentKind::ClientWait as usize].total_us, 10);
        assert_eq!(r.segments[SegmentKind::ForwardHop as usize].total_us, 15);
        assert_eq!(r.segments[SegmentKind::LoopPenalty as usize].total_us, 15);
        assert_eq!(r.segments[SegmentKind::OriginFetch as usize].total_us, 60);
        // client wait lands on proxy 0 (first hop), the forward on proxy
        // 0 (it sent the hop), the wasted hop on proxy 1 (it sent the
        // request back), the origin fetch on proxy 0 (it gave up).
        let by_proxy: Vec<(u32, u64)> = r
            .per_proxy
            .iter()
            .map(|row| (row.proxy, row.total_us()))
            .collect();
        assert_eq!(by_proxy, vec![(0, 85), (1, 15)]);
    }

    #[test]
    fn overlapping_flows_still_sum_exactly() {
        let mut p = SpanProbe::new();
        inject(&mut p, 0, 0, 0, 9);
        inject(&mut p, 5, 1, 0, 9); // same object, overlapping
        p.tick(12);
        p.emit(SimEvent::LocalHit {
            proxy: 3,
            object: 9,
        });
        p.tick(14);
        p.emit(SimEvent::LocalHit {
            proxy: 3,
            object: 9,
        });
        complete(&mut p, 20, 0, 0, 9, 0);
        complete(&mut p, 24, 1, 0, 9, 5);
        let r = p.into_report();
        assert_eq!(r.flows, 2);
        assert_eq!(r.sum_check_failures, 0);
        assert_eq!(r.total_us, 20 + 19);
        assert_eq!(r.attributed_us, r.total_us);
    }

    #[test]
    fn stray_events_and_unmatched_completions_are_counted_not_fatal() {
        let mut p = SpanProbe::new();
        p.tick(50);
        p.emit(SimEvent::LocalHit {
            proxy: 0,
            object: 1,
        }); // no open flow
        complete(&mut p, 60, 9, 9, 1, 10); // never injected
        let r = p.into_report();
        assert_eq!(r.flows, 0);
        assert_eq!(r.unmatched_completions, 1);
        assert_eq!(r.attributed_us, 0);
    }

    #[test]
    fn top_k_digest_keeps_the_slowest_sorted() {
        let mut p = SpanProbe::with_top_k(2);
        for i in 0..5u64 {
            inject(&mut p, i * 1000, 0, i, i);
            // Flow i takes (i+1)*10 us.
            complete(&mut p, i * 1000 + (i + 1) * 10, 0, i, i, i * 1000);
        }
        let r = p.into_report();
        assert_eq!(r.slowest.len(), 2);
        assert_eq!(r.slowest[0].total_us, 50);
        assert_eq!(r.slowest[1].total_us, 40);
        assert_eq!(r.slowest[0].seq, 4);
    }

    #[test]
    fn unclosed_flows_are_reported() {
        let mut p = SpanProbe::new();
        inject(&mut p, 0, 0, 0, 1);
        let r = p.into_report();
        assert_eq!(r.flows, 0);
        assert_eq!(r.flows_unclosed, 1);
    }

    #[test]
    fn slot_pool_recycles() {
        let mut p = SpanProbe::new();
        for i in 0..100u64 {
            inject(&mut p, i * 10, 0, i, 7);
            complete(&mut p, i * 10 + 5, 0, i, 7, i * 10);
        }
        assert_eq!(p.slots.len(), 1, "sequential flows reuse one slot");
        assert!(!p.slots[0].live);
        let r = p.into_report();
        assert_eq!(r.flows, 100);
        assert_eq!(r.sum_check_failures, 0);
    }

    #[test]
    fn report_json_is_valid_and_fractions_sum() {
        let mut p = SpanProbe::new();
        inject(&mut p, 0, 0, 0, 1);
        p.tick(10);
        p.emit(SimEvent::LocalHit {
            proxy: 0,
            object: 1,
        });
        complete(&mut p, 30, 0, 0, 1, 0);
        let r = p.into_report();
        validate_json(&r.to_json()).expect("span JSON must parse");
        let total: f64 = SegmentKind::ALL.iter().map(|&k| r.fraction(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.summary().contains("1 flows"));
    }
}
